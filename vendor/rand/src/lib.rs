//! Minimal offline stand-in for the `rand` 0.8 API surface used by this
//! workspace: `StdRng::seed_from_u64`, `gen_range` over integer and float
//! ranges, `gen::<f64>()`, and `gen_bool`. The generator is splitmix64 —
//! deterministic per seed, which is all the callers rely on (they never
//! assert specific values, only self-consistency).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform in [0, 1).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One uniform-sampling impl per primitive; `SampleRange` is a single
/// blanket impl over this so integer-literal inference at `gen_range`
/// call sites resolves the same way it does with the real crate.
pub trait SampleUniform: Sized {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "empty range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// The `Standard` distribution subset backing `Rng::gen::<T>()`.
pub trait Standard: Sized {
    fn gen_std<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_std<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn gen_std<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn gen_std<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::gen_std(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stream.
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-50..50i64);
            assert_eq!(x, b.gen_range(-50..50i64));
            assert!((-50..50).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let f = c.gen_range(-90.0..90.0);
            assert!((-90.0..90.0).contains(&f));
            let u: f64 = c.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
