//! Minimal std-backed stand-in for the `crossbeam::channel` API surface
//! used by this workspace (bounded channels with timeout receives), so the
//! build has no network dependency.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Bounded channel: sends block when `cap` messages are in flight.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}
