//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

pub trait Strategy: 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter { inner: self, whence, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap { inner: self, f }
    }

    /// Build a recursive strategy by stacking `depth` applications of `f`
    /// over this leaf strategy. The `_desired_size`/`_expected_branch`
    /// hints of real proptest are accepted and ignored; recursion depth is
    /// bounded by construction.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = f(current).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf { arms: self.arms.clone() }
    }
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates in a row", self.whence);
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// ---- leaf strategies ----

/// String literals are regex strategies (the subset in `crate::string`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
