//! `option::of`: generate `None` a quarter of the time, like proptest's
//! default weighting.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Clone> Clone for OptionStrategy<S> {
    fn clone(&self) -> Self {
        OptionStrategy { inner: self.inner.clone() }
    }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
