//! Per-test configuration and the deterministic generation stream.

/// Subset of proptest's config: the number of generated cases per test.
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 stream, seeded from the test name so every
/// test sees a stable but distinct sequence across runs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name for a stable seed.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, bound); bound must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform usize in a half-open range.
    pub fn in_range(&mut self, range: &std::ops::Range<usize>) -> usize {
        if range.start >= range.end {
            return range.start;
        }
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
