//! Minimal offline stand-in for the `proptest` API surface used by this
//! workspace's property tests: the `proptest!`/`prop_oneof!` macros, the
//! `Strategy` combinators (`prop_map`, `prop_filter`, `prop_flat_map`,
//! `prop_recursive`, `boxed`), `any::<T>()`, string-regex strategies for
//! the small regex subset the tests use, and collection/option builders.
//!
//! Deliberate simplifications versus real proptest: no shrinking on
//! failure (the failing values are printed via the panic message instead),
//! and generation is driven by a deterministic per-test splitmix64 stream.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` module of strategy builders.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
        pub use crate::string;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let ( $($pat,)+ ) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+
                    );
                    $body
                }
            }
        )*
    };
}
