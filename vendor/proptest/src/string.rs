//! Generator for the small regex subset the workspace's tests use as
//! string strategies: literals, `.`, character classes with ranges,
//! groups with alternation, and the `{n}`, `{n,m}`, `*`, `+`, `?`
//! quantifiers. Unbounded quantifiers are capped at 8 repetitions.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    Any,
    /// Inclusive char ranges (single chars are degenerate ranges).
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence.
    Group(Vec<Vec<Node>>),
    Rep(Box<Node>, u32, u32),
}

/// A char for `.`: mostly printable ASCII with a sprinkle of tabs,
/// newlines, quotes, and multi-byte code points so escaping paths get
/// exercised.
pub(crate) fn any_char(rng: &mut TestRng) -> char {
    const SPICE: &[char] = &[
        '\t', '\n', '\r', '\u{1}', '"', '\\', '\'', '\u{7f}', 'é', 'λ', '中', '🦀',
    ];
    if rng.below(10) == 0 {
        SPICE[rng.below(SPICE.len() as u64) as usize]
    } else {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex {:?}: {what}", self.pattern);
    }

    fn escape(&mut self) -> char {
        match self.chars.next() {
            Some('t') => '\t',
            Some('n') => '\n',
            Some('r') => '\r',
            Some('0') => '\0',
            Some(c) => c,
            None => self.fail("trailing backslash"),
        }
    }

    fn class(&mut self) -> Node {
        let mut ranges = Vec::new();
        loop {
            let c = match self.chars.next() {
                None => self.fail("unterminated class"),
                Some(']') => break,
                Some('\\') => self.escape(),
                Some(c) => c,
            };
            if self.chars.peek() == Some(&'-') {
                self.chars.next();
                match self.chars.peek() {
                    Some(&']') => {
                        // trailing '-' is a literal
                        ranges.push((c, c));
                        ranges.push(('-', '-'));
                    }
                    Some(_) => {
                        let hi = match self.chars.next() {
                            Some('\\') => self.escape(),
                            Some(h) => h,
                            None => self.fail("unterminated class range"),
                        };
                        ranges.push((c, hi));
                    }
                    None => self.fail("unterminated class"),
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class(ranges)
    }

    fn quantifier(&mut self, node: Node) -> Node {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') => in_max = true,
                        Some(d) if d.is_ascii_digit() => {
                            if in_max {
                                max.push(d)
                            } else {
                                min.push(d)
                            }
                        }
                        _ => self.fail("bad {} quantifier"),
                    }
                }
                let lo: u32 = min.parse().unwrap_or(0);
                let hi: u32 = if !in_max {
                    lo
                } else {
                    max.parse().unwrap_or(lo + UNBOUNDED_CAP)
                };
                Node::Rep(Box::new(node), lo, hi)
            }
            Some('*') => {
                self.chars.next();
                Node::Rep(Box::new(node), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Rep(Box::new(node), 1, UNBOUNDED_CAP)
            }
            Some('?') => {
                self.chars.next();
                Node::Rep(Box::new(node), 0, 1)
            }
            _ => node,
        }
    }

    /// Parse alternatives until end of input or an unbalanced ')'.
    fn alternatives(&mut self, in_group: bool) -> Vec<Vec<Node>> {
        let mut alts = vec![Vec::new()];
        loop {
            match self.chars.peek() {
                None => {
                    if in_group {
                        self.fail("unterminated group");
                    }
                    break;
                }
                Some(&')') => {
                    if in_group {
                        self.chars.next();
                        break;
                    }
                    self.fail("unbalanced )");
                }
                Some(&'|') => {
                    self.chars.next();
                    alts.push(Vec::new());
                }
                Some(_) => {
                    let atom = match self.chars.next().unwrap() {
                        '.' => Node::Any,
                        '[' => self.class(),
                        '(' => Node::Group(self.alternatives(true)),
                        '\\' => Node::Lit(self.escape()),
                        c @ ('{' | '}' | '*' | '+' | '?') => {
                            let _ = c;
                            self.fail("dangling quantifier")
                        }
                        c => Node::Lit(c),
                    };
                    let node = self.quantifier(atom);
                    alts.last_mut().unwrap().push(node);
                }
            }
        }
        alts
    }
}

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Any => out.push(any_char(rng)),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32)
                .unwrap_or(lo);
            out.push(c);
        }
        Node::Group(alts) => {
            let seq = &alts[rng.below(alts.len() as u64) as usize];
            for n in seq {
                generate_node(n, rng, out);
            }
        }
        Node::Rep(inner, lo, hi) => {
            let n = if hi > lo {
                lo + rng.below((*hi - *lo + 1) as u64) as u32
            } else {
                *lo
            };
            for _ in 0..n {
                generate_node(inner, rng, out);
            }
        }
    }
}

/// Generate one string matching `pattern` (within the supported subset).
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser { chars: pattern.chars().peekable(), pattern };
    let alts = parser.alternatives(false);
    let mut out = String::new();
    let seq = &alts[rng.below(alts.len() as u64) as usize];
    for node in seq {
        generate_node(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_from_the_workspace_generate_matching_strings() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());

            let dotted = generate("[a-z]{1,4}\\.[a-z]{1,4}(\\.[a-z]{1,4})?", &mut rng);
            let parts: Vec<&str> = dotted.split('.').collect();
            assert!(parts.len() == 2 || parts.len() == 3, "{dotted}");

            let ws = generate("[ \\t\\n\\r]{0,4}", &mut rng);
            assert!(ws.chars().all(|c| " \t\n\r".contains(c)));

            let any = generate(".{0,60}", &mut rng);
            assert!(any.chars().count() <= 60);

            let k = generate("[kmnp]", &mut rng);
            assert!("kmnp".contains(&k));
        }
    }
}
