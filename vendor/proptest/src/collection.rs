//! Collection strategies: `vec` and `btree_map` with size ranges.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Clone> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy { element: self.element.clone(), size: self.size.clone() }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.in_range(&self.size);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Clone, V: Clone> Clone for BTreeMapStrategy<K, V> {
    fn clone(&self) -> Self {
        BTreeMapStrategy {
            key: self.key.clone(),
            value: self.value.clone(),
            size: self.size.clone(),
        }
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = rng.in_range(&self.size);
        let mut out = BTreeMap::new();
        for _ in 0..n {
            out.insert(self.key.generate(rng), self.value.generate(rng));
        }
        out
    }
}

pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}
