//! `any::<T>()` for the primitive types the workspace's tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix extremes in so boundary behavior gets exercised,
                // like proptest's edge-case bias.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 => f64::MAX,
            6 => f64::MIN_POSITIVE,
            _ => {
                // Finite values across many magnitudes.
                let mantissa = rng.unit_f64() * 2.0 - 1.0;
                let exp = rng.below(61) as i32 - 30;
                mantissa * 10f64.powi(exp)
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::any_char(rng)
    }
}

pub struct ArbitraryStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}
