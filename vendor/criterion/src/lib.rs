//! Minimal offline stand-in for the `criterion` API surface used by this
//! workspace's benches: groups, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Reports a simple best-of-N wall-clock time per benchmark instead of
//! criterion's statistical analysis.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 2;
const MEASURE_RUNS: u32 = 5;

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        let mut bench = |b: &mut Bencher| f(b, input);
        run_bench(&full, &mut bench);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId { label: param.to_string() }
    }
}

pub struct Bencher {
    best_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        for _ in 0..MEASURE_RUNS {
            let t = Instant::now();
            black_box(f());
            let ns = t.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(ns);
        }
    }
}

fn run_bench(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { best_ns: u128::MAX };
    f(&mut b);
    if b.best_ns == u128::MAX {
        println!("{name}: no measurement");
    } else {
        println!("{name}: best {:.3} ms", b.best_ns as f64 / 1e6);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
