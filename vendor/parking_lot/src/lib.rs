//! Minimal std-backed stand-in for the `parking_lot` API surface used by
//! this workspace, so the build has no network dependency. Semantics match
//! parking_lot where it matters here: guards are returned without a
//! `Result`, and a panic while holding a lock does not poison it for
//! later users (poisoned std locks are recovered transparently).

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`]. The `wait` signature is the
/// std one (guard in, guard out) rather than parking_lot's `&mut` form,
/// since the guards here *are* std guards.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    pub fn notify_one(&self) {
        self.0.notify_one()
    }

    pub fn notify_all(&self) {
        self.0.notify_all()
    }
}
