//! # sinew-bench
//!
//! Experiment harnesses regenerating **every table and figure** of the
//! Sinew paper's evaluation. One binary per experiment
//! (`cargo run --release -p sinew-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table2_plans` | Table 2 — query plans, virtual vs physical columns |
//! | `table3_load` | Table 3 — load time & storage size, 4 systems × 2 scales |
//! | `fig6_nobench` | Figure 6a/6b — NoBench Q1–Q10 execution times |
//! | `fig7_join` | Figure 7 — NoBench Q11 (join) |
//! | `fig8_update` | Figure 8 — the random-update task |
//! | `table4_serialization` | Appendix A Table 4 — serialization formats |
//! | `table5_virtual_overhead` | Appendix B Table 5 — virtual-column cost |
//! | `ablation_dirty` | §3.1.4's ≤10% dirty-column (COALESCE) overhead |
//! | `ablation_thresholds` | §3.1.3 materialization-policy sweep |
//! | `ablation_array_modes` | §4.2 array storage alternatives |
//!
//! Scales are laptop-sized stand-ins for the paper's 16M/64M-record
//! datasets (see DESIGN.md §7): the *small* scale fits the buffer pool
//! (CPU-bound regime), the *large* scale exceeds it (I/O-bound regime,
//! with simulated per-miss latency calibrated to the paper's 250–300 MB/s).

use std::time::{Duration, Instant};

/// Common command-line configuration for harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Records at the small scale (default 20_000; paper: 16M).
    pub small_docs: u64,
    /// Records at the large scale (default 80_000; paper: 64M).
    pub large_docs: u64,
    /// Run the large scale too (slower).
    pub run_large: bool,
    /// Query repetitions averaged per measurement (paper: 4).
    pub reps: u32,
    /// Simulated I/O latency per buffer-pool miss, microseconds.
    pub io_delay_us: u64,
    /// Buffer-pool pages for file-backed runs.
    pub pool_pages: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            small_docs: 20_000,
            large_docs: 80_000,
            run_large: true,
            reps: 4,
            // 8 KiB / 275 MB/s ≈ 29 µs
            io_delay_us: 29,
            pool_pages: 2_048, // 16 MiB
        }
    }
}

impl HarnessConfig {
    /// Parse `--docs N --large-docs N --no-large --reps N --io-delay-us N
    /// --pool-pages N` from the process arguments.
    pub fn from_args() -> HarnessConfig {
        let mut cfg = HarnessConfig::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<String> {
                *i += 1;
                args.get(*i).cloned()
            };
            match args[i].as_str() {
                "--docs" => {
                    if let Some(v) = take(&mut i) {
                        cfg.small_docs = v.parse().expect("--docs N");
                    }
                }
                "--large-docs" => {
                    if let Some(v) = take(&mut i) {
                        cfg.large_docs = v.parse().expect("--large-docs N");
                    }
                }
                "--no-large" => cfg.run_large = false,
                "--reps" => {
                    if let Some(v) = take(&mut i) {
                        cfg.reps = v.parse().expect("--reps N");
                    }
                }
                "--io-delay-us" => {
                    if let Some(v) = take(&mut i) {
                        cfg.io_delay_us = v.parse().expect("--io-delay-us N");
                    }
                }
                "--pool-pages" => {
                    if let Some(v) = take(&mut i) {
                        cfg.pool_pages = v.parse().expect("--pool-pages N");
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --docs N  --large-docs N  --no-large  --reps N  \
                         --io-delay-us N  --pool-pages N"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        cfg
    }

    pub fn io_delay(&self) -> Option<Duration> {
        (self.io_delay_us > 0).then(|| Duration::from_micros(self.io_delay_us))
    }
}

/// Merge measurement rows into the PR benchmark snapshot —
/// `results/BENCH_PR1.json`, or the path in `SINEW_BENCH_SNAPSHOT`. Each
/// harness binary contributes its own section; re-running a binary
/// overwrites that section's keys and leaves the others untouched, so the
/// snapshot accumulates across `table3_load`, `table5_virtual_overhead`, …
pub fn record_snapshot(section: &str, entries: &[(&str, f64)]) {
    use sinew_json::Value;
    let path = std::env::var("SINEW_BENCH_SNAPSHOT")
        .unwrap_or_else(|_| "results/BENCH_PR1.json".to_string());
    let mut root = match std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| sinew_json::parse(&s).ok())
    {
        Some(Value::Object(pairs)) => pairs,
        _ => Vec::new(),
    };
    let mut sec = match root.iter().position(|(k, _)| k.as_str() == section) {
        Some(i) => match root.remove(i).1 {
            Value::Object(pairs) => pairs,
            _ => Vec::new(),
        },
        None => Vec::new(),
    };
    for (k, v) in entries {
        match sec.iter_mut().find(|(name, _)| name.as_str() == *k) {
            Some(slot) => slot.1 = Value::Float(*v),
            None => sec.push((k.to_string(), Value::Float(*v))),
        }
    }
    root.push((section.to_string(), Value::Object(sec)));
    if let Err(e) = std::fs::write(&path, Value::Object(root).to_json()) {
        eprintln!("warning: could not write bench snapshot {path}: {e}");
    }
}

/// Time one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Average over `reps` runs.
pub fn time_avg(reps: u32, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps.max(1)
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Human-readable byte size.
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Fixed-width table printer for harness output.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    pub fn new(headers: &[&str], widths: &[usize]) -> TablePrinter {
        let widths = widths.to_vec();
        let mut line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            line.push_str(&format!("{h:<w$}  ", w = w));
        }
        println!("{}", line.trim_end());
        println!("{}", "-".repeat(line.len().min(100)));
        TablePrinter { widths }
    }

    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:<w$}  ", w = w));
        }
        println!("{}", line.trim_end());
    }
}

/// A temp directory that cleans up on drop.
pub struct TempDir {
    pub path: std::path::PathBuf,
}

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "sinew-bench-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    pub fn file(&self, name: &str) -> std::path::PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
