//! **Figure 8** — the random-update task added to NoBench (§6.6):
//!
//! ```sql
//! UPDATE test SET sparse_588 = 'DUMMY' WHERE sparse_589 = 'GBRDCMBQGA======';
//! ```
//!
//! Paper shape: Sinew beats MongoDB despite transactional overhead
//! (Mongo's predicate evaluation is slower); PG JSON pays text
//! re-serialization; EAV pays the oid self-join.

use sinew_bench::{ms, time_avg, HarnessConfig, TablePrinter};
use sinew_nobench::queries::{EavSut, MongoSut, PgJsonSut, SinewSut, SystemUnderTest};
use sinew_nobench::{generate, NoBenchConfig, QueryParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scales: Vec<(&str, u64)> = if cfg.run_large {
        vec![("small", cfg.small_docs), ("large", cfg.large_docs)]
    } else {
        vec![("small", cfg.small_docs)]
    };

    for (scale, n) in scales {
        println!("\n=== Figure 8 — random update, {scale} scale, {n} records ===\n");
        let gen_cfg = NoBenchConfig::default();
        let docs = generate(n, &gen_cfg);
        let params = QueryParams::derive(&docs, &gen_cfg);

        let mut suts: Vec<Box<dyn SystemUnderTest>> = vec![
            Box::new(MongoSut::new()),
            Box::new(SinewSut::in_memory()),
            Box::new(EavSut::in_memory()),
            Box::new(PgJsonSut::in_memory()),
        ];
        for sut in &mut suts {
            sut.load(&docs).unwrap_or_else(|e| panic!("{} load: {e}", sut.name()));
        }

        let t = TablePrinter::new(&["System", "Update (ms)", "affected"], &[10, 12, 8]);
        for sut in &suts {
            let affected = sut.run_update(&params).unwrap_or_else(|e| {
                panic!("{} update failed: {e}", sut.name());
            });
            // the dominant cost is the predicate scan, so repeating the
            // statement (subsequent runs affect the same rows) is fair
            let avg = time_avg(cfg.reps, || {
                sut.run_update(&params).unwrap();
            });
            t.row(&[sut.name().to_string(), ms(avg), affected.to_string()]);
        }
        println!(
            "\nShape checks: among the RDBMS systems Sinew << PG JSON << EAV \
             (the paper's ordering); the thin Mongo stand-in lacks real \
             server overhead — see EXPERIMENTS.md."
        );
    }
}
