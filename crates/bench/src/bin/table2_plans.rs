//! **Tables 1 & 2** — the effect of virtual vs physical columns on query
//! plans, over Twitter-shaped data.
//!
//! Paper Table 2 (10M tweets):
//!
//! ```text
//! #  Column             With Virtual Column          With Physical Column
//! 1  user.id            HashAggregate                Unique
//! 2  user.id            HashAggregate                GroupAggregate
//! 3  user.lang          join order d1=d2 first       filter first, t1=d1 first
//! 4  user.screen_name   merge joins                  hash join appears
//! ```
//!
//! The mechanism: with virtual columns the optimizer "assumes a fixed
//! selectivity ... (200 rows out of 10 million)"; with physical columns
//! ANALYZE statistics drive the choices. This binary runs the four Table 1
//! queries under both conditions and prints the chosen operators.

use sinew_bench::HarnessConfig;
use sinew_core::{AnalyzerPolicy, Sinew};
use sinew_nobench::twitter::{deletes, tweets, TwitterConfig};
use sinew_rdbms::PlannerConfig;

const QUERIES: [(&str, &str); 4] = [
    ("Q1", r#"SELECT DISTINCT "user.id" FROM tweets"#),
    ("Q2", r#"SELECT SUM(retweet_count) FROM tweets GROUP BY "user.id""#),
    (
        "Q3",
        r#"SELECT t1."user.id" FROM tweets t1, deletes d1, deletes d2
           WHERE t1.id_str = d1."delete.status.id_str"
           AND d1."delete.status.user_id" = d2."delete.status.user_id"
           AND t1."user.lang" = 'msa'"#,
    ),
    (
        "Q4",
        r#"SELECT t1."user.screen_name", t2."user.screen_name"
           FROM tweets t1, tweets t2, tweets t3
           WHERE t1."user.screen_name" = t3."user.screen_name"
           AND t1."user.screen_name" = t2.in_reply_to_screen_name
           AND t2."user.screen_name" = t3.in_reply_to_screen_name"#,
    ),
];

fn build(materialize: bool, n: u64) -> Sinew {
    let sinew = Sinew::in_memory();
    // small work_mem so realistic cardinalities overflow hash operators,
    // as on the paper's 10M-row tables
    let pc = PlannerConfig { work_mem: 256 * 1024, ..PlannerConfig::default() };
    sinew.db().set_planner_config(pc);
    sinew.create_collection("tweets").unwrap();
    sinew.create_collection("deletes").unwrap();
    let cfg = TwitterConfig::default();
    sinew.load_docs("tweets", &tweets(n, &cfg)).unwrap();
    sinew.load_docs("deletes", &deletes(n / 4, &cfg)).unwrap();
    if materialize {
        let policy = AnalyzerPolicy {
            density_threshold: 0.5,
            cardinality_threshold: 50,
            sample_rows: 50_000,
        };
        for table in ["tweets", "deletes"] {
            sinew.run_analyzer(table, &policy).unwrap();
            sinew.materialize_until_clean(table).unwrap();
            sinew.db().analyze(table).unwrap();
        }
    }
    sinew
}

/// The operator summary the paper's Table 2 reports: aggregation/distinct
/// operator plus join sequence.
fn summarize(plan: &str) -> String {
    let mut ops = Vec::new();
    for line in plan.lines() {
        let l = line.trim_start_matches([' ', '-', '>']);
        for op in ["Unique", "HashAggregate", "GroupAggregate", "Merge Join", "Hash Join", "Nested Loop"] {
            if l.starts_with(op) {
                // attach the join condition so order differences are visible
                let cond = l.split("Cond: ").nth(1).unwrap_or("").trim();
                if cond.is_empty() {
                    ops.push(op.to_string());
                } else {
                    ops.push(format!("{op}[{cond}]"));
                }
            }
        }
    }
    ops.join(" <- ")
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.small_docs;
    println!("\n=== Tables 1 & 2 — plan shapes, {n} tweets (paper: 10M) ===\n");

    let virtual_sinew = build(false, n);
    let physical_sinew = build(true, n);

    for (name, sql) in QUERIES {
        let vplan = virtual_sinew.explain(sql).unwrap();
        let pplan = physical_sinew.explain(sql).unwrap();
        println!("{name}:");
        println!("  virtual : {}", summarize(&vplan));
        println!("  physical: {}", summarize(&pplan));
        let differs = summarize(&vplan) != summarize(&pplan);
        println!("  -> plans {}", if differs { "DIFFER (paper: differ)" } else { "identical" });
        println!();
    }

    // Also demonstrate the order-of-magnitude execution gap the paper
    // reports for the self-join (Q4: 50 min -> 4 min).
    println!("Executing Q1/Q2 under both conditions:");
    for (name, sql) in &QUERIES[..2] {
        let (rows_v, t_v) = sinew_bench::time(|| virtual_sinew.query(sql).unwrap().rows.len());
        let (rows_p, t_p) = sinew_bench::time(|| physical_sinew.query(sql).unwrap().rows.len());
        assert_eq!(rows_v, rows_p, "{name} row mismatch");
        println!(
            "  {name}: virtual {} ms, physical {} ms ({} rows)",
            sinew_bench::ms(t_v),
            sinew_bench::ms(t_p),
            rows_v
        );
    }
}
