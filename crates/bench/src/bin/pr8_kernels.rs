//! PR8 snapshot harness — SIMD-width columnar kernels.
//!
//! Drives `ColumnStore` directly (no SQL layer) so the measurement
//! isolates the kernel layer itself: per-slot scalar evaluation
//! (`SINEW_SIMD=0`, the differential oracle) against the batched
//! word-parallel kernels, per encoding:
//!
//! * **bit-packed ints** — 64-value block unpacking + range masks;
//! * **dictionary text** — predicate rewritten to a code range, scan
//!   runs over packed codes only;
//! * **run-length runs** — one predicate eval per run, bitmap-word
//!   emission for accepted runs.
//!
//! Every timed shape is first checked identical across the two paths
//! (selection offsets and gathered values), so the snapshot can't record
//! a fast-but-wrong kernel. Writes the `kernels` section of
//! `results/BENCH_PR8.json` (override via SINEW_BENCH_SNAPSHOT) and
//! asserts the ≥2x floor on the bit-packed and dictionary predicate
//! scans that PR8's acceptance bar names.

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_rdbms::{ColumnStore, Datum, KernelStats};
use std::time::Duration;

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// `n` rows plus one sealing extra, with every 97th row deleted so the
/// kernels run against a liveness bitmap with holes (the realistic case),
/// but far above the re-seal threshold.
fn build_store(name: &str, n: u64, mk: impl Fn(u64) -> Datum) -> ColumnStore {
    let mut cs = ColumnStore::new(name);
    for i in 0..=n {
        cs.append(i, mk(i));
    }
    for i in (0..n).step_by(97) {
        cs.delete(i);
    }
    cs
}

/// One bounded select over every segment of the store; offsets are
/// collected per segment so the two modes can be diffed exactly.
fn select_all(
    cs: &ColumnStore,
    lo: &Datum,
    hi: &Datum,
    out: &mut Vec<Vec<u32>>,
) -> KernelStats {
    out.clear();
    let mut stats = KernelStats::default();
    for seg in 0..cs.n_segments() {
        let mut offs = Vec::new();
        stats.merge(&cs.select_segment(seg, Some(lo), true, Some(hi), true, &mut offs));
        out.push(offs);
    }
    stats
}

/// Gather every previously selected offset back into datums.
fn gather_all(cs: &ColumnStore, offs: &[Vec<u32>], out: &mut Vec<Vec<Datum>>) -> KernelStats {
    out.clear();
    let mut stats = KernelStats::default();
    for (seg, o) in offs.iter().enumerate() {
        let mut vals = Vec::new();
        cs.gather(seg as u64, o, &mut vals, &mut stats);
        out.push(vals);
    }
    stats
}

struct Case {
    name: &'static str,
    store: ColumnStore,
    lo: Datum,
    hi: Datum,
    /// asserted ≥2x floor on the predicate scan (PR8 acceptance bar)
    floor: Option<f64>,
}

fn main() {
    let cfg = HarnessConfig::from_args();
    if std::env::var_os("SINEW_BENCH_SNAPSHOT").is_none() {
        std::env::set_var("SINEW_BENCH_SNAPSHOT", "results/BENCH_PR8.json");
    }
    let prev_simd = std::env::var("SINEW_SIMD").ok();

    let n: u64 = if cfg.run_large { 8 << 20 } else { 1 << 20 };
    println!("=== PR8 — batched kernels vs scalar oracle, {n} rows per encoding ===\n");

    let cases = [
        Case {
            name: "bit-packed int",
            store: build_store("packed", n, |i| Datum::Int((mix(i) % 1024) as i64)),
            lo: Datum::Int(100),
            hi: Datum::Int(200),
            floor: Some(2.0),
        },
        Case {
            name: "dictionary text",
            store: build_store("dict", n, |i| Datum::Text(format!("cat{:02}", mix(i) % 24))),
            lo: Datum::Text("cat05".into()),
            hi: Datum::Text("cat09".into()),
            floor: Some(2.0),
        },
        Case {
            name: "rle runs",
            store: build_store("rle", n, |i| Datum::Int((i / 512) as i64)),
            lo: Datum::Int(100),
            hi: Datum::Int(300),
            floor: None,
        },
    ];

    let table = TablePrinter::new(
        &["Encoding", "Scalar (ms)", "Batched (ms)", "Speedup", "Gather x"],
        &[18, 12, 13, 9, 9],
    );
    let mut snapshot: Vec<(String, f64)> = vec![("rows".into(), n as f64)];
    for case in &cases {
        let mut offs_scalar = Vec::new();
        let mut offs_batched = Vec::new();
        let mut vals_scalar = Vec::new();
        let mut vals_batched = Vec::new();

        // Differential check before any timing: both paths must agree on
        // the selected offsets and the gathered values.
        std::env::set_var("SINEW_SIMD", "0");
        let st_scalar = select_all(&case.store, &case.lo, &case.hi, &mut offs_scalar);
        gather_all(&case.store, &offs_scalar, &mut vals_scalar);
        std::env::set_var("SINEW_SIMD", "1");
        let st_batched = select_all(&case.store, &case.lo, &case.hi, &mut offs_batched);
        let gt_batched = gather_all(&case.store, &offs_batched, &mut vals_batched);
        assert_eq!(offs_scalar, offs_batched, "{}: selection offsets diverged", case.name);
        assert_eq!(vals_scalar, vals_batched, "{}: gathered values diverged", case.name);
        assert_eq!(st_scalar.batched, 0, "{}: scalar oracle took a batched path", case.name);
        match case.name {
            "rle runs" => assert!(
                st_batched.rle_runs_skipped > 0,
                "{}: no runs were skipped at run level",
                case.name
            ),
            _ => assert!(
                st_batched.batched > 0 && gt_batched.batched > 0,
                "{}: batched kernels never engaged",
                case.name
            ),
        }
        let hits: usize = offs_scalar.iter().map(Vec::len).sum();

        let time_mode = |mode: &str, f: &mut dyn FnMut()| -> Duration {
            std::env::set_var("SINEW_SIMD", mode);
            time_avg(cfg.reps, f)
        };
        let mut out = Vec::new();
        let t_sel_scalar = time_mode("0", &mut || {
            select_all(&case.store, &case.lo, &case.hi, &mut out);
        });
        let t_sel_batched = time_mode("1", &mut || {
            select_all(&case.store, &case.lo, &case.hi, &mut out);
        });
        let mut vals = Vec::new();
        let t_gat_scalar = time_mode("0", &mut || {
            gather_all(&case.store, &offs_scalar, &mut vals);
        });
        let t_gat_batched = time_mode("1", &mut || {
            gather_all(&case.store, &offs_scalar, &mut vals);
        });

        let sel_speedup = t_sel_scalar.as_secs_f64() / t_sel_batched.as_secs_f64();
        let gat_speedup = t_gat_scalar.as_secs_f64() / t_gat_batched.as_secs_f64();
        table.row(&[
            case.name.into(),
            ms(t_sel_scalar),
            ms(t_sel_batched),
            format!("{sel_speedup:.1}x"),
            format!("{gat_speedup:.1}x"),
        ]);
        let key = case.name.replace([' ', '-'], "_");
        snapshot.push((format!("{key}_hits"), hits as f64));
        snapshot.push((format!("{key}_scalar_ms"), t_sel_scalar.as_secs_f64() * 1e3));
        snapshot.push((format!("{key}_batched_ms"), t_sel_batched.as_secs_f64() * 1e3));
        snapshot.push((format!("{key}_speedup"), sel_speedup));
        snapshot.push((format!("{key}_gather_scalar_ms"), t_gat_scalar.as_secs_f64() * 1e3));
        snapshot.push((format!("{key}_gather_batched_ms"), t_gat_batched.as_secs_f64() * 1e3));
        snapshot.push((format!("{key}_gather_speedup"), gat_speedup));

        if let Some(floor) = case.floor {
            assert!(
                sel_speedup >= floor,
                "{}: predicate-scan speedup {sel_speedup:.2}x below the {floor}x bar",
                case.name
            );
        }
    }

    let entries: Vec<(&str, f64)> = snapshot.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("kernels", &entries);

    match prev_simd {
        Some(v) => std::env::set_var("SINEW_SIMD", v),
        None => std::env::remove_var("SINEW_SIMD"),
    }
    println!("\nsnapshot updated");
}
