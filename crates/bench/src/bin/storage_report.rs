//! `storage_report` — exercise a full analyzer → materializer cycle over a
//! synthetic load and render the storage introspection report (paper §3.1:
//! physical vs virtual column split, reservoir vs column bytes, dirty-pass
//! progress) at each stage. With `--check` the JSON form is re-parsed and
//! its invariants asserted, so CI can verify the report end to end.
//!
//! Flags (parsed here — this binary's flags differ from `HarnessConfig`):
//!
//! * `--docs N`   documents to load (default 2000)
//! * `--out PATH` where to write the text snapshot
//!   (default `results/STORAGE_REPORT_PR2.txt`)
//! * `--check`    parse the JSON report and assert invariants; exit 1 on
//!   failure

use sinew_core::{AnalyzerPolicy, Sinew, StepBudget, StorageReport};
use sinew_json::Value;

struct Args {
    docs: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args =
        Args { docs: 2_000, out: "results/STORAGE_REPORT_PR2.txt".to_string(), check: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--docs" => {
                args.docs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--docs expects a number"))
            }
            "--out" => args.out = it.next().unwrap_or_else(|| panic!("--out expects a path")),
            "--check" => args.check = true,
            other => panic!("unknown flag {other} (storage_report takes --docs/--out/--check)"),
        }
    }
    args
}

/// Dense `id`/`name`, 40%-sparse `tag`, 5%-rare `debug` — a mix that makes
/// the analyzer split physical from virtual.
fn synthetic_docs(n: usize) -> String {
    (0..n)
        .map(|i| {
            let mut doc = format!(r#"{{"id": {i}, "name": "user-{i}""#);
            if i % 5 != 0 {
                doc.push_str(&format!(r#", "tag": "t{}""#, i % 7));
            }
            if i % 20 == 0 {
                doc.push_str(r#", "debug": true"#);
            }
            doc.push_str("}\n");
            doc
        })
        .collect()
}

fn check_report(report: &StorageReport) -> Result<(), String> {
    let json = report.to_json();
    let parsed = sinew_json::parse(&json).map_err(|e| format!("report JSON re-parse: {e:?}"))?;
    let Value::Object(fields) = &parsed else {
        return Err("report JSON is not an object".into());
    };
    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    for key in ["table", "rows", "physical_columns", "virtual_columns", "metrics"] {
        if get(key).is_none() {
            return Err(format!("report JSON lacks `{key}`"));
        }
    }
    if report.physical_columns.is_empty() {
        return Err("no column materialized after the analyzer cycle".into());
    }
    if report.metrics.plan_cache_hit_rate() <= 0.0 {
        return Err("plan-cache hit rate is zero after repeated queries".into());
    }
    if report.metrics.materializer_passes_completed == 0 {
        return Err("no materializer pass completed".into());
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let mut out = String::new();

    let sinew = Sinew::in_memory();
    sinew.create_collection("events").unwrap();
    sinew.load_jsonl("events", &synthetic_docs(args.docs)).unwrap();

    out.push_str("--- after load (all virtual) ---\n");
    out.push_str(&sinew.storage_report("events").unwrap().render_text());

    let policy = AnalyzerPolicy {
        density_threshold: 0.6,
        cardinality_threshold: 50,
        sample_rows: args.docs as u64,
    };
    sinew.run_analyzer("events", &policy).unwrap();
    sinew.materialize_step("events", StepBudget { rows: (args.docs / 4).max(1) as u64 }).unwrap();

    out.push_str("\n--- mid-materialization (bounded step) ---\n");
    out.push_str(&sinew.storage_report("events").unwrap().render_text());

    sinew.materialize_until_clean("events").unwrap();
    // repeated extraction queries warm the plan cache for the hit-rate row
    for _ in 0..3 {
        sinew.query("SELECT COUNT(*) FROM events WHERE debug IS NOT NULL").unwrap();
        sinew.query("SELECT COUNT(*) FROM events WHERE tag = 't3'").unwrap();
    }

    let report = sinew.storage_report("events").unwrap();
    out.push_str("\n--- after materialization + warm queries ---\n");
    out.push_str(&report.render_text());

    print!("{out}");
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", args.out));
    println!("\nsnapshot written to {}", args.out);

    if args.check {
        match check_report(&report) {
            Ok(()) => println!("check: ok"),
            Err(e) => {
                eprintln!("check: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
}
