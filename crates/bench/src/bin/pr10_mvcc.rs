//! PR10 snapshot harness — MVCC snapshot reads vs the legacy single-writer
//! lock path.
//!
//! One 100k-row table per engine; the main thread runs full-scan
//! aggregating readers for a fixed window while 0 / 1 / 4 writer threads
//! hammer single-row autocommit UPDATEs. Under the legacy path every
//! reader serializes behind the table lock the writers hold; under MVCC
//! readers scan a snapshot and never block. Every reader scan is checked
//! for a torn read (COUNT must never move — updates preserve row count),
//! and with writers present the MVCC run must actually retain versions.
//!
//! Writes the `mvcc_readers` section of `results/BENCH_PR10.json`
//! (override via `SINEW_BENCH_SNAPSHOT`) and enforces the PR10
//! no-regression floor: single-threaded (0-writer) MVCC reader throughput
//! must stay within 25% of the legacy lock path.

use sinew_bench::{record_snapshot, HarnessConfig, TablePrinter};
use sinew_rdbms::{Database, Datum};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const ROWS: u64 = 100_000;
const READ_Q: &str = "SELECT SUM(v), COUNT(*) FROM f WHERE g < 800";

fn build(mvcc: bool) -> Arc<Database> {
    let db = Arc::new(Database::in_memory_mvcc(mvcc));
    db.execute("CREATE TABLE f (id int, g int, v int)").unwrap();
    let mut chunk: Vec<Vec<Datum>> = Vec::with_capacity(20_000);
    for i in 0..ROWS {
        let h = mix(i);
        chunk.push(vec![
            Datum::Int(i as i64),
            Datum::Int((h % 1_000) as i64),
            Datum::Int((h % 97) as i64),
        ]);
        if chunk.len() == 20_000 {
            db.insert_rows("f", &chunk).unwrap();
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        db.insert_rows("f", &chunk).unwrap();
    }
    db.execute("ANALYZE f").unwrap();
    db
}

/// Reader throughput (scans/s) over `window` with `writers` update threads
/// running. Returns (scans_per_sec, writes_done).
fn measure(
    db: &Arc<Database>,
    writers: usize,
    window: Duration,
    expect_count: &Datum,
) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..writers {
        let db = db.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            let mut i = w as u64;
            while !stop.load(Ordering::Relaxed) {
                let id = mix(i) % ROWS;
                db.execute(&format!("UPDATE f SET v = v + 1 WHERE id = {id}")).unwrap();
                i += 1;
                n += 1;
            }
            n
        }));
    }
    let start = Instant::now();
    let mut scans = 0u64;
    while start.elapsed() < window {
        let r = db.execute(READ_Q).unwrap();
        assert_eq!(
            &r.rows[0][1], expect_count,
            "torn read: COUNT moved under concurrent UPDATEs"
        );
        scans += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let writes: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (scans as f64 / elapsed, writes)
}

fn main() {
    let cfg = HarnessConfig::from_args();
    if std::env::var_os("SINEW_BENCH_SNAPSHOT").is_none() {
        std::env::set_var("SINEW_BENCH_SNAPSHOT", "results/BENCH_PR10.json");
    }
    let host_cores =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let window = Duration::from_millis(300u64.saturating_mul(cfg.reps as u64).max(900));

    println!(
        "=== PR10 — snapshot readers vs legacy lock path, {ROWS}-row scan under \
         0/1/4 writers ({host_cores} host cores) ===\n"
    );

    let table = TablePrinter::new(
        &["Engine", "0 wr (scan/s)", "1 wr (scan/s)", "4 wr (scan/s)", "writes/s @4"],
        &[10, 14, 14, 14, 12],
    );
    let mut fields: Vec<(&str, f64)> = vec![("rows", ROWS as f64), ("host_cores", host_cores as f64)];
    let mut results: Vec<(bool, Vec<f64>)> = Vec::new();
    for mvcc in [false, true] {
        let db = build(mvcc);
        // Updates are count-preserving, so the matching-row count is the
        // torn-read canary for every scan that follows.
        let expect_count = db.execute(READ_Q).unwrap().rows[0][1].clone();
        let mut rates = Vec::new();
        let mut w4_rate = 0.0;
        for writers in [0usize, 1, 4] {
            let (rate, writes) = measure(&db, writers, window, &expect_count);
            rates.push(rate);
            if writers == 4 {
                w4_rate = writes as f64 / window.as_secs_f64();
            }
        }
        if mvcc {
            let stats = db.exec_stats();
            assert!(
                stats.versions_created > 0,
                "MVCC run with writers never retained a version — snapshots never engaged"
            );
        }
        let label = if mvcc { "mvcc" } else { "legacy" };
        table.row(&[
            label.into(),
            format!("{:.0}", rates[0]),
            format!("{:.0}", rates[1]),
            format!("{:.0}", rates[2]),
            format!("{w4_rate:.0}"),
        ]);
        for (i, writers) in [0usize, 1, 4].iter().enumerate() {
            fields.push((
                match (mvcc, writers) {
                    (false, 0) => "legacy_w0_scans_per_s",
                    (false, 1) => "legacy_w1_scans_per_s",
                    (false, _) => "legacy_w4_scans_per_s",
                    (true, 0) => "mvcc_w0_scans_per_s",
                    (true, 1) => "mvcc_w1_scans_per_s",
                    (true, _) => "mvcc_w4_scans_per_s",
                },
                rates[i],
            ));
        }
        results.push((mvcc, rates));
    }

    let legacy0 = results[0].1[0];
    let mvcc0 = results[1].1[0];
    let ratio = mvcc0 / legacy0;
    fields.push(("single_thread_ratio", ratio));
    record_snapshot("mvcc_readers", &fields);

    println!("\nsingle-threaded MVCC/legacy reader ratio: {ratio:.2}x (floor 0.75x)");
    assert!(
        ratio >= 0.75,
        "single-threaded no-regression floor: MVCC readers at {ratio:.2}x of legacy"
    );
}
