//! **Table 3** — load time and storage size for the four systems at two
//! scales.
//!
//! Paper values (16M / 64M records):
//!
//! ```text
//! System    Load (s)          Size (GB)
//! MongoDB   522.24 / 2170.13  10.1 / 40.9
//! Sinew     527.79 / 2155.12   9.2 / 33.0
//! EAV      1835.18 / 9910.87  22.0 / 87.0
//! PG JSON   284.11 / 1420.86  10.2 / 42.0
//! Original                    10.5 / 38.1
//! ```
//!
//! Shape claims to reproduce: PG JSON loads fastest (syntax check only);
//! Sinew and MongoDB cost similar (both transform to binary); EAV is ~4×
//! slower and ~2× larger than everything; Sinew is the most compact
//! (dictionary encoding); BSON ≳ original.

use sinew_bench::{human_bytes, ms, record_snapshot, time, HarnessConfig, TablePrinter};
use sinew_core::LoadOptions;
use sinew_nobench::queries::{EavSut, MongoSut, PgJsonSut, SinewSut, SystemUnderTest};
use sinew_nobench::{generate, NoBenchConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scales: Vec<(&str, u64)> = if cfg.run_large {
        vec![("small", cfg.small_docs), ("large", cfg.large_docs)]
    } else {
        vec![("small", cfg.small_docs)]
    };

    for (scale, n) in scales {
        println!("\n=== Table 3 — {scale} scale ({n} records; paper: 16M/64M) ===\n");
        let gen_cfg = NoBenchConfig::default();
        let docs = generate(n, &gen_cfg);
        let original_bytes: u64 = docs.iter().map(|d| d.to_json().len() as u64 + 1).sum();

        let t = TablePrinter::new(
            &["System", "Load (ms)", "Size", "Size/original"],
            &[10, 12, 12, 14],
        );
        // MongoDB first.
        let mut mongo = MongoSut::new();
        let (r, dur) = time(|| mongo.load(&docs));
        r.unwrap();
        let row = |name: &str, dur, size: u64| {
            t.row(&[
                name.to_string(),
                ms(dur),
                human_bytes(size),
                format!("{:.2}x", size as f64 / original_bytes as f64),
            ]);
        };
        row("MongoDB", dur, mongo.size_bytes());

        // Sinew's load is serialization + insertion only (§3.2.1); the
        // materializer is a background process in the paper, so it runs
        // untimed here, before the size is measured (the paper's 9.2 GB is
        // the settled, post-materialization footprint). Timed twice: the
        // serial baseline and the parallel loader, which must produce a
        // byte-identical reservoir.
        let mut sinew_sut = SinewSut::in_memory();
        sinew_sut.auto_materialize = false;
        sinew_sut.sinew.create_collection("nobench").unwrap();
        let (r, dur_serial) = time(|| {
            sinew_sut.sinew.load_docs_with("nobench", &docs, LoadOptions::serial())
        });
        r.unwrap();

        let mut sinew_par = SinewSut::in_memory();
        sinew_par.auto_materialize = false;
        sinew_par.sinew.create_collection("nobench").unwrap();
        let (r, dur_par) = time(|| {
            sinew_par.sinew.load_docs_with("nobench", &docs, LoadOptions::default())
        });
        r.unwrap();

        // determinism: parallel load must equal the serial reservoir
        let rows_n = sinew_sut.sinew.db().row_count("nobench").unwrap();
        assert_eq!(rows_n, sinew_par.sinew.db().row_count("nobench").unwrap());
        for rid in 0..rows_n {
            assert_eq!(
                sinew_sut.sinew.db().get_row("nobench", rid).unwrap(),
                sinew_par.sinew.db().get_row("nobench", rid).unwrap(),
                "parallel load diverged from serial at row {rid}"
            );
        }

        {
            use sinew_core::AnalyzerPolicy;
            sinew_sut.sinew.run_analyzer("nobench", &AnalyzerPolicy::default()).unwrap();
            sinew_sut.sinew.materialize_until_clean("nobench").unwrap();
        }
        row("Sinew", dur_serial, sinew_sut.size_bytes());
        row("Sinew (par)", dur_par, sinew_par.size_bytes());

        let mut eav = EavSut::in_memory();
        let (r, dur_eav) = time(|| eav.load(&docs));
        r.unwrap();
        row("EAV", dur_eav, eav.size_bytes());

        let mut pg = PgJsonSut::in_memory();
        let (r, dur_pg) = time(|| pg.load(&docs));
        r.unwrap();
        row("PG JSON", dur_pg, pg.size_bytes());
        t.row(&[
            "Original".to_string(),
            "-".to_string(),
            human_bytes(original_bytes),
            "1.00x".to_string(),
        ]);
        println!(
            "\nShape checks: PG JSON loads fastest; EAV slowest+largest; \
             Sinew most compact; BSON >= original; Sinew (par) <= Sinew \
             with an identical reservoir."
        );
        record_snapshot(
            &format!("table3_load_{scale}"),
            &[
                ("docs", n as f64),
                ("mongodb_ms", dur.as_secs_f64() * 1e3),
                ("sinew_serial_ms", dur_serial.as_secs_f64() * 1e3),
                ("sinew_parallel_ms", dur_par.as_secs_f64() * 1e3),
                ("eav_ms", dur_eav.as_secs_f64() * 1e3),
                ("pgjson_ms", dur_pg.as_secs_f64() * 1e3),
            ],
        );
    }
}
