//! **Table 3** — load time and storage size for the four systems at two
//! scales.
//!
//! Paper values (16M / 64M records):
//!
//! ```text
//! System    Load (s)          Size (GB)
//! MongoDB   522.24 / 2170.13  10.1 / 40.9
//! Sinew     527.79 / 2155.12   9.2 / 33.0
//! EAV      1835.18 / 9910.87  22.0 / 87.0
//! PG JSON   284.11 / 1420.86  10.2 / 42.0
//! Original                    10.5 / 38.1
//! ```
//!
//! Shape claims to reproduce: PG JSON loads fastest (syntax check only);
//! Sinew and MongoDB cost similar (both transform to binary); EAV is ~4×
//! slower and ~2× larger than everything; Sinew is the most compact
//! (dictionary encoding); BSON ≳ original.

use sinew_bench::{human_bytes, ms, time, HarnessConfig, TablePrinter};
use sinew_nobench::queries::{EavSut, MongoSut, PgJsonSut, SinewSut, SystemUnderTest};
use sinew_nobench::{generate, NoBenchConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scales: Vec<(&str, u64)> = if cfg.run_large {
        vec![("small", cfg.small_docs), ("large", cfg.large_docs)]
    } else {
        vec![("small", cfg.small_docs)]
    };

    for (scale, n) in scales {
        println!("\n=== Table 3 — {scale} scale ({n} records; paper: 16M/64M) ===\n");
        let gen_cfg = NoBenchConfig::default();
        let docs = generate(n, &gen_cfg);
        let original_bytes: u64 = docs.iter().map(|d| d.to_json().len() as u64 + 1).sum();

        let t = TablePrinter::new(
            &["System", "Load (ms)", "Size", "Size/original"],
            &[10, 12, 12, 14],
        );
        // MongoDB first.
        let mut mongo = MongoSut::new();
        let (r, dur) = time(|| mongo.load(&docs));
        r.unwrap();
        let row = |name: &str, dur, size: u64| {
            t.row(&[
                name.to_string(),
                ms(dur),
                human_bytes(size),
                format!("{:.2}x", size as f64 / original_bytes as f64),
            ]);
        };
        row("MongoDB", dur, mongo.size_bytes());

        // Sinew's load is serialization + insertion only (§3.2.1); the
        // materializer is a background process in the paper, so it runs
        // untimed here, before the size is measured (the paper's 9.2 GB is
        // the settled, post-materialization footprint).
        let mut sinew_sut = SinewSut::in_memory();
        sinew_sut.auto_materialize = false;
        let (r, dur) = time(|| sinew_sut.load(&docs));
        r.unwrap();
        {
            use sinew_core::AnalyzerPolicy;
            sinew_sut.sinew.run_analyzer("nobench", &AnalyzerPolicy::default()).unwrap();
            sinew_sut.sinew.materialize_until_clean("nobench").unwrap();
        }
        row("Sinew", dur, sinew_sut.size_bytes());

        let mut eav = EavSut::in_memory();
        let (r, dur) = time(|| eav.load(&docs));
        r.unwrap();
        row("EAV", dur, eav.size_bytes());

        let mut pg = PgJsonSut::in_memory();
        let (r, dur) = time(|| pg.load(&docs));
        r.unwrap();
        row("PG JSON", dur, pg.size_bytes());
        t.row(&[
            "Original".to_string(),
            "-".to_string(),
            human_bytes(original_bytes),
            "1.00x".to_string(),
        ]);
        println!(
            "\nShape checks: PG JSON loads fastest; EAV slowest+largest; \
             Sinew most compact; BSON >= original."
        );
    }
}
