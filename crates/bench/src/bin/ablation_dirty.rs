//! **Ablation: dirty-column (COALESCE) overhead** — §3.1.4's claim:
//!
//! "These queries run slightly slower than queries against non-dirty
//! columns, due to the need to add the COALESCE function to query
//! processing. In our PostgreSQL-based implementation, we observed a
//! maximum slowdown of 10% for queries that access columns that must be
//! coalesced."
//!
//! This harness measures the same query against a column that is fully
//! virtual, 50% materialized (dirty → COALESCE), and fully materialized.

use sinew_bench::{ms, time_avg, HarnessConfig, TablePrinter};
use sinew_core::{AnalyzerPolicy, Sinew, StepBudget};
use sinew_nobench::{generate, NoBenchConfig};

fn build(n: u64) -> Sinew {
    let sinew = Sinew::in_memory();
    sinew.create_collection("nobench").unwrap();
    sinew.load_docs("nobench", &generate(n, &NoBenchConfig::default())).unwrap();
    sinew
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.small_docs;
    println!("\n=== Ablation — COALESCE overhead of dirty columns, {n} records ===\n");

    // Two measurements:
    //  (a) a minimal query on the column alone — here "dirty" pays not just
    //      COALESCE but the reservoir *decode* that a clean column avoids
    //      entirely (CPU-bound worst case, larger than the paper's 10%);
    //  (b) the same query also touching an always-virtual column, so the
    //      reservoir is decoded in every state — isolating the pure
    //      COALESCE overhead the paper's §3.1.4 figure measures.
    let sql_min = "SELECT COUNT(*) FROM nobench WHERE str1 IS NOT NULL";
    let sql_iso =
        "SELECT COUNT(*) FROM nobench WHERE str1 IS NOT NULL AND str2 IS NOT NULL";
    let policy = AnalyzerPolicy {
        density_threshold: 0.5,
        cardinality_threshold: 100,
        sample_rows: 10_000,
    };

    let t = TablePrinter::new(
        &["State", "min (ms)", "vs clean", "isolated (ms)", "vs clean"],
        &[26, 10, 10, 14, 10],
    );

    // fully virtual
    let virt = build(n);
    // 50% materialized (dirty: rewriter emits COALESCE)
    let half = build(n);
    half.run_analyzer("nobench", &policy).unwrap();
    // materialize str1 halfway; it is the first dirty attribute by id
    half.materialize_step("nobench", StepBudget { rows: n / 2 }).unwrap();
    assert!(
        half.logical_schema("nobench").iter().any(|c| c.name == "str1" && c.dirty),
        "str1 should be dirty at 50%"
    );
    // fully materialized (clean)
    let clean = build(n);
    clean.run_analyzer("nobench", &policy).unwrap();
    clean.materialize_until_clean("nobench").unwrap();
    clean.db().analyze("nobench").unwrap();

    let measure = |s: &sinew_core::Sinew, sql: &str| {
        time_avg(cfg.reps, || {
            s.query(sql).unwrap();
        })
    };
    let rel = |d: std::time::Duration, base: std::time::Duration| {
        format!("{:+.1}%", (d.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0)
    };
    let states =
        [("all-virtual", &virt), ("half-materialized (dirty)", &half), ("fully materialized", &clean)];
    let measured: Vec<(String, std::time::Duration, std::time::Duration)> = states
        .iter()
        .map(|(label, s)| (label.to_string(), measure(s, sql_min), measure(s, sql_iso)))
        .collect();
    let (_, clean_min, clean_iso) = measured.last().unwrap().clone();
    for (label, a, b) in &measured {
        t.row(&[
            label.clone(),
            ms(*a),
            rel(*a, clean_min),
            ms(*b),
            rel(*b, clean_iso),
        ]);
    }
    println!(
        "\nShape checks: in the isolated measurement (reservoir decoded in \
         every state) the dirty column's COALESCE costs on the order of the \
         paper's <=10%; the minimal query shows the larger CPU-bound \
         worst case where dirtiness forces the reservoir to be read at all."
    );
}
