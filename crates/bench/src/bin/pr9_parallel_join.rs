//! PR9 snapshot harness — morsel-parallel partitioned hash join and
//! aggregation.
//!
//! Drives the full SQL engine over a 1M-row fact table: a 1M x 100k
//! equi-join with aggregates on both sides, and a 1M-row GROUP BY with
//! 10k groups, at 1 / 2 / 4 worker threads. Every timed configuration is
//! first checked byte-identical against the serial operators
//! (`SINEW_PARALLEL_JOIN=0`, `SINEW_PARALLEL_AGG=0`, one thread), so the
//! snapshot can't record a fast-but-wrong breaker, and the partitioned
//! build / pre-aggregation merge counters are asserted to have actually
//! engaged.
//!
//! Writes the `parallel_join` and `parallel_agg` sections of
//! `results/BENCH_PR9.json` (override via `SINEW_BENCH_SNAPSHOT`). The
//! 1.8x 4-thread floor from PR9's acceptance bar is asserted only when
//! the host actually has 4 or more cores — on the 1-vCPU CI container
//! the numbers are recorded but the floor is reported, not enforced.

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_rdbms::{Database, Datum, ExecLimits, ExecMode};

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const FACT_ROWS: u64 = 1_000_000;
const DIM_ROWS: u64 = 100_000;
const GROUPS: u64 = 10_000;

const JOIN_Q: &str = "SELECT COUNT(*), SUM(d.w), SUM(f.v) FROM f JOIN d ON f.k = d.k";
const AGG_Q: &str = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM f GROUP BY g";

fn build() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE f (k int, g int, v int)").unwrap();
    db.execute("CREATE TABLE d (k int, w int)").unwrap();
    let mut chunk: Vec<Vec<Datum>> = Vec::with_capacity(50_000);
    for i in 0..FACT_ROWS {
        let h = mix(i);
        chunk.push(vec![
            Datum::Int((h % DIM_ROWS) as i64),
            Datum::Int((h % GROUPS) as i64),
            Datum::Int((h % 1_000) as i64),
        ]);
        if chunk.len() == 50_000 {
            db.insert_rows("f", &chunk).unwrap();
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        db.insert_rows("f", &chunk).unwrap();
        chunk.clear();
    }
    for i in 0..DIM_ROWS {
        let h = mix(i ^ 0xd1b5_0000);
        chunk.push(vec![Datum::Int(i as i64), Datum::Int((h % 500) as i64)]);
        if chunk.len() == 50_000 {
            db.insert_rows("d", &chunk).unwrap();
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        db.insert_rows("d", &chunk).unwrap();
    }
    db.execute("ANALYZE f").unwrap();
    db.execute("ANALYZE d").unwrap();
    db
}

fn limits(threads: usize) -> ExecLimits {
    ExecLimits { mode: ExecMode::Streaming, exec_threads: threads, ..ExecLimits::default() }
}

fn set_knobs(on: bool) {
    let v = if on { "1" } else { "0" };
    std::env::set_var("SINEW_PARALLEL_JOIN", v);
    std::env::set_var("SINEW_PARALLEL_AGG", v);
}

/// Patch a string note into the snapshot file (record_snapshot itself
/// only carries numbers).
fn write_note(note: &str) {
    use sinew_json::Value;
    let path = std::env::var("SINEW_BENCH_SNAPSHOT")
        .unwrap_or_else(|_| "results/BENCH_PR9.json".to_string());
    let Some(Value::Object(mut root)) =
        std::fs::read_to_string(&path).ok().and_then(|s| sinew_json::parse(&s).ok())
    else {
        return;
    };
    root.retain(|(k, _)| k != "_note");
    root.push(("_note".to_string(), Value::Str(note.to_string())));
    let _ = std::fs::write(&path, Value::Object(root).to_json());
}

fn main() {
    let cfg = HarnessConfig::from_args();
    if std::env::var_os("SINEW_BENCH_SNAPSHOT").is_none() {
        std::env::set_var("SINEW_BENCH_SNAPSHOT", "results/BENCH_PR9.json");
    }
    let prev_join = std::env::var("SINEW_PARALLEL_JOIN").ok();
    let prev_agg = std::env::var("SINEW_PARALLEL_AGG").ok();
    let host_cores =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    println!(
        "=== PR9 — morsel-parallel breakers, {FACT_ROWS} x {DIM_ROWS} join / \
         {FACT_ROWS}-row {GROUPS}-group aggregate ({host_cores} host cores) ===\n"
    );
    let db = build();

    // Differential oracle before any timing: serial operators, one thread.
    set_knobs(false);
    db.set_exec_limits(limits(1));
    let oracle_join = db.execute(JOIN_Q).unwrap().rows;
    let oracle_agg = db.execute(AGG_Q).unwrap().rows;
    assert_eq!(oracle_agg.len() as u64, GROUPS, "every group populated");

    set_knobs(true);
    for threads in [1usize, 2, 4, 8] {
        db.set_exec_limits(limits(threads));
        assert_eq!(db.execute(JOIN_Q).unwrap().rows, oracle_join, "join diverged at {threads}");
        assert_eq!(db.execute(AGG_Q).unwrap().rows, oracle_agg, "agg diverged at {threads}");
    }
    // The parallel paths must have actually run at 4 threads.
    let before = db.exec_stats();
    db.set_exec_limits(limits(4));
    db.execute(JOIN_Q).unwrap();
    db.execute(AGG_Q).unwrap();
    let after = db.exec_stats();
    assert!(after.join_partitions > before.join_partitions, "partitioned build never engaged");
    assert!(
        after.agg_partition_merges > before.agg_partition_merges,
        "parallel pre-aggregation never engaged"
    );

    let table = TablePrinter::new(
        &["Workload", "1 thr (ms)", "2 thr (ms)", "4 thr (ms)", "x@2", "x@4"],
        &[22, 11, 11, 11, 6, 6],
    );
    let mut floors: Vec<(&str, f64)> = Vec::new();
    for (section, label, q) in
        [("parallel_join", "hash join 1M x 100k", JOIN_Q), ("parallel_agg", "group by 1M/10k", AGG_Q)]
    {
        let mut times = Vec::new();
        for threads in [1usize, 2, 4] {
            db.set_exec_limits(limits(threads));
            times.push(time_avg(cfg.reps, || {
                db.execute(q).unwrap();
            }));
        }
        let s2 = times[0].as_secs_f64() / times[1].as_secs_f64();
        let s4 = times[0].as_secs_f64() / times[2].as_secs_f64();
        table.row(&[
            label.into(),
            ms(times[0]),
            ms(times[1]),
            ms(times[2]),
            format!("{s2:.2}x"),
            format!("{s4:.2}x"),
        ]);
        record_snapshot(
            section,
            &[
                ("fact_rows", FACT_ROWS as f64),
                ("dim_rows", DIM_ROWS as f64),
                ("groups", GROUPS as f64),
                ("host_cores", host_cores as f64),
                ("threads_1_ms", times[0].as_secs_f64() * 1e3),
                ("threads_2_ms", times[1].as_secs_f64() * 1e3),
                ("threads_4_ms", times[2].as_secs_f64() * 1e3),
                ("threads_2_speedup", s2),
                ("threads_4_speedup", s4),
            ],
        );
        floors.push((label, s4));
    }

    if host_cores >= 4 {
        for (label, s4) in &floors {
            assert!(*s4 >= 1.8, "{label}: 4-thread speedup {s4:.2}x below the 1.8x bar");
        }
        println!("\n4-thread floor (>=1.8x): PASS on {host_cores}-core host");
    } else {
        println!(
            "\n4-thread floor (>=1.8x): not enforced — host has {host_cores} core(s); \
             speedups recorded for reference only"
        );
    }
    write_note(&format!(
        "Measured via crates/bench/src/bin/pr9_parallel_join (reps={}) on a {host_cores}-core \
         container. The >=1.8x 4-thread floor on the partitioned join and parallel aggregation \
         is asserted only when available_parallelism() >= 4; on a 1-vCPU host thread counts \
         above 1 time-slice a single core and speedups hover near 1x. Canonical reproduction: \
         `cargo run -p sinew-bench --release --bin pr9_parallel_join` on a multi-core host. \
         Results are checked byte-identical to the serial operators before timing.",
        cfg.reps
    ));

    match prev_join {
        Some(v) => std::env::set_var("SINEW_PARALLEL_JOIN", v),
        None => std::env::remove_var("SINEW_PARALLEL_JOIN"),
    }
    match prev_agg {
        Some(v) => std::env::set_var("SINEW_PARALLEL_AGG", v),
        None => std::env::remove_var("SINEW_PARALLEL_AGG"),
    }
}
