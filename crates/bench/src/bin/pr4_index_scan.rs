//! PR4 snapshot harness — secondary-index access paths.
//!
//! Measures (a) point predicates at 1% and 0.1% selectivity and (b) range
//! predicates at the same selectivities, each through the cost-chosen
//! index path vs the same query under `SINEW_FORCE_SCAN=1`, and (c) bulk
//! vs row-at-a-time index builds. Writes the `index_point`, `index_range`
//! and `index_build` sections of the PR benchmark snapshot (default
//! `results/BENCH_PR4.json` via SINEW_BENCH_SNAPSHOT).
//!
//! Every timed variant is checked for byte-identical results against the
//! forced sequential scan first, so the snapshot can't record a
//! fast-but-wrong access path. The 0.1% point predicate must clear a 5x
//! speedup bar or the harness aborts.

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_rdbms::Database;

fn build(n: u64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE events (id int, pct1 int, pct01 int, name text)").unwrap();
    // pct1 cycles through 100 distinct values (a point predicate matches
    // 1% of rows), pct01 through 1000 (0.1%); id is unique, for ranges.
    // The ~300 B pad keeps rows at a realistic width — on skinny tuples
    // the whole heap fits in so few pages that a sequential scan is
    // genuinely the right plan even at 1%.
    let pad = "x".repeat(300);
    let mut batch = Vec::with_capacity(1000);
    for i in 0..n {
        batch.push(format!("({i}, {}, {}, 'payload-{}-{pad}')", i % 100, i % 1000, i % 13));
        if batch.len() == 1000 {
            db.execute(&format!("INSERT INTO events VALUES {}", batch.join(", "))).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.execute(&format!("INSERT INTO events VALUES {}", batch.join(", "))).unwrap();
    }
    db.execute("ANALYZE events").unwrap();
    db
}

fn forced<T>(f: impl FnOnce() -> T) -> T {
    std::env::set_var("SINEW_FORCE_SCAN", "1");
    let out = f();
    std::env::remove_var("SINEW_FORCE_SCAN");
    out
}

/// Time `sql` through the index path and under the forced scan, asserting
/// identical results first, and push `<key>_{index_ms,scan_ms,speedup}`.
fn compare(
    db: &Database,
    t: &TablePrinter,
    entries: &mut Vec<(String, f64)>,
    reps: u32,
    label: &str,
    key: &str,
    sql: &str,
) -> f64 {
    let fast = db.execute(sql).unwrap();
    let slow = forced(|| db.execute(sql).unwrap());
    assert_eq!(fast.rows, slow.rows, "index path diverged for {sql}");
    let explain = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    let plan: String = explain.rows.iter().map(|r| format!("{:?}", r[0])).collect();
    assert!(plan.contains("Index Scan"), "planner refused the index for {sql}:\n{plan}");

    let ti = time_avg(reps, || {
        db.execute(sql).unwrap();
    });
    let ts = forced(|| {
        time_avg(reps, || {
            db.execute(sql).unwrap();
        })
    });
    let speedup = ts.as_secs_f64() / ti.as_secs_f64();
    t.row(&[
        label.into(),
        fast.rows.len().to_string(),
        ms(ti),
        ms(ts),
        format!("{speedup:.2}x"),
    ]);
    entries.push((format!("{key}_index_ms"), ti.as_secs_f64() * 1e3));
    entries.push((format!("{key}_scan_ms"), ts.as_secs_f64() * 1e3));
    entries.push((format!("{key}_speedup"), speedup));
    speedup
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.large_docs.max(100_000);
    // a stray CI export would force every "index" measurement to a scan
    std::env::remove_var("SINEW_FORCE_SCAN");
    println!("\n=== PR4 — secondary-index access paths, {n} rows ===\n");
    let db = build(n);
    db.execute("CREATE INDEX idx_events_id ON events (id)").unwrap();
    db.execute("CREATE INDEX idx_events_pct1 ON events (pct1)").unwrap();
    db.execute("CREATE INDEX idx_events_pct01 ON events (pct01)").unwrap();

    // (a) point predicates, 1% and 0.1% of rows
    let t = TablePrinter::new(
        &["Predicate", "Rows", "Index (ms)", "Scan (ms)", "Speedup"],
        &[22, 8, 12, 12, 8],
    );
    let mut entries: Vec<(String, f64)> = vec![("rows".into(), n as f64)];
    compare(&db, &t, &mut entries, cfg.reps, "pct1 = 37 (1%)", "point_1pct",
        "SELECT id, pct1, name FROM events WHERE pct1 = 37");
    let bar = compare(&db, &t, &mut entries, cfg.reps, "pct01 = 370 (0.1%)", "point_01pct",
        "SELECT id, pct01, name FROM events WHERE pct01 = 370");
    let refs: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("index_point", &refs);
    assert!(bar >= 5.0, "0.1% point predicate speedup {bar:.2}x below the 5x bar");

    // (b) range predicates over the unique id column, same selectivities
    println!();
    let t = TablePrinter::new(
        &["Predicate", "Rows", "Index (ms)", "Scan (ms)", "Speedup"],
        &[22, 8, 12, 12, 8],
    );
    let mut entries: Vec<(String, f64)> = vec![("rows".into(), n as f64)];
    let (lo, one_pct, tenth_pct) = (n / 4, n / 100, n / 1000);
    compare(&db, &t, &mut entries, cfg.reps, "id range (1%)", "range_1pct",
        &format!("SELECT id, name FROM events WHERE id >= {lo} AND id < {}", lo + one_pct));
    compare(&db, &t, &mut entries, cfg.reps, "id range (0.1%)", "range_01pct",
        &format!("SELECT id, name FROM events WHERE id >= {lo} AND id < {}", lo + tenth_pct));
    let refs: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("index_range", &refs);

    // (c) bulk build (sorted run → bottom-up) vs row-at-a-time inserts
    println!();
    db.drop_index("events", "idx_events_pct01").unwrap();
    let tb = time_avg(cfg.reps, || {
        db.create_index("events", "idx_events_pct01", "pct01", true).unwrap();
        db.drop_index("events", "idx_events_pct01").unwrap();
    });
    let tr = time_avg(cfg.reps, || {
        db.create_index("events", "idx_events_pct01", "pct01", false).unwrap();
        db.drop_index("events", "idx_events_pct01").unwrap();
    });
    db.create_index("events", "idx_events_pct01", "pct01", true).unwrap();
    let ratio = tr.as_secs_f64() / tb.as_secs_f64();
    let t = TablePrinter::new(&["Build", "Time (ms)", "Speedup"], &[14, 12, 8]);
    t.row(&["bulk".into(), ms(tb), format!("{ratio:.2}x")]);
    t.row(&["row-at-a-time".into(), ms(tr), "1.00x".into()]);
    record_snapshot(
        "index_build",
        &[
            ("rows", n as f64),
            ("bulk_ms", tb.as_secs_f64() * 1e3),
            ("row_at_a_time_ms", tr.as_secs_f64() * 1e3),
            ("bulk_speedup", ratio),
        ],
    );

    let stats = db.exec_stats();
    println!(
        "\nindex scans: {}, rows bulk-built: {}, maintenance ops: {}",
        stats.index_scans, stats.index_build_rows, stats.index_maintenance_ops
    );
    println!("snapshot updated");
}
