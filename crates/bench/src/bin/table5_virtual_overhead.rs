//! **Appendix B, Table 5** — the execution overhead of virtual columns vs
//! physical columns, isolated from plan effects.
//!
//! Paper values (10M tweets):
//!
//! ```text
//! Query                                        Virtual   Physical
//! SELECT "user.id" FROM tweets                  14.40     13.57   (+6%)
//! SELECT * ... WHERE "user.lang" = 'en'         63.59     63.37   (<1%)
//! SELECT * ... ORDER BY "user.friends_count"    74.59     73.55   (~1.4%)
//! ```
//!
//! Shape claim: "our object serialization introduces very little execution
//! overhead ... less than a 5% reduction in performance", and the relative
//! overhead *shrinks* as fixed query costs grow (projection worst,
//! selection/sort better).

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_core::{AnalyzerPolicy, Sinew};
use sinew_nobench::twitter::{tweets, TwitterConfig};

const QUERIES: [(&str, &str); 3] = [
    ("projection", r#"SELECT "user.id" FROM tweets"#),
    ("selection", r#"SELECT id_str, retweet_count FROM tweets WHERE "user.lang" = 'en'"#),
    (
        "order by",
        r#"SELECT id_str FROM tweets ORDER BY "user.friends_count" DESC LIMIT 100"#,
    ),
];

fn build(materialize: bool, n: u64) -> Sinew {
    let sinew = Sinew::in_memory();
    sinew.create_collection("tweets").unwrap();
    sinew.load_docs("tweets", &tweets(n, &TwitterConfig::default())).unwrap();
    if materialize {
        let policy = AnalyzerPolicy {
            density_threshold: 0.5,
            cardinality_threshold: 1,
            sample_rows: 50_000,
        };
        sinew.run_analyzer("tweets", &policy).unwrap();
        sinew.materialize_until_clean("tweets").unwrap();
        sinew.db().analyze("tweets").unwrap();
    }
    sinew
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.small_docs;
    println!("\n=== Appendix B Table 5 — virtual vs physical columns, {n} tweets ===\n");

    let virt = build(false, n);
    let phys = build(true, n);

    let t = TablePrinter::new(
        &["Query", "Virtual (ms)", "Physical (ms)", "Overhead"],
        &[12, 14, 14, 10],
    );
    let mut snapshot: Vec<(String, f64)> = vec![("docs".into(), n as f64)];
    for (name, sql) in QUERIES {
        // correctness first
        let rv = virt.query(sql).unwrap().rows.len();
        let rp = phys.query(sql).unwrap().rows.len();
        assert_eq!(rv, rp, "{name} row mismatch");
        let tv = time_avg(cfg.reps, || {
            virt.query(sql).unwrap();
        });
        let tp = time_avg(cfg.reps, || {
            phys.query(sql).unwrap();
        });
        let overhead = (tv.as_secs_f64() / tp.as_secs_f64() - 1.0) * 100.0;
        t.row(&[name.to_string(), ms(tv), ms(tp), format!("{overhead:+.1}%")]);
        let key = name.replace(' ', "_");
        snapshot.push((format!("{key}_virtual_ms"), tv.as_secs_f64() * 1e3));
        snapshot.push((format!("{key}_physical_ms"), tp.as_secs_f64() * 1e3));
        snapshot.push((format!("{key}_overhead_pct"), overhead));
    }
    let entries: Vec<(&str, f64)> = snapshot.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("table5_virtual_overhead", &entries);
    println!(
        "\nShape checks: virtual-column overhead small; largest for the \
         bare projection, smaller once other query costs dominate. \
         (The paper reports <5%; our extraction consults the catalog \
         dictionary per row, so a few extra percent are expected.)"
    );
}
