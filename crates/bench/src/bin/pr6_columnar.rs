//! PR6 snapshot harness — columnar segments for promoted columns.
//!
//! Fig6-style NoBench sweep comparing the three access paths the planner
//! now chooses between on promoted-column predicates:
//!
//! * **heap block scan** (`SINEW_COLUMNAR=0 SINEW_FORCE_SCAN=1`) — the
//!   pre-PR6 baseline: partial tuple decode straight off heap pages;
//! * **columnar scan** — per-column segment stores, vectorized predicate
//!   kernels over packed data, zone-map pruning;
//! * **covering index-only scan** — a B-tree probe on the promoted column
//!   answers the query with *zero* heap fetches.
//!
//! The paper's Figure 6 runs at 16M records; `--large-docs 16000000`
//! reproduces that point and asserts the ≥3x columnar-over-heap floor.
//! The default committed snapshot runs a laptop-sized sweep of the same
//! shape. Writes the `columnar_<n>` sections of `results/BENCH_PR6.json`
//! (override via SINEW_BENCH_SNAPSHOT).
//!
//! Every timed query is first checked byte-identical across the paths, so
//! the snapshot can't record a fast-but-wrong kernel, and the index-only
//! point query asserts `heap_fetches` stayed flat at every scale.

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_core::{AnalyzerPolicy, Sinew};
use sinew_nobench::{generate, NoBenchConfig};

/// Load `n` NoBench records and drive the storage loop until the dense
/// fields are promoted, indexed, and columnar-backed.
fn build(n: u64) -> (Sinew, String) {
    let cfg = NoBenchConfig::default();
    let docs = generate(n, &cfg);
    let point_key = docs[docs.len() / 2].get("str1").unwrap().as_str().unwrap().to_string();
    let jsonl: String = docs.iter().map(|d| format!("{}\n", d.to_json())).collect();
    let sinew = Sinew::in_memory();
    sinew.create_collection("nb").unwrap();
    sinew.load_jsonl("nb", &jsonl).unwrap();
    let policy =
        AnalyzerPolicy { density_threshold: 0.5, cardinality_threshold: 100, sample_rows: 10_000 };
    sinew.run_analyzer("nb", &policy).unwrap();
    sinew.materialize_until_clean("nb").unwrap();
    sinew.query("ANALYZE nb").unwrap();
    (sinew, point_key)
}

fn main() {
    let cfg = HarnessConfig::from_args();
    if std::env::var_os("SINEW_BENCH_SNAPSHOT").is_none() {
        std::env::set_var("SINEW_BENCH_SNAPSHOT", "results/BENCH_PR6.json");
    }
    let prev_columnar = std::env::var("SINEW_COLUMNAR").ok();
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();

    // Fig6-style scale sweep: the paper's point (16M under --large-docs
    // 16000000) plus two smaller scales of the same workload.
    let n = if cfg.run_large { cfg.large_docs } else { cfg.small_docs };
    let scales = [n / 16, n / 4, n];

    let sweep_q = "SELECT num, thousandth FROM nb WHERE thousandth < 100";
    for scale in scales {
        println!("\n=== PR6 — columnar access paths, {scale} NoBench records ===\n");
        let (sinew, point_key) = build(scale);
        let point_q = format!("SELECT str1 FROM nb WHERE str1 = '{point_key}'");
        let db = sinew.db();

        // Heap block scan baseline: both new paths disabled.
        std::env::set_var("SINEW_COLUMNAR", "0");
        std::env::set_var("SINEW_FORCE_SCAN", "1");
        let heap_rows = sinew.query(sweep_q).unwrap().rows;
        let t_heap = time_avg(cfg.reps, || {
            sinew.query(sweep_q).unwrap();
        });

        // Columnar scan: same query, same bytes, segment stores + kernels.
        std::env::set_var("SINEW_COLUMNAR", "1");
        std::env::remove_var("SINEW_FORCE_SCAN");
        let before = db.exec_stats();
        assert_eq!(heap_rows, sinew.query(sweep_q).unwrap().rows, "paths diverged on {sweep_q}");
        assert!(
            db.exec_stats().columnar_scans > before.columnar_scans,
            "planner never picked the columnar scan for {sweep_q}"
        );
        let t_col = time_avg(cfg.reps, || {
            sinew.query(sweep_q).unwrap();
        });

        // Covering index-only point query: zero heap fetches, asserted.
        let before = db.exec_stats();
        let point_rows = sinew.query(&point_q).unwrap().rows;
        assert!(!point_rows.is_empty(), "point key {point_key} vanished");
        let after = db.exec_stats();
        assert!(
            after.index_only_scans > before.index_only_scans,
            "planner never picked the index-only scan for {point_q}"
        );
        assert_eq!(
            after.heap_fetches, before.heap_fetches,
            "index-only point query fetched heap rows"
        );
        let t_idx = time_avg(cfg.reps, || {
            sinew.query(&point_q).unwrap();
        });

        let speedup = t_heap.as_secs_f64() / t_col.as_secs_f64();
        let stats = db.exec_stats();
        let t = TablePrinter::new(&["Access path", "Time (ms)", "Speedup"], &[24, 12, 10]);
        t.row(&["heap block scan".into(), ms(t_heap), "1.0x".into()]);
        t.row(&["columnar scan".into(), ms(t_col), format!("{speedup:.1}x")]);
        t.row(&["index-only point".into(), ms(t_idx), String::new()]);
        println!(
            "\ncolumnar scans: {}, segments pruned: {}, index-only scans: {}, \
             heap fetches during point query: 0",
            stats.columnar_scans, stats.segments_pruned, stats.index_only_scans
        );
        record_snapshot(
            &format!("columnar_{scale}"),
            &[
                ("rows", scale as f64),
                ("heap_ms", t_heap.as_secs_f64() * 1e3),
                ("columnar_ms", t_col.as_secs_f64() * 1e3),
                ("columnar_speedup", speedup),
                ("index_only_ms", t_idx.as_secs_f64() * 1e3),
                ("index_only_heap_fetches", (after.heap_fetches - before.heap_fetches) as f64),
            ],
        );

        // The ≥3x floor is stated at the paper's 16M-record scale; smaller
        // sweeps record the curve without asserting it.
        if cfg.run_large && scale == n {
            assert!(
                speedup >= 3.0,
                "columnar scan speedup {speedup:.1}x below the 3x bar at {scale} rows"
            );
        }
    }

    match prev_columnar {
        Some(v) => std::env::set_var("SINEW_COLUMNAR", v),
        None => std::env::remove_var("SINEW_COLUMNAR"),
    }
    match prev_force {
        Some(v) => std::env::set_var("SINEW_FORCE_SCAN", v),
        None => std::env::remove_var("SINEW_FORCE_SCAN"),
    }
    println!("\nsnapshot updated");
}
