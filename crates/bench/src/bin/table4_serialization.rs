//! **Appendix A, Table 4** — serialization-format comparison on NoBench
//! objects: Sinew's custom format vs Protocol-Buffers-like vs Avro-like.
//!
//! Paper values (1.6M objects):
//!
//! ```text
//! Task                Sinew    PBuf     Avro     Original
//! Serialization (s)   39.83    83.68    394.24
//! Deserialization     32.56    45.01   1101.26
//! Extraction (1 key)   0.90    17.11    108.89
//! Extraction (10 key)  8.40    21.03    112.91
//! Size (GB)            0.57     0.47     1.93    0.90
//! ```
//!
//! Shape claims: Sinew fastest everywhere except size, where pbuf's
//! bit-packing wins slightly; Avro catastrophically slow and large
//! (explicit NULL unions); 1-key extraction is where Sinew's O(log n)
//! random access shines (≈20× vs pbuf), and the gap *narrows* at 10 keys.

use sinew_bench::{human_bytes, time, HarnessConfig, TablePrinter};
use sinew_json::Value;
use sinew_nobench::{generate, NoBenchConfig};
use sinew_serial::{avro, pbuf, sinew as sformat, Doc, SType, SValue, WriterSchema};
use std::collections::HashMap;

/// Flatten a NoBench record into the serial crate's document model,
/// interning attribute names into a shared dictionary.
fn to_doc(v: &Value, dict: &mut HashMap<(String, SType), u32>) -> Doc {
    let mut attrs = Vec::new();
    for (path, leaf) in v.flatten(false) {
        let sval = match leaf {
            Value::Bool(b) => SValue::Bool(*b),
            Value::Int(i) => SValue::Int(*i),
            Value::Float(f) => SValue::Float(*f),
            Value::Str(s) => SValue::Text(s.clone()),
            Value::Array(_) => SValue::Bytes(leaf.to_json().into_bytes()),
            _ => continue,
        };
        let next = dict.len() as u32;
        let id = *dict.entry((path, sval.stype())).or_insert(next);
        attrs.push((id, sval));
    }
    Doc::new(attrs)
}

fn main() {
    let cfg = HarnessConfig::from_args();
    // paper used 1.6M objects = 1/10 of the small dataset scale
    let n = (cfg.small_docs / 10).max(2_000);
    println!("\n=== Appendix A Table 4 — serialization formats, {n} NoBench objects ===\n");
    let docs_json = generate(n, &NoBenchConfig::default());
    let original_size: u64 = docs_json.iter().map(|d| d.to_json().len() as u64).sum();

    let mut dict: HashMap<(String, SType), u32> = HashMap::new();
    let docs: Vec<Doc> = docs_json.iter().map(|d| to_doc(d, &mut dict)).collect();
    let schema = WriterSchema::new(dict.iter().map(|((_, ty), id)| (*id, *ty)).collect());

    // the keys extracted: str1 (1-key task) and the first ten of each doc
    let str1_id = dict[&("str1".to_string(), SType::Text)];
    let ten_ids: Vec<u32> = {
        let mut ids: Vec<u32> = docs[0].attrs.iter().map(|(id, _)| *id).collect();
        ids.truncate(10);
        ids
    };

    // ---- serialize ----
    let (sinew_bytes, t_sinew_ser) =
        time(|| docs.iter().map(sformat::encode).collect::<Vec<_>>());
    let (pbuf_bytes, t_pbuf_ser) = time(|| docs.iter().map(pbuf::encode).collect::<Vec<_>>());
    let (avro_bytes, t_avro_ser) =
        time(|| docs.iter().map(|d| avro::encode(d, &schema)).collect::<Vec<_>>());

    // ---- deserialize ----
    let (_, t_sinew_de) = time(|| {
        for b in &sinew_bytes {
            sformat::decode(b, &schema).unwrap();
        }
    });
    let (_, t_pbuf_de) = time(|| {
        for b in &pbuf_bytes {
            pbuf::decode(b, &schema).unwrap();
        }
    });
    let (_, t_avro_de) = time(|| {
        for b in &avro_bytes {
            avro::decode(b, &schema).unwrap();
        }
    });

    // ---- extract 1 key ----
    let (_, t_sinew_x1) = time(|| {
        for b in &sinew_bytes {
            sformat::extract(b, str1_id, SType::Text).unwrap();
        }
    });
    let (_, t_pbuf_x1) = time(|| {
        for b in &pbuf_bytes {
            pbuf::extract(b, str1_id, SType::Text).unwrap();
        }
    });
    let (_, t_avro_x1) = time(|| {
        for b in &avro_bytes {
            avro::extract(b, &schema, str1_id).unwrap();
        }
    });

    // ---- extract 10 keys ----
    let (_, t_sinew_x10) = time(|| {
        for b in &sinew_bytes {
            for id in &ten_ids {
                let ty = schema.type_of(*id).unwrap();
                sformat::extract(b, *id, ty).unwrap();
            }
        }
    });
    let (_, t_pbuf_x10) = time(|| {
        for b in &pbuf_bytes {
            for id in &ten_ids {
                let ty = schema.type_of(*id).unwrap();
                pbuf::extract(b, *id, ty).unwrap();
            }
        }
    });
    let (_, t_avro_x10) = time(|| {
        for b in &avro_bytes {
            for id in &ten_ids {
                avro::extract(b, &schema, *id).unwrap();
            }
        }
    });

    let size = |v: &Vec<Vec<u8>>| v.iter().map(|b| b.len() as u64).sum::<u64>();

    let t = TablePrinter::new(
        &["Task", "Sinew", "PBuf-like", "Avro-like", "Original"],
        &[22, 12, 12, 12, 12],
    );
    let msf = |d: std::time::Duration| format!("{:.2} ms", d.as_secs_f64() * 1e3);
    t.row(&["Serialization".into(), msf(t_sinew_ser), msf(t_pbuf_ser), msf(t_avro_ser), "-".into()]);
    t.row(&["Deserialization".into(), msf(t_sinew_de), msf(t_pbuf_de), msf(t_avro_de), "-".into()]);
    t.row(&["Extraction (1 key)".into(), msf(t_sinew_x1), msf(t_pbuf_x1), msf(t_avro_x1), "-".into()]);
    t.row(&["Extraction (10 keys)".into(), msf(t_sinew_x10), msf(t_pbuf_x10), msf(t_avro_x10), "-".into()]);
    t.row(&[
        "Size".into(),
        human_bytes(size(&sinew_bytes)),
        human_bytes(size(&pbuf_bytes)),
        human_bytes(size(&avro_bytes)),
        human_bytes(original_size),
    ]);
    println!(
        "\nShape checks: Sinew fastest on all four tasks; pbuf slightly \
         smaller (varints); avro slowest + largest (explicit nulls); the \
         Sinew-vs-pbuf extraction gap narrows from 1 key to 10 keys."
    );
}
