//! **Figure 7** — NoBench Q11, the join.
//!
//! Paper shape: "Sinew is again the fastest of the SQL options. However
//! ... MongoDB lags far behind each of the other three systems and is an
//! order of magnitude slower than Sinew" — Mongo has no native join and
//! runs user code with explicit intermediate collections; at the larger
//! scale both MongoDB and EAV run out of intermediate space (DNF).

use sinew_bench::{ms, time_avg, HarnessConfig, TablePrinter};
use sinew_nobench::queries::{EavSut, MongoSut, PgJsonSut, SinewSut, SystemUnderTest};
use sinew_nobench::{generate, NoBenchConfig, QueryParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scales: Vec<(&str, u64)> = if cfg.run_large {
        vec![("small", cfg.small_docs), ("large", cfg.large_docs)]
    } else {
        vec![("small", cfg.small_docs)]
    };

    for (scale, n) in scales {
        println!("\n=== Figure 7 — NoBench Q11 (join), {scale} scale, {n} records ===\n");
        let gen_cfg = NoBenchConfig::default();
        let docs = generate(n, &gen_cfg);
        let params = QueryParams::derive(&docs, &gen_cfg);

        let mut mongo = MongoSut::new();
        // at the large scale Mongo's scratch space runs out (paper: "the
        // query required so much intermediate storage that it could not
        // complete"); the cap models the paper's exhausted disk
        if scale == "large" {
            mongo.join_scratch_limit = 4 * 1024 * 1024;
        }
        let eav = EavSut::in_memory();
        if scale == "large" {
            eav.store.db().set_exec_limits(sinew_rdbms::ExecLimits {
                max_intermediate_rows: 2_000_000,
                ..Default::default()
            });
        }
        let mut suts: Vec<Box<dyn SystemUnderTest>> = vec![
            Box::new(mongo),
            Box::new(SinewSut::in_memory()),
            Box::new(eav),
            Box::new(PgJsonSut::in_memory()),
        ];
        for sut in &mut suts {
            sut.load(&docs).unwrap_or_else(|e| panic!("{} load: {e}", sut.name()));
        }

        let t = TablePrinter::new(&["System", "Q11 (ms)", "rows"], &[10, 12, 8]);
        for sut in &suts {
            match sut.run_query(11, &params) {
                Ok(rows) => {
                    let avg = time_avg(cfg.reps, || {
                        sut.run_query(11, &params).unwrap();
                    });
                    t.row(&[sut.name().to_string(), ms(avg), rows.to_string()]);
                }
                Err(_) => {
                    t.row(&[sut.name().to_string(), "DNF".to_string(), "-".to_string()]);
                }
            }
        }
        println!("\nShape checks: Sinew fastest; MongoDB slowest / DNF at scale.");
    }
}
