//! **Ablation: materialization policy sweep** — §3.1.3's thresholds.
//!
//! Sweeps the analyzer's density threshold from "materialize nothing" (the
//! all-virtual extreme of §3.1.1) to "materialize everything dense" and
//! reports how many columns materialize and how the NoBench query mix
//! responds. The paper's chosen policy (0.6 density / 200 cardinality)
//! should sit near the sweet spot: the dense high-cardinality keys carry
//! almost all of the benefit.

use sinew_bench::{ms, time_avg, HarnessConfig, TablePrinter};
use sinew_core::{AnalyzerPolicy, Sinew};
use sinew_nobench::{generate, NoBenchConfig, QueryParams};
use sinew_nobench::queries::{SinewSut, SystemUnderTest};

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.small_docs;
    println!("\n=== Ablation — analyzer policy sweep, {n} records ===\n");
    let gen_cfg = NoBenchConfig::default();
    let docs = generate(n, &gen_cfg);
    let params = QueryParams::derive(&docs, &gen_cfg);

    // (label, density, cardinality). The greedy end stops short of the
    // 1000 sparse keys (density 1%): materializing those would add a
    // thousand physical columns — the §3.1.1 "all-physical" pathology the
    // hybrid schema exists to avoid.
    let policies: [(&str, f64, u64); 4] = [
        ("all-virtual", f64::INFINITY, u64::MAX),
        ("paper (0.6 / 200)", 0.6, 200),
        ("lax (0.3 / 50)", 0.3, 50),
        ("greedy (0.05 / 0)", 0.05, 0),
    ];

    let t = TablePrinter::new(
        &["Policy", "Materialized", "Q1", "Q5", "Q6", "Q10", "Q11"],
        &[18, 12, 10, 10, 10, 10, 10],
    );
    for (label, density, card) in policies {
        let sinew = Sinew::in_memory();
        sinew.create_collection("nobench").unwrap();
        sinew.load_docs("nobench", &docs).unwrap();
        if density.is_finite() {
            let policy = AnalyzerPolicy {
                density_threshold: density,
                cardinality_threshold: card,
                sample_rows: 30_000,
            };
            sinew.run_analyzer("nobench", &policy).unwrap();
            sinew.materialize_until_clean("nobench").unwrap();
            sinew.db().analyze("nobench").unwrap();
        }
        let materialized =
            sinew.logical_schema("nobench").iter().filter(|c| c.materialized).count();
        let sut = SinewSut { sinew, auto_materialize: false };
        let mut cells = vec![label.to_string(), materialized.to_string()];
        for q in [1u8, 5, 6, 10, 11] {
            sut.run_query(q, &params).unwrap();
            let avg = time_avg(cfg.reps, || {
                sut.run_query(q, &params).unwrap();
            });
            cells.push(ms(avg));
        }
        t.row(&cells);
    }
    println!(
        "\nShape checks: the paper's policy captures most of the gain of \
         greedy materialization; all-virtual pays extraction on every \
         access and bad plans on Q10/Q11."
    );
}
