//! PR3 snapshot harness — morsel-parallel scans and fused extraction.
//!
//! Measures (a) the same scan→filter→project query at 1/2/4/8 executor
//! threads and (b) per-key vs fused (`extract_keys`) extraction at
//! k=1/3/5 keys per tuple, over a NoBench corpus. Writes the
//! `scan_threads` and `extract_fusion` sections of the PR benchmark
//! snapshot (default `results/BENCH_PR3.json` via SINEW_BENCH_SNAPSHOT).
//!
//! Every timed variant is checked for result equality against the serial
//! / per-key baseline first, so the snapshot can't record a fast-but-wrong
//! configuration.

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_core::Sinew;
use sinew_nobench::{generate, NoBenchConfig};
use sinew_rdbms::ExecLimits;

fn build(n: u64) -> Sinew {
    let sinew = Sinew::in_memory();
    sinew.create_collection("nobench").unwrap();
    sinew.load_docs("nobench", &generate(n, &NoBenchConfig::default())).unwrap();
    sinew
}

fn with_threads(sinew: &Sinew, threads: usize) {
    sinew
        .db()
        .set_exec_limits(ExecLimits { exec_threads: threads, ..ExecLimits::default() });
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.large_docs.max(100_000);
    println!("\n=== PR3 — morsel-parallel scan + fused extraction, {n} docs ===\n");
    let sinew = build(n);

    // (a) scan thread scaling: one query, 1/2/4/8 workers
    let sql = "SELECT str1, num FROM nobench WHERE num >= 0";
    with_threads(&sinew, 1);
    let baseline = sinew.query(sql).unwrap();
    let t1 = time_avg(cfg.reps, || {
        sinew.query(sql).unwrap();
    });
    let t = TablePrinter::new(&["Threads", "Scan (ms)", "Speedup"], &[8, 12, 8]);
    t.row(&["1".into(), ms(t1), "1.00x".into()]);
    let mut entries: Vec<(String, f64)> =
        vec![("docs".into(), n as f64), ("threads_1_ms".into(), t1.as_secs_f64() * 1e3)];
    for threads in [2usize, 4, 8] {
        with_threads(&sinew, threads);
        let r = sinew.query(sql).unwrap();
        assert_eq!(baseline.rows, r.rows, "parallel result diverged at {threads} threads");
        let d = time_avg(cfg.reps, || {
            sinew.query(sql).unwrap();
        });
        let speedup = t1.as_secs_f64() / d.as_secs_f64();
        t.row(&[threads.to_string(), ms(d), format!("{speedup:.2}x")]);
        entries.push((format!("threads_{threads}_ms"), d.as_secs_f64() * 1e3));
        entries.push((format!("threads_{threads}_speedup"), speedup));
    }
    let stats = sinew.db().exec_stats();
    entries.push(("parallel_scans".into(), stats.parallel_scans as f64));
    entries.push(("morsels_dispatched".into(), stats.morsels_dispatched as f64));
    let refs: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("scan_threads", &refs);

    // (b) per-key vs fused extraction at k=1/3/5, serial executor
    with_threads(&sinew, 1);
    let keys = [
        ("str1", "t"),
        ("num", "i"),
        ("bool", "b"),
        ("str2", "t"),
        ("thousandth", "i"),
    ];
    println!();
    let t = TablePrinter::new(&["k", "Per-key (ms)", "Fused (ms)", "Ratio"], &[4, 14, 12, 8]);
    let mut entries: Vec<(String, f64)> = vec![("docs".into(), n as f64)];
    for k in [1usize, 3, 5] {
        let per_key: Vec<String> = keys[..k]
            .iter()
            .map(|(key, tag)| format!("extract_key_{tag}(nobench.data, '{key}')"))
            .collect();
        let per_key_sql = format!("SELECT {} FROM nobench", per_key.join(", "));
        let spec: Vec<String> =
            keys[..k].iter().map(|(key, tag)| format!("'{key}', '{tag}'")).collect();
        let fused: Vec<String> = (0..k)
            .map(|i| {
                format!("array_get(extract_keys(nobench.data, {}), {i})", spec.join(", "))
            })
            .collect();
        let fused_sql = format!("SELECT {} FROM nobench", fused.join(", "));

        let rp = sinew.db().execute(&per_key_sql).unwrap();
        let rf = sinew.db().execute(&fused_sql).unwrap();
        assert_eq!(rp.rows, rf.rows, "fused extraction diverged at k={k}");

        let tp = time_avg(cfg.reps, || {
            sinew.db().execute(&per_key_sql).unwrap();
        });
        let tf = time_avg(cfg.reps, || {
            sinew.db().execute(&fused_sql).unwrap();
        });
        let ratio = tp.as_secs_f64() / tf.as_secs_f64();
        t.row(&[k.to_string(), ms(tp), ms(tf), format!("{ratio:.2}x")]);
        entries.push((format!("k{k}_per_key_ms"), tp.as_secs_f64() * 1e3));
        entries.push((format!("k{k}_fused_ms"), tf.as_secs_f64() * 1e3));
        entries.push((format!("k{k}_fused_speedup"), ratio));
    }
    let refs: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("extract_fusion", &refs);
    println!("\nsnapshot updated");
}
