//! PR5 snapshot harness — streaming block execution.
//!
//! Measures the pull-based block pipeline against the materializing
//! operator-at-a-time engine it replaced (kept as `ExecMode::Materialize`):
//! (a) `LIMIT 10` latency over a 1M-row table, where the streaming scan
//! stops after one block while the old engine materializes every row —
//! must clear a 20x bar; (b) peak resident rows for a full-table
//! aggregate, which drops from O(table) to O(block); (c) a
//! `SINEW_BLOCK_ROWS` sweep over the same aggregate showing per-block
//! overhead amortizing. Writes the `streaming_limit`,
//! `streaming_resident`, and `streaming_block_sweep` sections of
//! `results/BENCH_PR5.json` (override via SINEW_BENCH_SNAPSHOT).
//!
//! Every timed query is first checked for byte-identical results across
//! the two engines, so the snapshot can't record a fast-but-wrong
//! pipeline.

use sinew_bench::{ms, record_snapshot, time_avg, HarnessConfig, TablePrinter};
use sinew_rdbms::{Database, ExecLimits, ExecMode};

fn build(n: u64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE events (id int, grp int, name text)").unwrap();
    let mut batch = Vec::with_capacity(1000);
    for i in 0..n {
        batch.push(format!("({i}, {}, 'payload-{}')", i % 97, i % 13));
        if batch.len() == 1000 {
            db.execute(&format!("INSERT INTO events VALUES {}", batch.join(", "))).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.execute(&format!("INSERT INTO events VALUES {}", batch.join(", "))).unwrap();
    }
    db.execute("ANALYZE events").unwrap();
    db
}

fn limits(mode: ExecMode, block_rows: usize) -> ExecLimits {
    ExecLimits { mode, block_rows, ..ExecLimits::default() }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    // The 20x acceptance bar is stated at 1M rows; --no-large runs a quick
    // smoke pass at --docs scale without asserting it.
    let n = if cfg.run_large { cfg.large_docs.max(1_000_000) } else { cfg.small_docs };
    if std::env::var_os("SINEW_BENCH_SNAPSHOT").is_none() {
        std::env::set_var("SINEW_BENCH_SNAPSHOT", "results/BENCH_PR5.json");
    }
    println!("\n=== PR5 — streaming block execution, {n} rows ===\n");
    let db = build(n);

    let limit_q = "SELECT id, grp, name FROM events LIMIT 10";
    let agg_q = "SELECT COUNT(*), SUM(id), MIN(grp), MAX(grp) FROM events";

    // (a) LIMIT 10: early stop vs full materialization. The whole
    // streaming phase runs first because `peak_resident_rows` is a
    // high-water mark for the database's lifetime — once the materializing
    // engine runs anything, the counter reflects its O(table)
    // intermediates forever after. The correctness gate therefore compares
    // saved streaming rows against the oracle afterwards, not before.
    db.set_exec_limits(limits(ExecMode::Streaming, 1024));
    let stream_limit_rows = db.execute(limit_q).unwrap().rows;
    let t_stream = time_avg(cfg.reps, || {
        db.execute(limit_q).unwrap();
    });
    // (b) part one: full-table aggregate through the pipeline, then read
    // the streaming high-water mark before the oracle pollutes it.
    let stream_agg_rows = db.execute(agg_q).unwrap().rows;
    let stream_stats = db.exec_stats();
    let streaming_peak = stream_stats.peak_resident_rows;

    // Correctness gate: both engines, same bytes. (Both scan in rowid
    // order, so even the un-ORDERed LIMIT is deterministic.)
    db.set_exec_limits(limits(ExecMode::Materialize, 1024));
    assert_eq!(stream_limit_rows, db.execute(limit_q).unwrap().rows, "engines diverged on {limit_q}");
    assert_eq!(stream_agg_rows, db.execute(agg_q).unwrap().rows, "engines diverged on {agg_q}");
    let t_mat = time_avg(cfg.reps, || {
        db.execute(limit_q).unwrap();
    });
    let materialize_peak = db.exec_stats().peak_resident_rows;

    let speedup = t_mat.as_secs_f64() / t_stream.as_secs_f64();
    let t = TablePrinter::new(
        &["LIMIT 10 over full table", "Time (ms)", "Speedup"],
        &[26, 12, 10],
    );
    t.row(&["streaming".into(), ms(t_stream), format!("{speedup:.1}x")]);
    t.row(&["materialize".into(), ms(t_mat), "1.0x".into()]);
    record_snapshot(
        "streaming_limit",
        &[
            ("rows", n as f64),
            ("streaming_ms", t_stream.as_secs_f64() * 1e3),
            ("materialize_ms", t_mat.as_secs_f64() * 1e3),
            ("speedup", speedup),
        ],
    );

    let resident_ratio = materialize_peak as f64 / streaming_peak.max(1) as f64;
    println!(
        "\npeak resident rows: streaming {streaming_peak}, materialize {materialize_peak} \
         ({resident_ratio:.0}x)"
    );
    record_snapshot(
        "streaming_resident",
        &[
            ("rows", n as f64),
            ("streaming_peak_rows", streaming_peak as f64),
            ("materialize_peak_rows", materialize_peak as f64),
            ("ratio", resident_ratio),
        ],
    );

    // (c) block-size sweep over the full-scan aggregate: tiny blocks pay
    // per-block dispatch on every 64 rows, large ones amortize it away.
    println!();
    let t = TablePrinter::new(&["Block rows", "Full-scan agg (ms)"], &[12, 20]);
    let mut entries: Vec<(String, f64)> = vec![("rows".into(), n as f64)];
    for block_rows in [64usize, 256, 1024, 4096, 16384] {
        db.set_exec_limits(limits(ExecMode::Streaming, block_rows));
        let dt = time_avg(cfg.reps, || {
            db.execute(agg_q).unwrap();
        });
        t.row(&[block_rows.to_string(), ms(dt)]);
        entries.push((format!("block_{block_rows}_ms"), dt.as_secs_f64() * 1e3));
    }
    let refs: Vec<(&str, f64)> = entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    record_snapshot("streaming_block_sweep", &refs);

    let s = db.exec_stats();
    println!(
        "\nblocks emitted: {}, early stops: {}, mean rows/block: {:.0}",
        s.blocks_emitted,
        s.early_stops,
        s.rows_per_block_sum as f64 / s.rows_per_block_count.max(1) as f64
    );
    if cfg.run_large {
        assert!(
            speedup >= 20.0,
            "LIMIT-10 streaming speedup {speedup:.1}x below the 20x bar at {n} rows"
        );
        assert!(
            streaming_peak < n / 10,
            "streaming peak residency {streaming_peak} is not O(block) at {n} rows"
        );
    }
    println!("snapshot updated");
}
