//! **Ablation: array storage alternatives** — §4.2's three mappings for
//! array-valued attributes:
//!
//! 1. the default **RDBMS array datatype** column;
//! 2. **position-per-column** ("if the number of elements in the array is
//!    fixed (and small), it can instead store each position in the array
//!    as a separate column (as suggested by Deutsch et al.) ... can offer
//!    significant performance improvements for array containment ... since
//!    the predicates reduce to trivial filters");
//! 3. a **separate element table** of `(parent_id, index, element)` rows
//!    ("ensures that Sinew maintains aggregate statistics on the
//!    collection of array elements").
//!
//! Measures the Q8-shaped containment predicate under each mapping.

use sinew_bench::{ms, time_avg, HarnessConfig, TablePrinter};
use sinew_nobench::{generate, NoBenchConfig};
use sinew_rdbms::{ColType, Database, Datum};

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.small_docs;
    println!("\n=== Ablation — §4.2 array storage modes, {n} records ===\n");
    let gen_cfg = NoBenchConfig::default();
    let docs = generate(n, &gen_cfg);
    let arr_len = gen_cfg.arr_len;
    let needle = docs[0].get("nested_arr").unwrap().as_array().unwrap()[0]
        .as_str()
        .unwrap()
        .to_string();

    let db = Database::in_memory();

    // mode 1: RDBMS array datatype
    db.create_table("m1", vec![("id".into(), ColType::Int), ("arr".into(), ColType::Array)])
        .unwrap();
    // mode 2: one column per position
    let mut m2_cols = vec![("id".to_string(), ColType::Int)];
    for i in 0..arr_len {
        m2_cols.push((format!("e{i}"), ColType::Text));
    }
    db.create_table("m2", m2_cols).unwrap();
    // mode 3: separate element table
    db.create_table("m3", vec![("id".into(), ColType::Int)]).unwrap();
    db.create_table(
        "m3_elems",
        vec![
            ("parent".into(), ColType::Int),
            ("idx".into(), ColType::Int),
            ("elem".into(), ColType::Text),
        ],
    )
    .unwrap();

    let mut r1 = Vec::new();
    let mut r2 = Vec::new();
    let mut r3 = Vec::new();
    let mut r3e = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        let arr = d.get("nested_arr").unwrap().as_array().unwrap();
        let elems: Vec<Datum> = arr
            .iter()
            .map(|e| Datum::Text(e.as_str().unwrap().to_string()))
            .collect();
        r1.push(vec![Datum::Int(i as i64), Datum::Array(elems.clone())]);
        let mut row2 = vec![Datum::Int(i as i64)];
        row2.extend(elems.iter().cloned());
        r2.push(row2);
        r3.push(vec![Datum::Int(i as i64)]);
        for (j, e) in elems.iter().enumerate() {
            r3e.push(vec![Datum::Int(i as i64), Datum::Int(j as i64), e.clone()]);
        }
    }
    db.insert_rows("m1", &r1).unwrap();
    db.insert_rows("m2", &r2).unwrap();
    db.insert_rows("m3", &r3).unwrap();
    db.insert_rows("m3_elems", &r3e).unwrap();
    for t in ["m1", "m2", "m3", "m3_elems"] {
        db.analyze(t).unwrap();
    }

    let q1 = format!("SELECT COUNT(*) FROM m1 WHERE array_contains(arr, '{needle}')");
    let eqs: Vec<String> = (0..arr_len).map(|i| format!("e{i} = '{needle}'")).collect();
    let q2 = format!("SELECT COUNT(*) FROM m2 WHERE {}", eqs.join(" OR "));
    let q3 = format!(
        "SELECT COUNT(DISTINCT parent) FROM m3_elems WHERE elem = '{needle}'"
    );

    // all three must agree
    let c1 = db.execute(&q1).unwrap().scalar().unwrap().clone();
    let c2 = db.execute(&q2).unwrap().scalar().unwrap().clone();
    let c3 = db.execute(&q3).unwrap().scalar().unwrap().clone();
    assert_eq!(c1, c2, "mode 2 disagrees");
    assert_eq!(c1, c3, "mode 3 disagrees");

    let t = TablePrinter::new(
        &["Mode", "Containment (ms)", "Size", "matches"],
        &[24, 18, 12, 8],
    );
    let modes: [(&str, &str, Vec<&str>); 3] = [
        ("array datatype", &q1, vec!["m1"]),
        ("position-per-column", &q2, vec!["m2"]),
        ("separate element table", &q3, vec!["m3", "m3_elems"]),
    ];
    for (label, sql, tables) in modes {
        let avg = time_avg(cfg.reps, || {
            db.execute(sql).unwrap();
        });
        let size: u64 = tables.iter().map(|t| db.table_live_bytes(t).unwrap()).sum();
        t.row(&[
            label.to_string(),
            ms(avg),
            sinew_bench::human_bytes(size),
            c1.display_text(),
        ]);
    }
    println!(
        "\nShape checks: position-per-column turns containment into plain \
         filters (fastest, as §4.2 predicts); the element table costs a \
         join/aggregation but keeps element-level statistics."
    );
}
