//! **Figure 6a/6b** — NoBench queries 1–10 across the four systems.
//!
//! Paper shape (16M records, warm caches; larger dataset I/O-bound):
//!
//! * projections (Q1–Q4): Sinew ~10× faster than PG JSON and EAV;
//!   MongoDB ~10× slower than Sinew on dense keys (Q1/Q2), closer on
//!   sparse keys (Q3/Q4);
//! * selections (Q5–Q9): Sinew and MongoDB an order of magnitude ahead of
//!   PG JSON / EAV; Sinew beats MongoDB by 40–75% except Q7 where Mongo's
//!   value-precompute wins at the small scale;
//! * Q7 **does not finish** on PG JSON (multi-typed cast error);
//! * Q10 (GROUP BY): PG JSON falls behind even EAV (no statistics on JSON
//!   internals → bad plan).

use sinew_bench::{ms, time_avg, HarnessConfig, TablePrinter};
use sinew_nobench::queries::{EavSut, MongoSut, PgJsonSut, SinewSut, SystemUnderTest};
use sinew_nobench::{generate, NoBenchConfig, QueryParams};

fn main() {
    let cfg = HarnessConfig::from_args();
    let scales: Vec<(&str, u64)> = if cfg.run_large {
        vec![("6a/small", cfg.small_docs), ("6b/large", cfg.large_docs)]
    } else {
        vec![("6a/small", cfg.small_docs)]
    };

    for (scale, n) in scales {
        println!("\n=== Figure {scale} — NoBench Q1-Q10, {n} records ===\n");
        let gen_cfg = NoBenchConfig::default();
        let docs = generate(n, &gen_cfg);
        let params = QueryParams::derive(&docs, &gen_cfg);

        let mut suts: Vec<Box<dyn SystemUnderTest>> = vec![
            Box::new(MongoSut::new()),
            Box::new(SinewSut::in_memory()),
            Box::new(EavSut::in_memory()),
            Box::new(PgJsonSut::in_memory()),
        ];
        for sut in &mut suts {
            sut.load(&docs).unwrap_or_else(|e| panic!("{} load: {e}", sut.name()));
        }

        let t = TablePrinter::new(
            &["Query", "MongoDB", "Sinew", "EAV", "PG JSON", "rows"],
            &[6, 12, 12, 12, 12, 8],
        );
        for q in 1..=10u8 {
            let mut cells = vec![format!("Q{q}")];
            let mut rows = None;
            for sut in &suts {
                // warm-up + correctness check
                match sut.run_query(q, &params) {
                    Ok(r) => {
                        if let Some(prev) = rows {
                            assert_eq!(prev, r, "{} disagrees on Q{q}", sut.name());
                        }
                        rows = Some(r);
                        let avg = time_avg(cfg.reps, || {
                            sut.run_query(q, &params).unwrap();
                        });
                        cells.push(ms(avg));
                    }
                    Err(_) => cells.push("DNF".to_string()),
                }
            }
            cells.push(rows.map(|r| r.to_string()).unwrap_or_default());
            t.row(&cells);
        }
        println!(
            "\nShape checks: Sinew an order of magnitude ahead of PG JSON and \
             EAV throughout; PG JSON DNFs Q7; Mongo-vs-Sinew constants \
             reflect the thin stand-in (EXPERIMENTS.md)."
        );
    }
}
