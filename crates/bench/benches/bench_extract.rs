//! Criterion micro-benchmarks for Sinew's query-time extraction path
//! (Appendix B's mechanism): virtual-column extraction vs physical-column
//! access, through the full UDF machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use sinew_core::{AnalyzerPolicy, Sinew};
use sinew_nobench::{generate, NoBenchConfig};
use std::hint::black_box;

const N: u64 = 2_000;

fn build(materialize: bool) -> Sinew {
    let sinew = Sinew::in_memory();
    sinew.create_collection("nobench").unwrap();
    sinew.load_docs("nobench", &generate(N, &NoBenchConfig::default())).unwrap();
    if materialize {
        let policy = AnalyzerPolicy {
            density_threshold: 0.5,
            cardinality_threshold: 100,
            sample_rows: 10_000,
        };
        sinew.run_analyzer("nobench", &policy).unwrap();
        sinew.materialize_until_clean("nobench").unwrap();
        sinew.db().analyze("nobench").unwrap();
    }
    sinew
}

fn bench_virtual_vs_physical(c: &mut Criterion) {
    let virt = build(false);
    let phys = build(true);

    let mut g = c.benchmark_group("projection_scan");
    g.sample_size(20);
    g.bench_function("virtual_column", |b| {
        b.iter(|| black_box(virt.query("SELECT str1 FROM nobench").unwrap().rows.len()))
    });
    g.bench_function("physical_column", |b| {
        b.iter(|| black_box(phys.query("SELECT str1 FROM nobench").unwrap().rows.len()))
    });
    g.finish();

    let mut g = c.benchmark_group("nested_key_scan");
    g.sample_size(20);
    g.bench_function("virtual_dotted", |b| {
        b.iter(|| {
            black_box(
                virt.query(r#"SELECT "nested_obj.str" FROM nobench"#).unwrap().rows.len(),
            )
        })
    });
    g.bench_function("physical_dotted", |b| {
        b.iter(|| {
            black_box(
                phys.query(r#"SELECT "nested_obj.str" FROM nobench"#).unwrap().rows.len(),
            )
        })
    });
    g.finish();
}

fn bench_rewrite_overhead(c: &mut Criterion) {
    let virt = build(false);
    let mut g = c.benchmark_group("rewriter");
    g.bench_function("rewrite_only", |b| {
        b.iter(|| {
            black_box(
                virt.rewrite("SELECT str1, num FROM nobench WHERE sparse_110 = 'x'").unwrap(),
            )
        })
    });
    g.finish();
}

/// Cold per-call path resolution vs a reused extraction plan vs the full
/// plan-cache probe, at 1/3/5 dotted-path levels. This isolates what the
/// plan cache buys the per-tuple loop (the tentpole claim: ≥2× on dotted
/// paths, since catalog lookups and prefix allocation drop out entirely).
fn bench_plan_vs_cold(c: &mut Criterion) {
    use sinew_core::{extract, loader, ExtractionPlan, PlanCache, Want};

    let sinew = Sinew::in_memory();
    let db = sinew.db();
    let cat = sinew.catalog();
    let doc = sinew_json::parse(
        r#"{"a1": 1, "b": {"c": {"a3": 3}}, "d": {"e": {"f": {"g": {"a5": 5}}}}}"#,
    )
    .unwrap();
    let (bytes, _) = loader::serialize_doc(db, cat, &doc).unwrap();

    for (depth, path) in [("depth1", "a1"), ("depth3", "b.c.a3"), ("depth5", "d.e.f.g.a5")] {
        let mut g = c.benchmark_group(&format!("extract_{depth}"));
        g.bench_function("cold_resolve_per_call", |b| {
            b.iter(|| black_box(extract::extract_path(cat, &bytes, path, Want::Int)))
        });
        let plan = ExtractionPlan::build(cat, path, Want::Int);
        g.bench_function("plan_reused", |b| {
            b.iter(|| black_box(plan.extract(cat, &bytes)))
        });
        let cache = PlanCache::new();
        cache.prepare(cat, path, Want::Int);
        g.bench_function("plan_cache_get_and_extract", |b| {
            b.iter(|| black_box(cache.get(cat, path, Want::Int).extract(cat, &bytes)))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_virtual_vs_physical, bench_rewrite_overhead, bench_plan_vs_cold);
criterion_main!(benches);
