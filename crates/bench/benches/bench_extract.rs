//! Criterion micro-benchmarks for Sinew's query-time extraction path
//! (Appendix B's mechanism): virtual-column extraction vs physical-column
//! access, through the full UDF machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use sinew_core::{AnalyzerPolicy, Sinew};
use sinew_nobench::{generate, NoBenchConfig};
use std::hint::black_box;

const N: u64 = 2_000;

fn build(materialize: bool) -> Sinew {
    let sinew = Sinew::in_memory();
    sinew.create_collection("nobench").unwrap();
    sinew.load_docs("nobench", &generate(N, &NoBenchConfig::default())).unwrap();
    if materialize {
        let policy = AnalyzerPolicy {
            density_threshold: 0.5,
            cardinality_threshold: 100,
            sample_rows: 10_000,
        };
        sinew.run_analyzer("nobench", &policy).unwrap();
        sinew.materialize_until_clean("nobench").unwrap();
        sinew.db().analyze("nobench").unwrap();
    }
    sinew
}

fn bench_virtual_vs_physical(c: &mut Criterion) {
    let virt = build(false);
    let phys = build(true);

    let mut g = c.benchmark_group("projection_scan");
    g.sample_size(20);
    g.bench_function("virtual_column", |b| {
        b.iter(|| black_box(virt.query("SELECT str1 FROM nobench").unwrap().rows.len()))
    });
    g.bench_function("physical_column", |b| {
        b.iter(|| black_box(phys.query("SELECT str1 FROM nobench").unwrap().rows.len()))
    });
    g.finish();

    let mut g = c.benchmark_group("nested_key_scan");
    g.sample_size(20);
    g.bench_function("virtual_dotted", |b| {
        b.iter(|| {
            black_box(
                virt.query(r#"SELECT "nested_obj.str" FROM nobench"#).unwrap().rows.len(),
            )
        })
    });
    g.bench_function("physical_dotted", |b| {
        b.iter(|| {
            black_box(
                phys.query(r#"SELECT "nested_obj.str" FROM nobench"#).unwrap().rows.len(),
            )
        })
    });
    g.finish();
}

fn bench_rewrite_overhead(c: &mut Criterion) {
    let virt = build(false);
    let mut g = c.benchmark_group("rewriter");
    g.bench_function("rewrite_only", |b| {
        b.iter(|| {
            black_box(
                virt.rewrite("SELECT str1, num FROM nobench WHERE sparse_110 = 'x'").unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_virtual_vs_physical, bench_rewrite_overhead);
criterion_main!(benches);
