//! Criterion micro-benchmarks for the three serialization formats
//! (Appendix A's mechanism at micro scale): encode, decode, and single-key
//! extraction on one NoBench-shaped document.

use criterion::{criterion_group, criterion_main, Criterion};
use sinew_serial::{avro, pbuf, sinew as sformat, Doc, SValue, WriterSchema};
use std::hint::black_box;

fn sample_doc(n_attrs: u32) -> (Doc, WriterSchema) {
    let mut attrs = Vec::new();
    let mut fields = Vec::new();
    for i in 0..n_attrs {
        let v = match i % 4 {
            0 => SValue::Int(i as i64 * 31),
            1 => SValue::Text(format!("value-{i}-abcdefgh")),
            2 => SValue::Bool(i % 8 == 2),
            _ => SValue::Float(i as f64 * 0.5),
        };
        fields.push((i, v.stype()));
        attrs.push((i, v));
    }
    (Doc::new(attrs), WriterSchema::new(fields))
}

fn bench_formats(c: &mut Criterion) {
    let (doc, schema) = sample_doc(20);
    let s_bytes = sformat::encode(&doc);
    let p_bytes = pbuf::encode(&doc);
    let a_bytes = avro::encode(&doc, &schema);

    let mut g = c.benchmark_group("encode_20_attrs");
    g.bench_function("sinew", |b| b.iter(|| sformat::encode(black_box(&doc))));
    g.bench_function("pbuf", |b| b.iter(|| pbuf::encode(black_box(&doc))));
    g.bench_function("avro", |b| b.iter(|| avro::encode(black_box(&doc), &schema)));
    g.finish();

    let mut g = c.benchmark_group("decode_20_attrs");
    g.bench_function("sinew", |b| {
        b.iter(|| sformat::decode(black_box(&s_bytes), &schema).unwrap())
    });
    g.bench_function("pbuf", |b| b.iter(|| pbuf::decode(black_box(&p_bytes), &schema).unwrap()));
    g.bench_function("avro", |b| b.iter(|| avro::decode(black_box(&a_bytes), &schema).unwrap()));
    g.finish();

    // extraction of the LAST attribute — worst case for sequential formats,
    // log(n) for Sinew's binary search
    let last = 19u32;
    let ty = schema.type_of(last).unwrap();
    let mut g = c.benchmark_group("extract_last_of_20");
    g.bench_function("sinew", |b| {
        b.iter(|| sformat::extract(black_box(&s_bytes), last, ty).unwrap())
    });
    g.bench_function("pbuf", |b| {
        b.iter(|| pbuf::extract(black_box(&p_bytes), last, ty).unwrap())
    });
    g.bench_function("avro", |b| {
        b.iter(|| avro::extract(black_box(&a_bytes), &schema, last).unwrap())
    });
    g.finish();
}

/// The Appendix A mechanism: the extraction gap between random-access and
/// sequential formats grows with attribute count.
fn bench_extraction_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("extract_last_by_width");
    for n in [10u32, 50, 200] {
        let (doc, schema) = sample_doc(n);
        let s_bytes = sformat::encode(&doc);
        let p_bytes = pbuf::encode(&doc);
        let last = n - 1;
        let ty = schema.type_of(last).unwrap();
        g.bench_function(&format!("sinew_{n}"), |b| {
            b.iter(|| sformat::extract(black_box(&s_bytes), last, ty).unwrap())
        });
        g.bench_function(&format!("pbuf_{n}"), |b| {
            b.iter(|| pbuf::extract(black_box(&p_bytes), last, ty).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_formats, bench_extraction_scaling);
criterion_main!(benches);
