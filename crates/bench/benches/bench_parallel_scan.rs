//! Criterion benchmarks for the morsel-parallel scan pipeline and fused
//! multi-key extraction (`extract_keys`): serial vs parallel scans at
//! 1/2/4/8 worker threads, and per-key vs fused extraction at k=1/3/5.
//!
//! The canonical snapshot for these numbers is `results/BENCH_PR3.json`,
//! written by `cargo run --release -p sinew-bench --bin pr3_scan_fusion`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinew_core::Sinew;
use sinew_nobench::{generate, NoBenchConfig};
use sinew_rdbms::ExecLimits;
use std::hint::black_box;

const N: u64 = 100_000;

fn build() -> Sinew {
    let sinew = Sinew::in_memory();
    sinew.create_collection("nobench").unwrap();
    sinew.load_docs("nobench", &generate(N, &NoBenchConfig::default())).unwrap();
    sinew
}

fn with_threads(sinew: &Sinew, threads: usize) {
    sinew
        .db()
        .set_exec_limits(ExecLimits { exec_threads: threads, ..ExecLimits::default() });
}

fn bench_parallel_scan(c: &mut Criterion) {
    let sinew = build();
    let sql = "SELECT str1, num FROM nobench WHERE num >= 0";

    let mut g = c.benchmark_group("parallel_scan");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            with_threads(&sinew, t);
            b.iter(|| black_box(sinew.query(sql).unwrap().rows.len()))
        });
    }
    g.finish();
}

/// Per-key vs fused extraction: both forms are issued as already-rewritten
/// SQL straight to the RDBMS, so the comparison isolates the UDF work (k
/// document decodes vs one decode + k array slots) from the rewriter.
fn bench_fused_extraction(c: &mut Criterion) {
    let sinew = build();
    with_threads(&sinew, 1); // isolate fusion from scan parallelism

    // (key, type tag) in document order; prefixes give k=1/3/5.
    let keys = [
        ("str1", "t"),
        ("num", "i"),
        ("bool", "b"),
        ("str2", "t"),
        ("thousandth", "i"),
    ];
    let mut g = c.benchmark_group("extraction");
    g.sample_size(10);
    for k in [1usize, 3, 5] {
        let per_key: Vec<String> = keys[..k]
            .iter()
            .map(|(key, tag)| format!("extract_key_{tag}(nobench.data, '{key}')"))
            .collect();
        let per_key_sql = format!("SELECT {} FROM nobench", per_key.join(", "));
        let spec: Vec<String> =
            keys[..k].iter().map(|(key, tag)| format!("'{key}', '{tag}'")).collect();
        let fused: Vec<String> = (0..k)
            .map(|i| {
                format!("array_get(extract_keys(nobench.data, {}), {i})", spec.join(", "))
            })
            .collect();
        let fused_sql = format!("SELECT {} FROM nobench", fused.join(", "));

        g.bench_with_input(BenchmarkId::new("per_key", k), &per_key_sql, |b, sql| {
            b.iter(|| black_box(sinew.db().execute(sql).unwrap().rows.len()))
        });
        g.bench_with_input(BenchmarkId::new("fused", k), &fused_sql, |b, sql| {
            b.iter(|| black_box(sinew.db().execute(sql).unwrap().rows.len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_scan, bench_fused_extraction);
criterion_main!(benches);
