//! Criterion benchmarks for the batched columnar kernels: scalar
//! (`SINEW_SIMD=0`) vs batched word-parallel predicate scans and gathers
//! over bit-packed, dictionary and run-length encoded segments.
//!
//! The canonical snapshot for these numbers is `results/BENCH_PR8.json`,
//! written by `cargo run --release -p sinew-bench --bin pr8_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinew_rdbms::{ColumnStore, Datum};
use std::hint::black_box;

const N: u64 = 1 << 20;

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn build_store(name: &str, mk: impl Fn(u64) -> Datum) -> ColumnStore {
    let mut cs = ColumnStore::new(name);
    for i in 0..=N {
        cs.append(i, mk(i));
    }
    for i in (0..N).step_by(97) {
        cs.delete(i);
    }
    cs
}

fn select_all(cs: &ColumnStore, lo: &Datum, hi: &Datum) -> usize {
    let mut total = 0usize;
    let mut offs = Vec::new();
    for seg in 0..cs.n_segments() {
        offs.clear();
        cs.select_segment(seg, Some(lo), true, Some(hi), true, &mut offs);
        total += offs.len();
    }
    total
}

fn bench_kernels(c: &mut Criterion) {
    let cases = [
        (
            "packed",
            build_store("packed", |i| Datum::Int((mix(i) % 1024) as i64)),
            Datum::Int(100),
            Datum::Int(200),
        ),
        (
            "dict",
            build_store("dict", |i| Datum::Text(format!("cat{:02}", mix(i) % 24))),
            Datum::Text("cat05".into()),
            Datum::Text("cat09".into()),
        ),
        (
            "rle",
            build_store("rle", |i| Datum::Int((i / 512) as i64)),
            Datum::Int(100),
            Datum::Int(300),
        ),
    ];
    let prev = std::env::var("SINEW_SIMD").ok();
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    for (name, store, lo, hi) in &cases {
        for mode in ["scalar", "batched"] {
            std::env::set_var("SINEW_SIMD", if mode == "scalar" { "0" } else { "1" });
            g.bench_with_input(BenchmarkId::new(*name, mode), &(), |b, ()| {
                b.iter(|| black_box(select_all(store, lo, hi)))
            });
        }
    }
    g.finish();
    match prev {
        Some(v) => std::env::set_var("SINEW_SIMD", v),
        None => std::env::remove_var("SINEW_SIMD"),
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
