//! Criterion benchmarks for the morsel-parallel pipeline breakers
//! (DESIGN.md §15): the partitioned hash join and the parallel
//! pre-aggregation at 1/2/4/8 worker threads, plus both against their
//! serial operators (`SINEW_PARALLEL_JOIN=0` / `SINEW_PARALLEL_AGG=0`).
//!
//! The canonical snapshot for these numbers is `results/BENCH_PR9.json`,
//! written by `cargo run --release -p sinew-bench --bin pr9_parallel_join`
//! at the full 1M-row scale; this bench runs at 200k rows so criterion's
//! sampling stays tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinew_rdbms::{Database, Datum, ExecLimits, ExecMode};
use std::hint::black_box;

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const FACT_ROWS: u64 = 200_000;
const DIM_ROWS: u64 = 20_000;
const GROUPS: u64 = 5_000;

const JOIN_Q: &str = "SELECT COUNT(*), SUM(d.w), SUM(f.v) FROM f JOIN d ON f.k = d.k";
const AGG_Q: &str = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM f GROUP BY g";

fn build() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE f (k int, g int, v int)").unwrap();
    db.execute("CREATE TABLE d (k int, w int)").unwrap();
    let fact: Vec<Vec<Datum>> = (0..FACT_ROWS)
        .map(|i| {
            let h = mix(i);
            vec![
                Datum::Int((h % DIM_ROWS) as i64),
                Datum::Int((h % GROUPS) as i64),
                Datum::Int((h % 1_000) as i64),
            ]
        })
        .collect();
    db.insert_rows("f", &fact).unwrap();
    let dim: Vec<Vec<Datum>> = (0..DIM_ROWS)
        .map(|i| vec![Datum::Int(i as i64), Datum::Int((mix(i ^ 0xd1b5) % 500) as i64)])
        .collect();
    db.insert_rows("d", &dim).unwrap();
    db.execute("ANALYZE f").unwrap();
    db.execute("ANALYZE d").unwrap();
    db
}

fn with_threads(db: &Database, threads: usize) {
    db.set_exec_limits(ExecLimits {
        mode: ExecMode::Streaming,
        exec_threads: threads,
        ..ExecLimits::default()
    });
}

fn bench_breaker(c: &mut Criterion, name: &str, knob: &str, sql: &str) {
    let db = build();
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    std::env::set_var(knob, "0");
    with_threads(&db, 1);
    g.bench_function("serial", |b| b.iter(|| black_box(db.execute(sql).unwrap().rows.len())));
    std::env::set_var(knob, "1");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            with_threads(&db, t);
            b.iter(|| black_box(db.execute(sql).unwrap().rows.len()))
        });
    }
    std::env::remove_var(knob);
    g.finish();
}

fn bench_parallel_join(c: &mut Criterion) {
    bench_breaker(c, "parallel_hash_join", "SINEW_PARALLEL_JOIN", JOIN_Q);
}

fn bench_parallel_agg(c: &mut Criterion) {
    bench_breaker(c, "parallel_hash_agg", "SINEW_PARALLEL_AGG", AGG_Q);
}

criterion_group!(benches, bench_parallel_join, bench_parallel_agg);
criterion_main!(benches);
