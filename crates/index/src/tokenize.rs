//! Tokenizer: lower-cased alphanumeric runs (Unicode-aware).

/// Split text into lower-case tokens. Non-alphanumeric characters separate
/// tokens; digits are kept (so base64-ish NoBench values remain findable).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_splitting() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   "), Vec::<String>::new());
    }

    #[test]
    fn digits_and_unicode() {
        assert_eq!(tokenize("GBRDCMBQGA======"), vec!["gbrdcmbqga"]);
        assert_eq!(tokenize("héllo wörld"), vec!["héllo", "wörld"]);
        assert_eq!(tokenize("v1.2.3"), vec!["v1", "2", "3"]);
    }
}
