//! The small query language accepted by Sinew's `matches(keys, query)`
//! function (paper §4.3):
//!
//! * bare terms — `fox hound` (implicit AND);
//! * `OR` between terms;
//! * trailing `*` — prefix match;
//! * trailing `~` — fuzzy match (edit distance ≤ 1);
//! * `[lo TO hi]` — numeric range.

use crate::tokenize::tokenize;

#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Term(String),
    Prefix(String),
    Fuzzy(String),
    Range { lo: f64, hi: f64 },
    And(Vec<Query>),
    Or(Vec<Query>),
}

/// Parse a query string. Malformed ranges degrade to term queries; an
/// empty string yields an AND of nothing (matches nothing).
pub fn parse_query(input: &str) -> Query {
    // Ranges first: [lo TO hi]
    let trimmed = input.trim();
    if let Some(range) = parse_range(trimmed) {
        return range;
    }
    // Split on OR (case sensitive, word boundary via whitespace split).
    let or_parts: Vec<&str> = split_or(trimmed);
    if or_parts.len() > 1 {
        return Query::Or(or_parts.into_iter().map(parse_query).collect());
    }
    // Implicit AND of word queries.
    let mut parts = Vec::new();
    for word in trimmed.split_whitespace() {
        if let Some(range) = parse_range(word) {
            parts.push(range);
            continue;
        }
        if let Some(stem) = word.strip_suffix('*') {
            let toks = tokenize(stem);
            if let Some(t) = toks.into_iter().next() {
                parts.push(Query::Prefix(t));
            }
            continue;
        }
        if let Some(stem) = word.strip_suffix('~') {
            let toks = tokenize(stem);
            if let Some(t) = toks.into_iter().next() {
                parts.push(Query::Fuzzy(t));
            }
            continue;
        }
        for t in tokenize(word) {
            parts.push(Query::Term(t));
        }
    }
    if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        Query::And(parts)
    }
}

fn split_or(input: &str) -> Vec<&str> {
    // split on standalone OR tokens
    let mut parts = Vec::new();
    let mut start = 0;
    let bytes = input.as_bytes();
    let mut i = 0;
    while i + 2 <= bytes.len() {
        if &input[i..i + 2] == "OR"
            && (i == 0 || bytes[i - 1].is_ascii_whitespace())
            && (i + 2 == bytes.len() || bytes[i + 2].is_ascii_whitespace())
        {
            parts.push(input[start..i].trim());
            start = i + 2;
            i += 2;
        } else {
            i += 1;
        }
    }
    parts.push(input[start..].trim());
    parts.retain(|p| !p.is_empty());
    if parts.is_empty() {
        vec![input]
    } else {
        parts
    }
}

fn parse_range(s: &str) -> Option<Query> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let (lo, hi) = inner.split_once(" TO ")?;
    Some(Query::Range { lo: lo.trim().parse().ok()?, hi: hi.trim().parse().ok()? })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_term() {
        assert_eq!(parse_query("Fox"), Query::Term("fox".into()));
    }

    #[test]
    fn implicit_and() {
        assert_eq!(
            parse_query("quick fox"),
            Query::And(vec![Query::Term("quick".into()), Query::Term("fox".into())])
        );
    }

    #[test]
    fn or_splitting() {
        assert_eq!(
            parse_query("cat OR dog"),
            Query::Or(vec![Query::Term("cat".into()), Query::Term("dog".into())])
        );
        // OR inside a word is not a separator
        assert_eq!(parse_query("ORchid"), Query::Term("orchid".into()));
    }

    #[test]
    fn prefix_fuzzy_range() {
        assert_eq!(parse_query("qui*"), Query::Prefix("qui".into()));
        assert_eq!(parse_query("quik~"), Query::Fuzzy("quik".into()));
        assert_eq!(parse_query("[1.5 TO 20]"), Query::Range { lo: 1.5, hi: 20.0 });
        // malformed range degrades to terms
        assert_eq!(
            parse_query("[1.5 TO"),
            Query::And(vec![Query::Term("1".into()), Query::Term("5".into()), Query::Term("to".into())])
        );
    }

    #[test]
    fn empty_matches_nothing() {
        assert_eq!(parse_query(""), Query::And(vec![]));
    }
}
