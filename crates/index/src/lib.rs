//! # sinew-index
//!
//! An inverted text index — the Apache Solr stand-in of the Sinew paper
//! (§4.3, §5).
//!
//! "At a high level, an inverted text index tokenizes the input data and
//! compiles a vector of terms together with a list of IDs corresponding to
//! the records that contain that term. Additionally, it can give the option
//! of faceting its term vectors by strongly typed fields."
//!
//! This crate provides exactly that: per-field (attribute-faceted) postings
//! with term, prefix, fuzzy (edit distance ≤ 1), and numeric range queries,
//! plus a small query-string language used by Sinew's `matches(keys, query)`
//! SQL function. Results are sorted row-id lists that the caller applies as
//! a filter over the base relation — "The results of the search (a set of
//! matching record IDs) can then be applied as a filter over the original
//! relation."

mod query;
mod tokenize;

pub use query::{parse_query, Query};
pub use tokenize::tokenize;

use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};

pub type DocId = u64;

/// Total-ordered f64 wrapper for the numeric facet.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NumKey(f64);

impl Eq for NumKey {}
impl PartialOrd for NumKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NumKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Default)]
struct FieldIndex {
    /// term → sorted doc ids (sorted lazily on query).
    terms: HashMap<String, Vec<DocId>>,
    /// numeric facet for range queries.
    numbers: BTreeMap<NumKey, Vec<DocId>>,
}

/// The inverted index over one logical table.
#[derive(Default)]
pub struct TextIndex {
    fields: RwLock<HashMap<String, FieldIndex>>,
    deleted: RwLock<HashSet<DocId>>,
}

impl TextIndex {
    pub fn new() -> TextIndex {
        TextIndex::default()
    }

    /// Index a text value under a field (attribute name).
    pub fn add_text(&self, field: &str, doc: DocId, text: &str) {
        let mut fields = self.fields.write();
        let fi = fields.entry(field.to_string()).or_default();
        for tok in tokenize(text) {
            fi.terms.entry(tok).or_default().push(doc);
        }
    }

    /// Index a numeric value under a field (for range queries).
    pub fn add_number(&self, field: &str, doc: DocId, value: f64) {
        let mut fields = self.fields.write();
        let fi = fields.entry(field.to_string()).or_default();
        fi.numbers.entry(NumKey(value)).or_default().push(doc);
        // numbers are also searchable as terms
        fi.terms.entry(value.to_string()).or_default().push(doc);
    }

    /// Tombstone a document (e.g. after UPDATE/DELETE); it stops matching.
    pub fn delete_doc(&self, doc: DocId) {
        self.deleted.write().insert(doc);
    }

    pub fn field_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.fields.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Run a parsed query. `fields`: specific attribute names, or empty for
    /// all fields (the `'*'` case of the paper's `matches`).
    pub fn search(&self, fields: &[String], query: &Query) -> Vec<DocId> {
        let guard = self.fields.read();
        let selected: Vec<&FieldIndex> = if fields.is_empty() {
            guard.values().collect()
        } else {
            fields.iter().filter_map(|f| guard.get(f)).collect()
        };
        let mut result = self.eval(&selected, query);
        let deleted = self.deleted.read();
        if !deleted.is_empty() {
            result.retain(|d| !deleted.contains(d));
        }
        result
    }

    /// Convenience: parse and run a query string.
    pub fn search_str(&self, fields: &[String], query: &str) -> Vec<DocId> {
        self.search(fields, &parse_query(query))
    }

    fn eval(&self, fields: &[&FieldIndex], q: &Query) -> Vec<DocId> {
        match q {
            Query::Term(t) => self.collect_matching(fields, |term| term == t),
            Query::Prefix(p) => self.collect_matching(fields, |term| term.starts_with(p.as_str())),
            Query::Fuzzy(t) => self.collect_matching(fields, |term| within_edit1(term, t)),
            Query::Range { lo, hi } => {
                let mut out = Vec::new();
                for fi in fields {
                    for (_, docs) in fi.numbers.range(NumKey(*lo)..=NumKey(*hi)) {
                        out.extend_from_slice(docs);
                    }
                }
                sort_dedup(out)
            }
            Query::And(parts) => {
                let mut iter = parts.iter();
                let Some(first) = iter.next() else { return Vec::new() };
                let mut acc = self.eval(fields, first);
                for p in iter {
                    let next = self.eval(fields, p);
                    acc = intersect_sorted(&acc, &next);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
            Query::Or(parts) => {
                let mut acc = Vec::new();
                for p in parts {
                    acc.extend(self.eval(fields, p));
                }
                sort_dedup(acc)
            }
        }
    }

    fn collect_matching(&self, fields: &[&FieldIndex], pred: impl Fn(&str) -> bool) -> Vec<DocId> {
        let mut out = Vec::new();
        for fi in fields {
            for (term, docs) in &fi.terms {
                if pred(term) {
                    out.extend_from_slice(docs);
                }
            }
        }
        sort_dedup(out)
    }
}

fn sort_dedup(mut v: Vec<DocId>) -> Vec<DocId> {
    v.sort_unstable();
    v.dedup();
    v
}

fn intersect_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Levenshtein distance ≤ 1 without allocating the DP matrix.
fn within_edit1(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (s, l): (Vec<char>, Vec<char>) = (short.chars().collect(), long.chars().collect());
    match l.len() - s.len() {
        0 => s.iter().zip(&l).filter(|(x, y)| x != y).count() <= 1, // substitution
        1 => {
            // single insertion into the shorter string
            let mut i = 0;
            while i < s.len() && s[i] == l[i] {
                i += 1;
            }
            s[i..] == l[i + 1..]
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextIndex {
        let idx = TextIndex::new();
        idx.add_text("title", 1, "The Quick Brown Fox");
        idx.add_text("title", 2, "quick silver");
        idx.add_text("body", 3, "a fox and a hound");
        idx.add_number("hits", 1, 10.0);
        idx.add_number("hits", 2, 25.0);
        idx.add_number("hits", 3, 90.0);
        idx
    }

    #[test]
    fn term_search_per_field_and_all_fields() {
        let idx = sample();
        assert_eq!(idx.search_str(&["title".into()], "fox"), vec![1]);
        assert_eq!(idx.search_str(&[], "fox"), vec![1, 3]);
        assert_eq!(idx.search_str(&["body".into()], "quick"), Vec::<u64>::new());
    }

    #[test]
    fn and_or_queries() {
        let idx = sample();
        assert_eq!(idx.search_str(&[], "quick fox"), vec![1]); // implicit AND
        assert_eq!(idx.search_str(&[], "silver OR hound"), vec![2, 3]);
    }

    #[test]
    fn prefix_and_fuzzy() {
        let idx = sample();
        assert_eq!(idx.search_str(&[], "qui*"), vec![1, 2]);
        assert_eq!(idx.search_str(&[], "quik~"), vec![1, 2]); // 1 edit
        assert_eq!(idx.search_str(&[], "quxck~"), vec![1, 2]); // substitution
        assert_eq!(idx.search_str(&[], "qwwck~"), Vec::<u64>::new()); // 2 edits
    }

    #[test]
    fn numeric_range() {
        let idx = sample();
        let q = Query::Range { lo: 5.0, hi: 30.0 };
        assert_eq!(idx.search(&["hits".to_string()], &q), vec![1, 2]);
        assert_eq!(idx.search(&["hits".to_string()], &parse_query("[5 TO 30]")), vec![1, 2]);
    }

    #[test]
    fn tombstones_filter_results() {
        let idx = sample();
        idx.delete_doc(1);
        assert_eq!(idx.search_str(&[], "fox"), vec![3]);
    }

    #[test]
    fn case_insensitive() {
        let idx = sample();
        assert_eq!(idx.search_str(&[], "QUICK"), vec![1, 2]);
        assert_eq!(idx.search_str(&[], "Brown"), vec![1]);
    }

    #[test]
    fn edit_distance_helper() {
        assert!(within_edit1("abc", "abc"));
        assert!(within_edit1("abc", "abd"));
        assert!(within_edit1("abc", "abcd"));
        assert!(within_edit1("abc", "ab"));
        assert!(!within_edit1("abc", "axd"));
        assert!(!within_edit1("abc", "abcde"));
        assert!(within_edit1("", "a"));
        assert!(!within_edit1("", "ab"));
    }
}
