//! Regression coverage for scalar semantics: exact Int↔Float comparison
//! (no lossy i64→f64 cast), checked integer arithmetic, and the LIKE
//! matcher's escape/multi-byte handling — each pinned against a naive
//! reference or a concrete miscomparison that the old code got wrong.

use proptest::prelude::*;
use sinew_rdbms::expr::like_match;
use sinew_rdbms::{Database, Datum, DbError};
use std::cmp::Ordering;

// ---- exact Int ↔ Float comparison ----
//
// 2^53 + 1 is the first integer that f64 cannot represent: the old
// `(*a as f64).partial_cmp(b)` rounded it to 2^53 and declared it equal
// to Float(2^53). The fixed comparison must see through the rounding.

#[test]
fn int_float_comparison_is_exact_beyond_2_53() {
    let big = 9_007_199_254_740_993i64; // 2^53 + 1
    let below = 9_007_199_254_740_992.0f64; // 2^53
    assert_eq!(Datum::Int(big).sql_cmp(&Datum::Float(below)), Some(Ordering::Greater));
    assert_eq!(Datum::Float(below).sql_cmp(&Datum::Int(big)), Some(Ordering::Less));
    assert_eq!(Datum::Int(big).sql_eq(&Datum::Float(below)), Some(false));
    // Exactly representable values still compare equal.
    assert_eq!(
        Datum::Int(big - 1).sql_cmp(&Datum::Float(below)),
        Some(Ordering::Equal)
    );
}

#[test]
fn int_float_comparison_near_i64_extremes() {
    // 2^63 as a float is out of i64 range: strictly greater than any Int,
    // even i64::MAX (the old cast saturated and said Equal).
    let two_63 = 9_223_372_036_854_775_808.0f64;
    assert_eq!(
        Datum::Int(i64::MAX).sql_cmp(&Datum::Float(two_63)),
        Some(Ordering::Less)
    );
    // -2^63 is exactly i64::MIN.
    assert_eq!(
        Datum::Int(i64::MIN).sql_cmp(&Datum::Float(-two_63)),
        Some(Ordering::Equal)
    );
    assert_eq!(
        Datum::Int(i64::MIN).sql_cmp(&Datum::Float(f64::NEG_INFINITY)),
        Some(Ordering::Greater)
    );
    assert_eq!(Datum::Int(0).sql_cmp(&Datum::Float(f64::NAN)), None);
    // Fractional tails break ties in the right direction.
    assert_eq!(
        Datum::Int(5).sql_cmp(&Datum::Float(5.5)),
        Some(Ordering::Less)
    );
    assert_eq!(
        Datum::Int(-5).sql_cmp(&Datum::Float(-5.5)),
        Some(Ordering::Greater)
    );
}

#[test]
fn group_key_rejects_2_63_float() {
    // Float(2^63) is integral but outside i64: it must NOT group with
    // Int(i64::MAX) (the saturating `as` cast would have made it).
    let f = Datum::Float(9_223_372_036_854_775_808.0);
    assert_ne!(f.group_key(), Datum::Int(i64::MAX).group_key());
    // ... while integral floats inside the range still unify with ints.
    assert_eq!(Datum::Float(42.0).group_key(), Datum::Int(42).group_key());
}

#[test]
fn total_cmp_stays_total_across_large_mixed_numerics() {
    // Sorting a mixed column spanning the 2^53 boundary must be stable
    // and strict-weak; a lossy comparison makes "equal" intransitive.
    let mut v = vec![
        Datum::Int(9_007_199_254_740_993),
        Datum::Float(9_007_199_254_740_992.0),
        Datum::Int(9_007_199_254_740_992),
        Datum::Float(9_007_199_254_740_994.0),
        Datum::Float(f64::NAN),
        Datum::Float(-f64::NAN),
        Datum::Int(i64::MIN),
        Datum::Float(-0.0),
        Datum::Int(0),
    ];
    v.sort_by(|a, b| a.total_cmp(b));
    for w in v.windows(2) {
        assert_ne!(w[0].total_cmp(&w[1]), Ordering::Greater, "{w:?} out of order");
    }
    // The 2^53+1 int lands strictly between the 2^53 values (Int and
    // Float compare equal there, so either may neighbour it) and the
    // 2^53+2 float.
    let pos993 = v
        .iter()
        .position(|d| *d == Datum::Int(9_007_199_254_740_993))
        .unwrap();
    assert!(
        v[pos993 - 1] == Datum::Float(9_007_199_254_740_992.0)
            || v[pos993 - 1] == Datum::Int(9_007_199_254_740_992),
        "below 2^53+1: {:?}",
        v[pos993 - 1]
    );
    assert_eq!(v[pos993 + 1], Datum::Float(9_007_199_254_740_994.0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The exact comparison agrees with arbitrary-precision ground truth
    /// (f64 → rational via i128 scaling of the mantissa is overkill; a
    /// string-free check via f64 bounds does the job: compare against the
    /// two neighbouring representable floats of `a`).
    #[test]
    fn exact_cmp_matches_wide_float_arithmetic(a in any::<i64>(), b in any::<f64>()) {
        let got = Datum::Int(a).sql_cmp(&Datum::Float(b));
        if b.is_nan() {
            prop_assert_eq!(got, None);
        } else {
            // Ground truth via 128-bit comparison: every f64 with |b| < 2^127
            // is exactly representable as (mantissa × 2^exp); instead of
            // decomposing, compare in two monotone steps that are each exact.
            let truth = if b >= 9_223_372_036_854_775_808.0 {
                Ordering::Less
            } else if b < -9_223_372_036_854_775_808.0 {
                Ordering::Greater
            } else {
                let fl = b.floor();
                let fi = fl as i64;
                match a.cmp(&fi) {
                    Ordering::Equal if b > fl => Ordering::Less,
                    o => o,
                }
            };
            prop_assert_eq!(got, Some(truth));
        }
    }

    /// Antisymmetry between the two mixed arms.
    #[test]
    fn mixed_cmp_antisymmetric(a in any::<i64>(), b in any::<f64>()) {
        let ab = Datum::Int(a).sql_cmp(&Datum::Float(b));
        let ba = Datum::Float(b).sql_cmp(&Datum::Int(a));
        prop_assert_eq!(ab, ba.map(Ordering::reverse));
    }
}

// ---- checked integer arithmetic ----

#[test]
fn integer_overflow_is_an_error_not_a_wrap() {
    let db = Database::in_memory();
    for sql in [
        "SELECT 9223372036854775807 + 1",
        "SELECT -9223372036854775807 - 2",
        "SELECT 4611686018427387904 * 2",
    ] {
        let err = db.execute(sql).unwrap_err();
        assert!(
            matches!(&err, DbError::Eval(m) if m.contains("overflow")),
            "{sql}: expected overflow error, got {err:?}"
        );
    }
    // i64::MIN / -1 and % -1 overflow too (no literal for i64::MIN, so
    // feed it through a table).
    db.execute("CREATE TABLE o (v int)").unwrap();
    db.insert_rows("o", &[vec![Datum::Int(i64::MIN)]]).unwrap();
    for sql in ["SELECT v / -1 FROM o", "SELECT v % -1 FROM o"] {
        let err = db.execute(sql).unwrap_err();
        assert!(
            matches!(&err, DbError::Eval(m) if m.contains("overflow")),
            "{sql}: expected overflow error, got {err:?}"
        );
    }
    // In-range arithmetic is untouched.
    let r = db.execute("SELECT 9223372036854775806 + 1").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(i64::MAX)));
    // Division by zero keeps its own message.
    let err = db.execute("SELECT 1 / 0").unwrap_err();
    assert!(matches!(&err, DbError::Eval(m) if m.contains("division by zero")));
}

#[test]
fn lossy_float_literal_comparison_fixed_end_to_end() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (v int)").unwrap();
    db.insert_rows(
        "big",
        &[
            vec![Datum::Int(9_007_199_254_740_992)],
            vec![Datum::Int(9_007_199_254_740_993)],
        ],
    )
    .unwrap();
    // The float literal is exactly 2^53; only the first row matches.
    let r = db
        .execute("SELECT COUNT(*) FROM big WHERE v = 9007199254740992.0")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(1)));
}

// ---- columnar zone maps stay supersets under the exact comparison ----

#[test]
fn zone_maps_remain_supersets_across_2_53_boundary() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE z (v int)").unwrap();
    // > 1 segment (SEG_ROWS = 4096) of values straddling 2^53 so segment
    // min/max bounds sit in the lossy region.
    let base = 9_007_199_254_740_992i64 - 3000;
    let rows: Vec<Vec<Datum>> = (0..6000).map(|i| vec![Datum::Int(base + i)]).collect();
    db.insert_rows("z", &rows).unwrap();
    db.build_columnar("z", "v").unwrap();
    for probe in [
        base,
        base + 2999,
        base + 3000, // 2^53 exactly
        base + 3001, // 2^53 + 1: unrepresentable as f64
        base + 5999,
    ] {
        let r = db
            .execute(&format!("SELECT COUNT(*) FROM z WHERE v = {probe}"))
            .unwrap();
        // Pruning must never drop the segment that holds the match.
        assert_eq!(r.scalar(), Some(&Datum::Int(1)), "probe {probe}");
    }
    // A float probe between representable neighbours matches exactly one
    // row under exact semantics (2^53 + 1 rounds to 2^53 in the literal).
    let r = db
        .execute("SELECT COUNT(*) FROM z WHERE v = 9007199254740992.0")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(1)));
}

// ---- LIKE matcher ----

#[test]
fn like_escapes_and_literals() {
    // Escaped wildcards match literally.
    assert!(like_match("100%", "100\\%"));
    assert!(!like_match("1000", "100\\%"));
    assert!(like_match("a_b", "a\\_b"));
    assert!(!like_match("axb", "a\\_b"));
    // Escaped backslash.
    assert!(like_match("a\\b", "a\\\\b"));
    // A trailing backslash (nothing to escape) matches itself.
    assert!(like_match("ab\\", "ab\\"));
    assert!(!like_match("ab", "ab\\"));
    // Escape before a non-wildcard is just that char.
    assert!(like_match("abc", "a\\bc"));
}

#[test]
fn like_multibyte_chars() {
    // `_` consumes one *char*, not one byte.
    assert!(like_match("héllo", "h_llo"));
    assert!(like_match("日本語", "___"));
    assert!(!like_match("日本語", "____"));
    assert!(like_match("naïve", "na%ve"));
    assert!(like_match("crème brûlée", "%brûlée"));
    assert!(like_match("😀😀", "😀%"));
}

#[test]
fn like_wildcard_basics() {
    assert!(like_match("", "%"));
    assert!(like_match("abc", "%"));
    assert!(!like_match("", "_"));
    assert!(like_match("abc", "a%c"));
    assert!(like_match("ac", "a%c"));
    assert!(!like_match("ab", "a%c"));
    assert!(like_match("abcbc", "a%bc"));
    // Multiple %s with backtracking.
    assert!(like_match("xaybzc", "%a%b%c%"));
}

/// Naive reference matcher: straightforward recursion over char slices,
/// obviously correct, exponential in the worst case — inputs stay small.
fn like_ref(s: &[char], p: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('\\') if p.len() > 1 => match s.first() {
            Some(c) if *c == p[1] => like_ref(&s[1..], &p[2..]),
            _ => false,
        },
        Some('%') => {
            (0..=s.len()).any(|k| like_ref(&s[k..], &p[1..]))
        }
        Some('_') => !s.is_empty() && like_ref(&s[1..], &p[1..]),
        Some(c) => match s.first() {
            Some(sc) if sc == c => like_ref(&s[1..], &p[1..]),
            _ => false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn like_matches_reference(
        s in "[abé%_\\\\]{0,8}",
        p in "[abé%_\\\\]{0,6}",
    ) {
        let sc: Vec<char> = s.chars().collect();
        let pc: Vec<char> = p.chars().collect();
        prop_assert_eq!(
            like_match(&s, &p),
            like_ref(&sc, &pc),
            "s={:?} p={:?}", s, p
        );
    }
}
