//! Executor edge cases: NULL join semantics, duplicate-key joins, empty
//! inputs, and NULL ordering.

use sinew_rdbms::{Database, Datum, PlannerConfig};

fn db2(l: &[(Option<i64>, &str)], r: &[(Option<i64>, &str)]) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE l (k int, v text)").unwrap();
    db.execute("CREATE TABLE r (k int, w text)").unwrap();
    for (k, v) in l {
        let kd = k.map(Datum::Int).unwrap_or(Datum::Null);
        db.insert_rows("l", &[vec![kd, Datum::Text(v.to_string())]]).unwrap();
    }
    for (k, w) in r {
        let kd = k.map(Datum::Int).unwrap_or(Datum::Null);
        db.insert_rows("r", &[vec![kd, Datum::Text(w.to_string())]]).unwrap();
    }
    db
}

#[test]
fn null_keys_never_join_hash_and_merge() {
    let db = db2(
        &[(Some(1), "a"), (None, "b"), (Some(2), "c")],
        &[(Some(1), "x"), (None, "y")],
    );
    let sql = "SELECT l.v, r.w FROM l, r WHERE l.k = r.k";
    let hash = db.execute(sql).unwrap();
    assert_eq!(hash.rows, vec![vec![Datum::Text("a".into()), Datum::Text("x".into())]]);
    // force merge join
    let pc = PlannerConfig { work_mem: 1, ..Default::default() };
    db.set_planner_config(pc);
    let plan = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    let text: String =
        plan.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("Merge Join"), "{text}");
    let merge = db.execute(sql).unwrap();
    assert_eq!(merge.rows, hash.rows);
}

#[test]
fn duplicate_keys_cross_product_within_group() {
    let db = db2(
        &[(Some(7), "l1"), (Some(7), "l2")],
        &[(Some(7), "r1"), (Some(7), "r2"), (Some(7), "r3")],
    );
    let sql = "SELECT COUNT(*) FROM l, r WHERE l.k = r.k";
    assert_eq!(db.execute(sql).unwrap().scalar(), Some(&Datum::Int(6)));
    let pc = PlannerConfig { work_mem: 1, ..Default::default() };
    db.set_planner_config(pc);
    assert_eq!(db.execute(sql).unwrap().scalar(), Some(&Datum::Int(6)));
}

#[test]
fn joins_with_empty_sides() {
    let db = db2(&[(Some(1), "a")], &[]);
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap().scalar(),
        Some(&Datum::Int(0))
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM l LEFT JOIN r ON l.k = r.k").unwrap().scalar(),
        Some(&Datum::Int(1))
    );
}

#[test]
fn non_equi_join_uses_nested_loop() {
    let db = db2(&[(Some(1), "a"), (Some(5), "b")], &[(Some(3), "x")]);
    let plan = db
        .execute("EXPLAIN SELECT COUNT(*) FROM l, r WHERE l.k < r.k")
        .unwrap();
    let text: String =
        plan.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("Nested Loop"), "{text}");
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM l, r WHERE l.k < r.k").unwrap().scalar(),
        Some(&Datum::Int(1))
    );
}

#[test]
fn order_by_places_nulls_first_ascending() {
    let db = db2(&[(Some(2), "a"), (None, "b"), (Some(1), "c")], &[]);
    let r = db.execute("SELECT k FROM l ORDER BY k").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Null], vec![Datum::Int(1)], vec![Datum::Int(2)]]);
    let r = db.execute("SELECT k FROM l ORDER BY k DESC").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(2)], vec![Datum::Int(1)], vec![Datum::Null]]);
}

#[test]
fn limit_zero_and_large() {
    let db = db2(&[(Some(1), "a"), (Some(2), "b")], &[]);
    assert!(db.execute("SELECT v FROM l LIMIT 0").unwrap().rows.is_empty());
    assert_eq!(db.execute("SELECT v FROM l LIMIT 999").unwrap().rows.len(), 2);
}

#[test]
fn having_on_aggregate_not_in_select() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (g text, v int)").unwrap();
    db.execute(
        "INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 10), ('b', 20), ('c', 1)",
    )
    .unwrap();
    let r = db
        .execute("SELECT g FROM t GROUP BY g HAVING SUM(v) > 5 ORDER BY g")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("b".into())]]);
    // aggregate in ORDER BY only
    let r = db
        .execute("SELECT g FROM t GROUP BY g ORDER BY SUM(v) DESC LIMIT 1")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("b".into())]]);
}

#[test]
fn group_by_expression() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (v int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..100).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("t", &rows).unwrap();
    let r = db
        .execute("SELECT v % 3, COUNT(*) FROM t GROUP BY v % 3 ORDER BY v % 3")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0], vec![Datum::Int(0), Datum::Int(34)]);
    assert_eq!(r.rows[1], vec![Datum::Int(1), Datum::Int(33)]);
}

#[test]
fn group_key_null_forms_its_own_group() {
    let db = db2(&[(Some(1), "a"), (None, "b"), (None, "c")], &[]);
    let r = db.execute("SELECT k, COUNT(*) FROM l GROUP BY k ORDER BY k").unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Datum::Null, Datum::Int(2)]);
}

#[test]
fn distinct_entire_row() {
    let db = db2(&[(Some(1), "a"), (Some(1), "a"), (Some(1), "b")], &[]);
    let r = db.execute("SELECT DISTINCT k, v FROM l").unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn update_with_no_matches_and_full_table() {
    let db = db2(&[(Some(1), "a"), (Some(2), "b")], &[]);
    assert_eq!(db.execute("UPDATE l SET v = 'x' WHERE k = 99").unwrap().affected, 0);
    assert_eq!(db.execute("UPDATE l SET v = 'x'").unwrap().affected, 2);
    let r = db.execute("SELECT COUNT(*) FROM l WHERE v = 'x'").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(2)));
}

#[test]
fn three_valued_logic_in_where() {
    let db = db2(&[(Some(1), "a"), (None, "b")], &[]);
    // NULL <> 1 is NULL → filtered out (not an error, not a match)
    let r = db.execute("SELECT v FROM l WHERE k <> 1").unwrap();
    assert!(r.rows.is_empty());
    let r = db.execute("SELECT v FROM l WHERE NOT (k = 1)").unwrap();
    assert!(r.rows.is_empty());
    let r = db.execute("SELECT v FROM l WHERE k IS NULL").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("b".into())]]);
}
