//! MVCC snapshot-transaction tests: BEGIN/COMMIT/ROLLBACK semantics,
//! first-writer-wins conflicts, snapshot-isolated readers racing writers,
//! and the vacuum horizon. The multi-threaded stress test at the bottom is
//! the PR's acceptance scenario: a reader completes a consistent scan while
//! a writer transaction and a columnar rebuild are both in flight.

use sinew_rdbms::{Database, Datum, DbError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

fn mvcc_db() -> Database {
    let db = Database::in_memory_mvcc(true);
    db.execute("CREATE TABLE acct (id int, owner text, balance int)").unwrap();
    db.execute(
        "INSERT INTO acct VALUES (1, 'ann', 100), (2, 'bob', 200), (3, 'cal', 300)",
    )
    .unwrap();
    db
}

fn balances(db: &Database) -> Vec<i64> {
    db.execute("SELECT balance FROM acct ORDER BY id")
        .unwrap()
        .rows
        .iter()
        .map(|r| match r[0] {
            Datum::Int(v) => v,
            _ => panic!("non-int balance"),
        })
        .collect()
}

#[test]
fn commit_publishes_all_writes_atomically() {
    let db = mvcc_db();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE acct SET balance = balance - 50 WHERE id = 1").unwrap();
    s.execute("UPDATE acct SET balance = balance + 50 WHERE id = 2").unwrap();
    // Not visible outside the transaction yet.
    assert_eq!(balances(&db), vec![100, 200, 300]);
    // ...but the transaction sees its own writes.
    let r = s.execute("SELECT balance FROM acct WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(50));
    s.execute("COMMIT").unwrap();
    assert_eq!(balances(&db), vec![50, 250, 300]);
    let stats = db.exec_stats();
    assert_eq!(stats.txns_begun, 1);
    assert_eq!(stats.txns_committed, 1);
    assert_eq!(stats.txns_aborted, 0);
}

#[test]
fn rollback_undoes_insert_update_delete() {
    let db = mvcc_db();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO acct VALUES (4, 'dee', 400)").unwrap();
    s.execute("UPDATE acct SET balance = 0 WHERE id = 2").unwrap();
    s.execute("DELETE FROM acct WHERE id = 3").unwrap();
    let r = s.execute("SELECT count(*) FROM acct").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(3)); // 3 original - 1 deleted + 1 inserted
    s.execute("ROLLBACK").unwrap();
    assert_eq!(balances(&db), vec![100, 200, 300]);
    assert_eq!(db.row_count("acct").unwrap(), 3);
    assert_eq!(db.exec_stats().txns_aborted, 1);
}

#[test]
fn dropped_session_rolls_back() {
    let db = mvcc_db();
    {
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("DELETE FROM acct WHERE id = 1").unwrap();
        assert!(s.in_txn());
    } // dropped without COMMIT
    assert_eq!(db.row_count("acct").unwrap(), 3);
    assert_eq!(db.exec_stats().txns_aborted, 1);
}

#[test]
fn first_writer_wins_conflict_aborts_second() {
    let db = mvcc_db();
    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE acct SET balance = 111 WHERE id = 1").unwrap();
    // s2 touches the same row: first-writer-wins kills s2.
    let err = s2.execute("UPDATE acct SET balance = 222 WHERE id = 1").unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "got {err:?}");
    assert!(!s2.in_txn(), "conflict must auto-rollback the loser");
    s1.execute("COMMIT").unwrap();
    assert_eq!(balances(&db), vec![111, 200, 300]);
    let stats = db.exec_stats();
    assert_eq!(stats.write_conflicts, 1);
    assert_eq!(stats.txns_aborted, 1);
}

#[test]
fn stale_row_conflicts_even_after_commit() {
    // s2's snapshot predates s1's commit; writing the row s1 changed must
    // conflict even though s1 already finished (no dirty marker left).
    let db = mvcc_db();
    let mut s1 = db.session();
    let mut s2 = db.session();
    s2.execute("BEGIN").unwrap();
    s2.execute("SELECT * FROM acct").unwrap(); // pin the snapshot in time
    s1.execute("BEGIN").unwrap();
    s1.execute("UPDATE acct SET balance = 999 WHERE id = 2").unwrap();
    s1.execute("COMMIT").unwrap();
    let err = s2.execute("UPDATE acct SET balance = 1 WHERE id = 2").unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "got {err:?}");
    assert_eq!(balances(&db), vec![100, 999, 300]);
}

#[test]
fn autocommit_statement_conflicts_with_open_txn_marker() {
    let db = mvcc_db();
    let mut s1 = db.session();
    s1.execute("BEGIN").unwrap();
    s1.execute("UPDATE acct SET balance = 5 WHERE id = 1").unwrap();
    // An autocommit UPDATE hitting the marker row errors instead of
    // blocking or trampling the uncommitted version.
    let err = db.execute("UPDATE acct SET balance = 6 WHERE id = 1").unwrap_err();
    assert!(matches!(err, DbError::Conflict(_)), "got {err:?}");
    s1.execute("COMMIT").unwrap();
    assert_eq!(balances(&db), vec![5, 200, 300]);
}

#[test]
fn snapshot_reader_does_not_see_concurrent_commit() {
    let db = mvcc_db();
    let mut reader = db.session();
    reader.execute("BEGIN").unwrap();
    let before = reader.execute("SELECT sum(balance) FROM acct").unwrap();
    db.execute("UPDATE acct SET balance = balance + 1000").unwrap();
    // Same transaction, same snapshot: totals must not move.
    let after = reader.execute("SELECT sum(balance) FROM acct").unwrap();
    assert_eq!(before.rows, after.rows);
    reader.execute("COMMIT").unwrap();
    // A fresh statement sees the new world.
    let r = db.execute("SELECT sum(balance) FROM acct").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(600 + 3000));
}

#[test]
fn snapshot_reader_sees_pre_delete_rows_and_vacuum_reclaims() {
    let db = mvcc_db();
    let mut reader = db.session();
    reader.execute("BEGIN").unwrap();
    reader.execute("SELECT * FROM acct").unwrap();
    db.execute("DELETE FROM acct WHERE id = 2").unwrap();
    // Snapshot still sees the tombstoned row.
    let r = reader.execute("SELECT count(*) FROM acct").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(3));
    assert_eq!(db.row_count("acct").unwrap(), 2);
    reader.execute("COMMIT").unwrap();
    // Horizon has passed; vacuum may reclaim the retained slot.
    db.vacuum().unwrap();
    let r = db.execute("SELECT count(*) FROM acct").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(2));
}

#[test]
fn txn_requires_session_and_mvcc() {
    let db = mvcc_db();
    assert!(db.execute("BEGIN").is_err());
    let legacy = Database::in_memory_mvcc(false);
    legacy.execute("CREATE TABLE t (a int)").unwrap();
    let mut s = legacy.session();
    assert!(s.execute("BEGIN").is_err());
    // DDL inside a transaction is rejected.
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    assert!(s.execute("CREATE TABLE u (a int)").is_err());
    s.execute("ROLLBACK").unwrap();
}

#[test]
fn indexes_and_columnar_consistent_after_txn_commit() {
    let db = mvcc_db();
    db.create_index("acct", "acct_balance", "balance", true).unwrap();
    db.build_columnar("acct", "balance").unwrap();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("INSERT INTO acct VALUES (4, 'dee', 400)").unwrap();
    s.execute("UPDATE acct SET balance = 150 WHERE id = 1").unwrap();
    s.execute("DELETE FROM acct WHERE id = 3").unwrap();
    s.execute("COMMIT").unwrap();
    db.vacuum().unwrap();
    // Index probe and columnar scan agree with the committed state.
    let r = db.execute("SELECT id FROM acct WHERE balance >= 150 ORDER BY id").unwrap();
    let ids: Vec<i64> =
        r.rows.iter().map(|row| if let Datum::Int(v) = row[0] { v } else { -1 }).collect();
    assert_eq!(ids, vec![1, 2, 4]);
    let r = db.execute("SELECT sum(balance) FROM acct").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(150 + 200 + 400));
}

/// The acceptance scenario: while a writer transaction repeatedly moves
/// money between accounts (sum-preserving) and a materialization thread
/// rebuilds a column store, concurrent snapshot readers must always see a
/// consistent total — never a half-applied transfer.
#[test]
fn stress_readers_see_consistent_snapshots_under_write_load() {
    let db = Arc::new(Database::in_memory_mvcc(true));
    db.execute("CREATE TABLE bank (id int, balance int)").unwrap();
    const ACCTS: i64 = 64;
    const TOTAL: i64 = ACCTS * 100;
    for chunk in (0..ACCTS).collect::<Vec<_>>().chunks(16) {
        let values: Vec<String> =
            chunk.iter().map(|i| format!("({i}, 100)")).collect();
        db.execute(&format!("INSERT INTO bank VALUES {}", values.join(", ")))
            .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: transactional transfers; occasionally rolls back.
    let w_db = db.clone();
    let w_stop = stop.clone();
    let writer = thread::spawn(move || {
        let mut rolled_back = 0u64;
        let mut committed = 0u64;
        for round in 0.. {
            if w_stop.load(Ordering::Relaxed) {
                break;
            }
            let a = round % ACCTS;
            let b = (round * 7 + 3) % ACCTS;
            if a == b {
                continue;
            }
            let mut s = w_db.session();
            s.execute("BEGIN").unwrap();
            let r1 =
                s.execute(&format!("UPDATE bank SET balance = balance - 10 WHERE id = {a}"));
            let r2 =
                s.execute(&format!("UPDATE bank SET balance = balance + 10 WHERE id = {b}"));
            if r1.is_err() || r2.is_err() {
                continue; // conflict auto-rolled-back
            }
            if round % 5 == 4 {
                s.execute("ROLLBACK").unwrap();
                rolled_back += 1;
            } else {
                s.execute("COMMIT").unwrap();
                committed += 1;
            }
        }
        (committed, rolled_back)
    });

    // Materializer stand-in: build/drop a column store while writes fly.
    let m_db = db.clone();
    let m_stop = stop.clone();
    let materializer = thread::spawn(move || {
        let mut builds = 0u64;
        while !m_stop.load(Ordering::Relaxed) {
            m_db.build_columnar("bank", "balance").unwrap();
            builds += 1;
            m_db.drop_columnar("bank", "balance").unwrap();
        }
        builds
    });

    // Readers: the invariant is that every snapshot sums to TOTAL.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let r_db = db.clone();
        let r_stop = stop.clone();
        readers.push(thread::spawn(move || {
            let mut scans = 0u64;
            while !r_stop.load(Ordering::Relaxed) {
                let r = r_db.execute("SELECT sum(balance), count(*) FROM bank").unwrap();
                assert_eq!(
                    r.rows[0],
                    vec![Datum::Int(TOTAL), Datum::Int(ACCTS)],
                    "reader observed a torn transaction"
                );
                scans += 1;
            }
            scans
        }));
    }

    thread::sleep(std::time::Duration::from_millis(1500));
    stop.store(true, Ordering::Relaxed);
    let (committed, rolled_back) = writer.join().unwrap();
    let builds = materializer.join().unwrap();
    let scans: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();

    // Engagement guards: the machinery must actually have been exercised —
    // a vacuously green run (no commits, no scans, no retained versions)
    // would prove nothing.
    assert!(committed > 0, "writer never committed");
    assert!(rolled_back > 0, "writer never rolled back");
    assert!(builds > 0, "materializer never rebuilt");
    assert!(scans > 10, "readers barely ran ({scans} scans)");
    let stats = db.exec_stats();
    assert!(stats.txns_begun >= committed + rolled_back);
    assert!(stats.txns_committed >= committed);
    assert!(stats.txns_aborted >= rolled_back);
    assert!(
        stats.versions_created > 0,
        "no versions were ever retained — readers never overlapped writers"
    );
    // Final state must still balance, and vacuum must converge: with no
    // snapshot left alive everything ever retained is reclaimable.
    db.vacuum().unwrap();
    let stats = db.exec_stats();
    assert!(
        stats.versions_vacuumed > 0,
        "versions were created but never reclaimed"
    );
    assert_eq!(stats.live_snapshots, 0, "a snapshot leaked past the run");
    let r = db.execute("SELECT sum(balance) FROM bank").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(TOTAL));

    // The snapshot gauges engage while a transaction holds one open.
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    s.execute("SELECT count(*) FROM bank").unwrap();
    thread::sleep(std::time::Duration::from_millis(20));
    let stats = db.exec_stats();
    assert!(stats.live_snapshots >= 1, "open transaction holds no snapshot");
    assert!(
        stats.oldest_snapshot_age_ms >= 10,
        "snapshot age gauge never advanced ({} ms)",
        stats.oldest_snapshot_age_ms
    );
    s.execute("COMMIT").unwrap();
    assert_eq!(db.exec_stats().live_snapshots, 0);
}
