//! Secondary-index integration tests: access-path selection, maintenance
//! under update/delete/reinsert (including heap-relocating and jumbo
//! tuples), and a property-style equivalence check that uses
//! `SINEW_FORCE_SCAN` as the sequential-scan oracle.
//!
//! Every test that touches `SINEW_FORCE_SCAN` serializes on `ENV_LOCK`:
//! the variable is process-global and the planner reads it per plan.

use rand::{Rng, SeedableRng};
use sinew_rdbms::{Database, Datum};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Lock that survives a panicking test (poisoning is irrelevant here: the
/// guarded state is the env var, restored by `with_force_scan`).
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Set `SINEW_FORCE_SCAN` for the closure, restoring the previous value
/// after (so a CI run that exports it globally keeps its setting).
fn with_force_scan<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("SINEW_FORCE_SCAN").ok();
    std::env::set_var("SINEW_FORCE_SCAN", if on { "1" } else { "0" });
    let out = f();
    match prev {
        Some(v) => std::env::set_var("SINEW_FORCE_SCAN", v),
        None => std::env::remove_var("SINEW_FORCE_SCAN"),
    }
    out
}

fn db_with_events(n: i64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE events (id int, kind int, name text)").unwrap();
    let mut batch = Vec::new();
    for i in 0..n {
        batch.push(format!("({i}, {}, 'name{}')", i % 100, i % 7));
        if batch.len() == 500 {
            db.execute(&format!("INSERT INTO events VALUES {}", batch.join(", "))).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.execute(&format!("INSERT INTO events VALUES {}", batch.join(", "))).unwrap();
    }
    db.execute("ANALYZE events").unwrap();
    db
}

#[test]
fn index_scan_is_chosen_and_matches_full_scan() {
    let _g = env_lock();
    let db = db_with_events(2000);
    db.execute("CREATE INDEX idx_events_kind ON events (kind)").unwrap();

    let sql = "SELECT id, kind, name FROM events WHERE kind = 37";
    let (explain, indexed) = with_force_scan(false, || {
        let e = db.execute(&format!("EXPLAIN {sql}")).unwrap();
        (e.rows.iter().map(|r| r[0].display_text()).collect::<Vec<_>>().join("\n"),
         db.execute(sql).unwrap())
    });
    assert!(explain.contains("Index Scan"), "expected an index scan, got:\n{explain}");
    assert!(explain.contains("Index Cond"), "missing index condition:\n{explain}");

    let scans_before = db.exec_stats().index_scans;
    let forced = with_force_scan(true, || {
        let e = db.execute(&format!("EXPLAIN {sql}")).unwrap();
        let text =
            e.rows.iter().map(|r| r[0].display_text()).collect::<Vec<_>>().join("\n");
        assert!(!text.contains("Index Scan"), "SINEW_FORCE_SCAN ignored:\n{text}");
        db.execute(sql).unwrap()
    });
    assert_eq!(indexed.rows, forced.rows, "index scan diverged from full scan");
    assert_eq!(indexed.rows.len(), 20);
    assert!(db.exec_stats().index_scans > 0);
    // the forced run must not have gone through the index path
    assert_eq!(db.exec_stats().index_scans, scans_before);
}

#[test]
fn range_predicates_use_the_index() {
    let _g = env_lock();
    let db = db_with_events(2000);
    db.execute("CREATE INDEX idx_events_id ON events (id)").unwrap();
    for sql in [
        "SELECT id, name FROM events WHERE id >= 100 AND id < 120",
        "SELECT id, name FROM events WHERE id BETWEEN 5 AND 9",
        "SELECT id FROM events WHERE id > 1990 AND kind = 91",
    ] {
        let (explain, fast) = with_force_scan(false, || {
            let e = db.execute(&format!("EXPLAIN {sql}")).unwrap();
            (e.rows.iter().map(|r| r[0].display_text()).collect::<Vec<_>>().join("\n"),
             db.execute(sql).unwrap())
        });
        assert!(explain.contains("Index Scan"), "{sql} not indexed:\n{explain}");
        let slow = with_force_scan(true, || db.execute(sql).unwrap());
        assert_eq!(fast.rows, slow.rows, "divergence for {sql}");
        assert!(!fast.rows.is_empty());
    }
}

#[test]
fn create_index_ddl_duplicates_and_if_not_exists() {
    let db = db_with_events(50);
    db.execute("CREATE INDEX i1 ON events (kind)").unwrap();
    assert!(db.execute("CREATE INDEX i1 ON events (kind)").is_err());
    db.execute("CREATE INDEX IF NOT EXISTS i1 ON events (kind)").unwrap();
    assert!(db.execute("CREATE INDEX i2 ON events (no_such_col)").is_err());
    assert!(db.execute("CREATE INDEX i3 ON no_such_table (kind)").is_err());
    let infos = db.index_infos("events").unwrap();
    assert_eq!(infos.len(), 1);
    assert_eq!(infos[0].name, "i1");
    assert_eq!(infos[0].column, "kind");
    assert_eq!(infos[0].key_count, 50);
    assert!(infos[0].pages > 0 && infos[0].bytes > 0);
}

#[test]
fn update_in_place_and_relocating_update_maintain_the_index() {
    let _g = env_lock();
    let db = db_with_events(600);
    db.execute("CREATE INDEX idx_events_kind ON events (kind)").unwrap();
    let ops0 = db.exec_stats().index_maintenance_ops;

    // key change, tuple same size: in-place heap update
    db.execute("UPDATE events SET kind = 555 WHERE id = 10").unwrap();
    // key unchanged: no index maintenance needed
    db.execute("UPDATE events SET name = 'renamed' WHERE id = 11").unwrap();
    let ops1 = db.exec_stats().index_maintenance_ops;
    assert_eq!(ops1 - ops0, 2, "one remove + one insert for the key change only");

    // key change plus a payload large enough to relocate the tuple within
    // the heap (rowid stays stable, so only the value change matters)
    let big = "x".repeat(4000);
    db.execute(&format!("UPDATE events SET kind = 556, name = '{big}' WHERE id = 12"))
        .unwrap();

    for (sql, want) in [
        ("SELECT id FROM events WHERE kind = 555", vec![10i64]),
        ("SELECT id FROM events WHERE kind = 556", vec![12i64]),
    ] {
        let fast = with_force_scan(false, || db.execute(sql).unwrap());
        let slow = with_force_scan(true, || db.execute(sql).unwrap());
        assert_eq!(fast.rows, slow.rows);
        let ids: Vec<i64> = fast
            .rows
            .iter()
            .map(|r| match r[0] {
                Datum::Int(i) => i,
                ref d => panic!("unexpected {d:?}"),
            })
            .collect();
        assert_eq!(ids, want, "{sql}");
    }
    // the old keys must be gone from the index
    let old10 = with_force_scan(false, || {
        db.execute("SELECT id FROM events WHERE kind = 10 AND id = 10").unwrap()
    });
    assert!(old10.rows.is_empty());
}

#[test]
fn delete_and_reinsert_keep_index_consistent() {
    let _g = env_lock();
    let db = db_with_events(400);
    db.execute("CREATE INDEX idx_events_kind ON events (kind)").unwrap();
    let keys0 = db.index_infos("events").unwrap()[0].key_count;

    db.execute("DELETE FROM events WHERE kind = 42").unwrap();
    let gone = with_force_scan(false, || {
        db.execute("SELECT id FROM events WHERE kind = 42").unwrap()
    });
    assert!(gone.rows.is_empty());
    assert_eq!(db.index_infos("events").unwrap()[0].key_count, keys0 - 4);

    // reinsert rows with the deleted key: heap slots (and possibly rowids)
    // get reused; index must pick the new rows up via the insert hook
    db.execute("INSERT INTO events VALUES (9001, 42, 'back'), (9002, 42, 'again')")
        .unwrap();
    let back = with_force_scan(false, || {
        db.execute("SELECT id FROM events WHERE kind = 42").unwrap()
    });
    let oracle = with_force_scan(true, || {
        db.execute("SELECT id FROM events WHERE kind = 42").unwrap()
    });
    assert_eq!(back.rows, oracle.rows);
    assert_eq!(back.rows.len(), 2);
    assert_eq!(db.index_infos("events").unwrap()[0].key_count, keys0 - 2);
}

#[test]
fn jumbo_rows_are_indexed_and_fetched() {
    let _g = env_lock();
    let db = Database::in_memory();
    db.execute("CREATE TABLE blobs (id int, tag int, body text)").unwrap();
    // > MAX_INLINE_TUPLE (8 KiB page), forcing the jumbo chain path
    let body = "b".repeat(20_000);
    for i in 0..40 {
        db.execute(&format!("INSERT INTO blobs VALUES ({i}, {}, '{body}')", i % 5)).unwrap();
    }
    db.execute("ANALYZE blobs").unwrap();
    db.execute("CREATE INDEX idx_blobs_tag ON blobs (tag)").unwrap();

    let sql = "SELECT id, tag, body FROM blobs WHERE tag = 3";
    let fast = with_force_scan(false, || db.execute(sql).unwrap());
    let slow = with_force_scan(true, || db.execute(sql).unwrap());
    assert_eq!(fast.rows, slow.rows);
    assert_eq!(fast.rows.len(), 8);
    assert!(fast.rows.iter().all(|r| r[2] == Datum::Text(body.clone())));

    // a jumbo-relocating update of the indexed key
    db.execute("UPDATE blobs SET tag = 99 WHERE id = 3").unwrap();
    let hit = with_force_scan(false, || {
        db.execute("SELECT id FROM blobs WHERE tag = 99").unwrap()
    });
    assert_eq!(hit.rows, vec![vec![Datum::Int(3)]]);
}

#[test]
fn bulk_build_equals_row_at_a_time_build() {
    let db = db_with_events(700);
    db.create_index("events", "bulk_ix", "kind", true).unwrap();
    db.create_index("events", "slow_ix", "name", false).unwrap();
    let infos = db.index_infos("events").unwrap();
    assert_eq!(infos[0].key_count, 700);
    assert_eq!(infos[1].key_count, 700);
    assert!(db.exec_stats().index_build_rows >= 1400);
}

/// Property-style oracle test: a random insert/update/delete workload with
/// interleaved point/range queries; every query must return byte-identical
/// rows in identical order with and without `SINEW_FORCE_SCAN`.
#[test]
fn random_workload_index_equals_scan_oracle() {
    let _g = env_lock();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x51AE_2024);
    let db = Database::in_memory();
    db.execute("CREATE TABLE w (id int, k int, grp int, s text)").unwrap();
    db.execute("CREATE INDEX idx_w_k ON w (k)").unwrap();
    let mut next_id = 0i64;

    for round in 0..10 {
        // mutate: a burst of inserts, then some updates and deletes
        let inserts = rng.gen_range(150..400usize);
        let mut vals = Vec::new();
        for _ in 0..inserts {
            let k = rng.gen_range(0..1000i64);
            let grp = rng.gen_range(0..5i64);
            vals.push(format!("({next_id}, {k}, {grp}, 's{}')", next_id % 13));
            next_id += 1;
        }
        db.execute(&format!("INSERT INTO w VALUES {}", vals.join(", "))).unwrap();
        for _ in 0..rng.gen_range(0..10usize) {
            let id = rng.gen_range(0..next_id);
            let k = rng.gen_range(0..1000i64);
            db.execute(&format!("UPDATE w SET k = {k} WHERE id = {id}")).unwrap();
        }
        for _ in 0..rng.gen_range(0..6usize) {
            let id = rng.gen_range(0..next_id);
            db.execute(&format!("DELETE FROM w WHERE id = {id}")).unwrap();
        }
        db.execute("ANALYZE w").unwrap();

        // verify: point, range, and compound predicates
        let point = rng.gen_range(0..1000i64);
        let lo = rng.gen_range(0..950i64);
        let hi = lo + rng.gen_range(1..20i64);
        for sql in [
            format!("SELECT id, k, grp, s FROM w WHERE k = {point}"),
            format!("SELECT id, k FROM w WHERE k >= {lo} AND k < {hi}"),
            format!("SELECT id FROM w WHERE k BETWEEN {lo} AND {hi} AND grp = 2"),
            format!("SELECT grp, COUNT(*) FROM w WHERE k = {point} GROUP BY grp ORDER BY grp"),
        ] {
            let fast = with_force_scan(false, || db.execute(&sql).unwrap());
            let slow = with_force_scan(true, || db.execute(&sql).unwrap());
            assert_eq!(fast.columns, slow.columns, "round {round}: {sql}");
            assert_eq!(fast.rows, slow.rows, "round {round}: {sql}");
        }
    }
    // the index saw real traffic
    assert!(db.exec_stats().index_scans > 0);
    assert!(db.exec_stats().index_maintenance_ops > 0);
}
