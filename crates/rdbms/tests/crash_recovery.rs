//! Crash-recovery tests for the write-ahead log.
//!
//! The harness runs a deterministic statement workload in a **child
//! process** (this same test binary, re-executed with `--exact
//! crash_child`), kills it mid-flight — either at a precise WAL append
//! via `SINEW_WAL_CRASH_AFTER` fault injection (which half-writes a
//! frame, deterministically producing a torn tail) or with a raw
//! `SIGKILL` at a fuzzed moment — then reopens the database and asserts
//! the recovered state is identical to the state after some *statement
//! prefix* of a differential oracle replaying the identical workload
//! in memory. Heap contents, B-tree probes, and columnar-path
//! aggregates must all land on the same prefix together.

use sinew_rdbms::{ColType, Database, WalConfig};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

// ---- the shared workload ----

enum Stmt {
    Sql(String),
    AddColumn(&'static str, &'static str, ColType),
    BuildColumnar(&'static str, &'static str),
    DropTable(&'static str),
}

/// Multi-row INSERT with an explicit column list, so it stays valid
/// after later ADD COLUMNs.
fn insert_t(start: i64, count: i64) -> Stmt {
    let vals: Vec<String> = (start..start + count)
        .map(|i| format!("({i}, 's-{i}', {}.5)", i / 2))
        .collect();
    Stmt::Sql(format!("INSERT INTO t (a, b, c) VALUES {}", vals.join(", ")))
}

fn insert_u(start: i64, count: i64) -> Stmt {
    let vals: Vec<String> =
        (start..start + count).map(|i| format!("({i}, 'u-{i}')")).collect();
    Stmt::Sql(format!("INSERT INTO u (k, v) VALUES {}", vals.join(", ")))
}

/// One entry = one WAL commit unit. Recovery must land exactly on one of
/// these boundaries, never between.
fn workload() -> Vec<Stmt> {
    use Stmt::*;
    vec![
        Sql("CREATE TABLE t (a int, b text, c float)".into()),
        insert_t(0, 400),
        insert_t(400, 400),
        Sql("CREATE INDEX idx_t_a ON t (a)".into()),
        Sql("UPDATE t SET b = 'upd-one' WHERE a % 7 = 3".into()),
        Sql("DELETE FROM t WHERE a % 11 = 5".into()),
        insert_t(800, 400),
        BuildColumnar("t", "a"),
        Sql("UPDATE t SET c = 2.5 WHERE a % 5 = 0".into()),
        Sql("CREATE TABLE u (k int, v text)".into()),
        insert_u(0, 200),
        AddColumn("t", "d", ColType::Int),
        Sql("UPDATE t SET d = a * 2 WHERE a < 100".into()),
        Sql("DELETE FROM u WHERE k % 2 = 0".into()),
        insert_t(1200, 400),
        DropTable("u"),
        Sql("UPDATE t SET b = 'upd-two' WHERE a % 13 = 1".into()),
        insert_t(1600, 400),
        Sql("DELETE FROM t WHERE a % 17 = 2".into()),
        insert_t(2000, 400),
    ]
}

fn apply(db: &Database, stmt: &Stmt) {
    match stmt {
        Stmt::Sql(sql) => {
            db.execute(sql).unwrap();
        }
        Stmt::AddColumn(t, c, ty) => db.add_column(t, c, *ty).unwrap(),
        Stmt::BuildColumnar(t, c) => db.build_columnar(t, c).unwrap(),
        Stmt::DropTable(t) => db.drop_table(t).unwrap(),
    }
}

/// Logical fingerprint of the whole database: full ordered contents of
/// both tables, an index-probe, a columnar-eligible aggregate, and the
/// index/columnar catalog. Two states with equal fingerprints answer
/// every workload query identically.
fn fingerprint(db: &Database) -> String {
    let mut out = String::new();
    for (table, order) in [("t", "a"), ("u", "k")] {
        match db.execute(&format!("SELECT * FROM {table} ORDER BY {order}")) {
            Ok(r) => {
                out.push_str(&format!("{table}: {:?} rows={:?}\n", r.columns, r.rows));
            }
            Err(_) => out.push_str(&format!("{table}: absent\n")),
        }
    }
    if let Ok(r) = db.execute("SELECT b FROM t WHERE a = 517") {
        out.push_str(&format!("probe: {:?}\n", r.rows));
    }
    if let Ok(r) = db.execute("SELECT COUNT(*), SUM(a) FROM t WHERE a % 3 = 0") {
        out.push_str(&format!("agg: {:?}\n", r.rows));
    }
    if let Ok(infos) = db.index_infos("t") {
        let defs: Vec<(String, String, u64)> =
            infos.into_iter().map(|i| (i.name, i.column, i.key_count)).collect();
        out.push_str(&format!("indexes: {defs:?}\n"));
    }
    if let Ok(infos) = db.columnar_infos("t") {
        let mut cols: Vec<String> = infos.into_iter().map(|i| i.column).collect();
        cols.sort();
        out.push_str(&format!("columnar: {cols:?}\n"));
    }
    out
}

/// Oracle: fingerprints after every statement prefix (index 0 = empty
/// database), from an in-memory replay of the identical workload.
fn oracle_prefixes() -> Vec<String> {
    let db = Database::in_memory();
    let mut out = vec![fingerprint(&db)];
    for stmt in workload() {
        apply(&db, &stmt);
        out.push(fingerprint(&db));
    }
    out
}

fn assert_is_prefix(recovered: &str, prefixes: &[String], ctx: &str) {
    let k = prefixes.iter().position(|p| p == recovered);
    assert!(
        k.is_some(),
        "{ctx}: recovered state matches no statement prefix of the oracle;\n\
         recovered:\n{recovered}\nlast oracle prefix:\n{}",
        prefixes.last().unwrap()
    );
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sinew-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn forced_wal() -> WalConfig {
    // Force the WAL on regardless of the SINEW_WAL env the suite runs
    // under (CI runs the whole suite with SINEW_WAL=0 too).
    WalConfig { enabled: true, ..WalConfig::from_env() }
}

fn reopen(dir: &Path) -> Database {
    Database::open_with_wal(&dir.join("t.db"), 32, None, forced_wal()).unwrap()
}

// ---- child-process entry point ----

/// Not a real test: the re-exec target. A no-op unless the parent set
/// `SINEW_CRASH_DIR`, in which case it runs the workload against that
/// directory until it finishes — or until fault injection / the parent's
/// SIGKILL stops it mid-statement.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("SINEW_CRASH_DIR") else { return };
    let mut cfg = WalConfig::from_env();
    cfg.enabled = true;
    let db =
        Database::open_with_wal(&Path::new(&dir).join("t.db"), 32, None, cfg).unwrap();
    for stmt in workload() {
        apply(&db, &stmt);
    }
}

fn spawn_child(dir: &Path, extra_env: &[(&str, String)]) -> std::process::Child {
    spawn_child_target("crash_child", "SINEW_CRASH_DIR", dir, extra_env)
}

fn spawn_child_target(
    target: &str,
    dir_var: &str,
    dir: &Path,
    extra_env: &[(&str, String)],
) -> std::process::Child {
    let mut cmd = Command::new(std::env::current_exe().unwrap());
    cmd.args([target, "--exact", "--nocapture"])
        .env(dir_var, dir)
        .env_remove("SINEW_WAL")
        .env_remove("SINEW_WAL_CRASH_AFTER")
        .env_remove("SINEW_WAL_GROUP_COMMIT")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    cmd.spawn().unwrap()
}

// ---- the tests ----

#[test]
fn clean_reopen_recovers_full_state() {
    let dir = test_dir("clean");
    {
        let db = reopen(&dir);
        for stmt in workload() {
            apply(&db, &stmt);
        }
        // Dropped without flush or checkpoint: everything must come back
        // from the log alone.
    }
    let db = reopen(&dir);
    assert_eq!(fingerprint(&db), *oracle_prefixes().last().unwrap());
    let snap = db.exec_stats();
    assert_eq!(snap.wal_recoveries, 1);
    assert!(snap.wal_recovered_pages > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_tail_recovery_lands_on_statement_boundary() {
    let prefixes = oracle_prefixes();
    // Fault injection half-writes the n-th appended frame and aborts;
    // the sweep covers the checkpoint frame, early page frames, commit
    // frames, and appends deep into the workload.
    for crash_after in [1u64, 2, 3, 5, 9, 17, 33, 65, 129, 257] {
        let dir = test_dir(&format!("torn-{crash_after}"));
        let status = spawn_child(
            &dir,
            &[("SINEW_WAL_CRASH_AFTER", crash_after.to_string())],
        )
        .wait()
        .unwrap();
        let db = reopen(&dir);
        if status.success() {
            // The sweep ran past the workload's total append count: the
            // child finished cleanly, so recovery must yield it all.
            assert_eq!(
                fingerprint(&db),
                *prefixes.last().unwrap(),
                "crash_after={crash_after}: clean run must recover in full"
            );
        } else {
            assert_is_prefix(
                &fingerprint(&db),
                &prefixes,
                &format!("crash_after={crash_after}"),
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn kill9_fuzz_recovers_to_statement_boundary() {
    let prefixes = oracle_prefixes();
    let iters: u64 = std::env::var("SINEW_CRASH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    for i in 0..iters {
        let dir = test_dir(&format!("kill9-{i}"));
        // Alternate group-commit windows so some runs have committed-but-
        // unsynced statements in flight when the SIGKILL lands.
        let gc = if i % 2 == 0 { "1" } else { "4" };
        let mut child = spawn_child(&dir, &[("SINEW_WAL_GROUP_COMMIT", gc.to_string())]);
        // Deterministic but varied kill points across iterations.
        std::thread::sleep(Duration::from_millis(5 + (i * 37) % 120));
        child.kill().ok(); // SIGKILL: no destructors, no flush
        let _ = child.wait();
        let db = reopen(&dir);
        assert_is_prefix(&fingerprint(&db), &prefixes, &format!("kill9 iter {i} gc={gc}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Accounts in the transactional crash workload (committed setup inserts
/// them all at balance 100 in one statement).
const TXN_ACCTS: i64 = 100;

/// Re-exec target for the mid-transaction kill fuzz: after a committed
/// setup, every round is one explicit transaction — an INSERT of a new
/// account at balance 50 plus ten +5 UPDATEs — so each committed round
/// raises the total balance by exactly 100. A SIGKILL lands somewhere in
/// an open transaction (or inside COMMIT itself).
#[test]
fn crash_child_txn() {
    let Ok(dir) = std::env::var("SINEW_TXN_CRASH_DIR") else { return };
    let mut cfg = WalConfig::from_env();
    cfg.enabled = true;
    let db =
        Database::open_with_wal(&Path::new(&dir).join("t.db"), 32, None, cfg).unwrap();
    db.execute("CREATE TABLE acct (id int, bal int)").unwrap();
    let vals: Vec<String> = (0..TXN_ACCTS).map(|i| format!("({i}, 100)")).collect();
    db.execute(&format!("INSERT INTO acct VALUES {}", vals.join(", "))).unwrap();
    let mut s = db.session();
    for r in 0i64.. {
        s.execute("BEGIN").unwrap();
        s.execute(&format!("INSERT INTO acct VALUES ({}, 50)", 1_000 + r)).unwrap();
        for j in 0..10 {
            let id = (r * 7 + j * 13) % TXN_ACCTS;
            s.execute(&format!("UPDATE acct SET bal = bal + 5 WHERE id = {id}"))
                .unwrap();
        }
        s.execute("COMMIT").unwrap();
    }
}

/// SIGKILL mid-transaction: recovery must land on a committed-transaction
/// boundary, dropping every uncommitted version — a transaction is one WAL
/// commit record, so a partially-applied round can never come back. The
/// balance invariant (total = 10 000 + 100 × committed rounds) breaks if
/// even one uncommitted INSERT or UPDATE survives recovery.
#[test]
fn kill9_mid_transaction_drops_uncommitted_versions() {
    if !Database::in_memory().mvcc_enabled() {
        return; // explicit transactions require MVCC
    }
    let iters: u64 = std::env::var("SINEW_CRASH_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    for i in 0..iters {
        let dir = test_dir(&format!("txnkill-{i}"));
        let gc = if i % 2 == 0 { "1" } else { "4" };
        let mut child = spawn_child_target(
            "crash_child_txn",
            "SINEW_TXN_CRASH_DIR",
            &dir,
            &[("SINEW_WAL_GROUP_COMMIT", gc.to_string())],
        );
        std::thread::sleep(Duration::from_millis(30 + (i * 41) % 150));
        child.kill().ok();
        let _ = child.wait();
        let db = reopen(&dir);
        let ctx = format!("txnkill iter {i} gc={gc}");
        let Ok(base) = db.execute("SELECT COUNT(*) FROM acct WHERE id < 1000") else {
            continue; // killed before CREATE TABLE committed
        };
        let sinew_rdbms::Datum::Int(n_base) = base.rows[0][0] else {
            panic!("{ctx}: COUNT did not return an int")
        };
        if n_base == 0 {
            continue; // killed before the setup INSERT committed
        }
        assert_eq!(n_base, TXN_ACCTS, "{ctx}: setup INSERT is one commit unit");
        let check = |db: &Database, when: &str| {
            let r = db
                .execute("SELECT COUNT(*) FROM acct WHERE id >= 1000")
                .unwrap();
            let sinew_rdbms::Datum::Int(k) = r.rows[0][0] else { panic!() };
            let r = db.execute("SELECT SUM(bal), COUNT(*) FROM acct").unwrap();
            assert_eq!(
                r.rows[0][0],
                sinew_rdbms::Datum::Int(TXN_ACCTS * 100 + 100 * k),
                "{ctx} ({when}): balance total off for {k} committed rounds — \
                 an uncommitted version survived recovery"
            );
            assert_eq!(r.rows[0][1], sinew_rdbms::Datum::Int(TXN_ACCTS + k));
        };
        check(&db, "after recovery");
        // Reclamation over the recovered heap must not disturb visibility.
        db.vacuum().unwrap();
        check(&db, "after vacuum");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn recovery_is_idempotent_across_repeated_reopens() {
    // Reopening without new writes must converge: same contents, and the
    // second reopen recovers from the checkpoint the first one laid down.
    let dir = test_dir("idem");
    {
        let db = reopen(&dir);
        for stmt in workload().into_iter().take(8) {
            apply(&db, &stmt);
        }
    }
    let fp1 = {
        let db = reopen(&dir);
        fingerprint(&db)
    };
    let fp2 = {
        let db = reopen(&dir);
        fingerprint(&db)
    };
    assert_eq!(fp1, fp2);
    std::fs::remove_dir_all(&dir).ok();
}

/// A non-empty data file whose log is missing or invalid must never be
/// truncated on open — that is fully-synced committed data whose log was
/// lost, and wiping it would turn a recoverable situation into silent
/// total data loss. The open must fail loudly and leave the file alone.
#[test]
fn lost_log_next_to_nonempty_data_file_refuses_to_open() {
    let dir = test_dir("lostlog");
    let data = dir.join("t.db");
    let wal = dir.join("t.db.wal");
    {
        let db = reopen(&dir);
        for stmt in workload().into_iter().take(3) {
            apply(&db, &stmt);
        }
        // Checkpoint pushes committed pages into the data file and syncs.
        db.checkpoint().unwrap();
    }
    let data_len = std::fs::metadata(&data).unwrap().len();
    assert!(data_len > 0, "checkpoint must have written pages");
    // Log deleted out from under the data file.
    std::fs::remove_file(&wal).unwrap();
    assert!(Database::open_with_wal(&data, 32, None, forced_wal()).is_err());
    // Log present but holding no valid checkpoint frame.
    std::fs::write(&wal, b"garbage, not a wal").unwrap();
    assert!(Database::open_with_wal(&data, 32, None, forced_wal()).is_err());
    // Both refusals left the data file untouched.
    assert_eq!(std::fs::metadata(&data).unwrap().len(), data_len);
    std::fs::remove_dir_all(&dir).ok();
}

/// Statements are not rolled back: one that errors mid-way leaves its
/// already-applied rows in place. Those partial effects must be durable
/// as that statement's *own* WAL commit unit — never silently folded
/// into the next statement's commit record (possibly for another table).
/// Recovery must reproduce exactly the post-error in-memory state.
#[test]
fn errored_statement_commits_partial_effects_as_own_unit() {
    use sinew_rdbms::Datum;
    let dir = test_dir("stmt-err");
    let live_fp = {
        let db = reopen(&dir);
        db.execute("CREATE TABLE t (a int, b text, c float)").unwrap();
        db.execute("CREATE TABLE u (k int, v text)").unwrap();
        // Row 3 fails coercion (text into an int column) after rows 1–2
        // already hit the heap.
        let bad = vec![
            vec![Datum::Int(1), Datum::Text("x".into()), Datum::Float(0.5)],
            vec![Datum::Int(2), Datum::Text("y".into()), Datum::Float(1.5)],
            vec![Datum::Text("no".into()), Datum::Text("z".into()), Datum::Float(2.5)],
        ];
        assert!(db.insert_rows("t", &bad).is_err());
        // A commit on an unrelated table right after: before the fix the
        // errored statement's page images rode along in this record.
        db.execute("INSERT INTO u (k, v) VALUES (7, 'seven')").unwrap();
        fingerprint(&db)
    };
    let db = reopen(&dir);
    assert_eq!(fingerprint(&db), live_fp);
    let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&sinew_rdbms::Datum::Int(2)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_then_crash_recovers_post_checkpoint_commits() {
    let dir = test_dir("ckpt");
    let stmts = workload();
    {
        let db = reopen(&dir);
        for stmt in stmts.iter().take(10) {
            apply(&db, stmt);
        }
        db.checkpoint().unwrap();
        for stmt in stmts.iter().skip(10) {
            apply(&db, stmt);
        }
    }
    let db = reopen(&dir);
    assert_eq!(fingerprint(&db), *oracle_prefixes().last().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}
