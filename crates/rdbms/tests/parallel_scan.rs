//! Morsel-parallel scan pipeline: the parallel executor must be
//! byte-identical to the serial one for every scan→filter→project prefix,
//! enforce the intermediate-row limit across workers, and turn worker
//! panics into clean errors (no partial results, no poisoned state).

use sinew_rdbms::{Database, Datum, DbError, DbResult, ExecLimits};
use std::sync::Arc;

const ROWS: i64 = 3_000;

/// Deterministic pseudo-random fill (no external RNG): a small LCG keyed
/// by row id, so serial and parallel runs see the same data every time.
fn lcg(seed: i64) -> i64 {
    (seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) >> 33).abs()
}

fn db_with_big_table() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (id int, grp text, v int, f float, s text)").unwrap();
    let mut batch: Vec<String> = Vec::with_capacity(500);
    for i in 0..ROWS {
        let r = lcg(i);
        batch.push(format!("({i}, 'g{}', {}, {}.5, 's{}')", r % 7, r % 1000, r % 50, r % 97));
        if batch.len() == 500 || i == ROWS - 1 {
            db.execute(&format!("INSERT INTO big VALUES {}", batch.join(", "))).unwrap();
            batch.clear();
        }
    }
    db
}

fn with_threads(db: &Database, threads: usize) {
    db.set_exec_limits(ExecLimits { exec_threads: threads, ..ExecLimits::default() });
}

/// Query shapes covering every pipeline prefix: bare scan, scan+filter,
/// scan+project, scan+filter+project, plus ordered and aggregated forms
/// that consume the parallel prefix underneath.
const QUERIES: &[&str] = &[
    "SELECT * FROM big",
    "SELECT * FROM big WHERE v > 500",
    "SELECT id, v + 1, s FROM big",
    "SELECT id, grp, v * 2 FROM big WHERE v % 3 = 0 AND grp <> 'g5'",
    "SELECT id FROM big WHERE f > 20.0 ORDER BY id DESC",
    "SELECT grp, COUNT(*), SUM(v) FROM big GROUP BY grp ORDER BY grp",
    "SELECT s FROM big WHERE s LIKE 's1%' ORDER BY id LIMIT 37",
];

#[test]
fn parallel_scan_output_identical_to_serial() {
    let db = db_with_big_table();
    for sql in QUERIES {
        with_threads(&db, 1);
        let serial = db.execute(sql).unwrap();
        for threads in [2, 4, 8] {
            with_threads(&db, threads);
            let parallel = db.execute(sql).unwrap();
            assert_eq!(serial.columns, parallel.columns, "{sql} ({threads} threads)");
            assert_eq!(serial.rows, parallel.rows, "{sql} ({threads} threads)");
        }
    }
    // The big unfiltered scans above must actually have used the pool.
    assert!(db.exec_stats().parallel_scans > 0, "parallel path never engaged");
    assert!(db.exec_stats().morsels_dispatched > 0);
}

#[test]
fn parallel_scan_respects_deletes_and_updates() {
    let db = db_with_big_table();
    db.execute("DELETE FROM big WHERE v % 11 = 0").unwrap();
    db.execute("UPDATE big SET v = v + 1000000 WHERE v % 13 = 0").unwrap();
    with_threads(&db, 1);
    let serial = db.execute("SELECT id, v FROM big WHERE v >= 0").unwrap();
    with_threads(&db, 4);
    let parallel = db.execute("SELECT id, v FROM big WHERE v >= 0").unwrap();
    assert_eq!(serial.rows, parallel.rows);
}

#[test]
fn intermediate_row_limit_enforced_across_workers() {
    let db = db_with_big_table();
    db.set_exec_limits(ExecLimits { max_intermediate_rows: 100, exec_threads: 4, ..ExecLimits::default() });
    let err = db.execute("SELECT * FROM big").unwrap_err();
    assert!(
        matches!(err, DbError::ResourceExhausted(_)),
        "expected ResourceExhausted, got {err:?}"
    );
    // The governor must not leave the database unusable afterwards.
    db.set_exec_limits(ExecLimits { exec_threads: 4, ..ExecLimits::default() });
    let r = db.execute("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(ROWS));
}

#[test]
fn worker_panic_surfaces_as_clean_error() {
    let db = db_with_big_table();
    db.register_udf_pure(
        "boom",
        Arc::new(|args: &[Datum]| -> DbResult<Datum> {
            if let [Datum::Int(n)] = args {
                if *n == 2_500 {
                    panic!("synthetic evaluator bug");
                }
                return Ok(Datum::Int(*n));
            }
            Ok(Datum::Null)
        }),
    );
    with_threads(&db, 4);
    let err = db.execute("SELECT boom(id) FROM big").unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("panicked"), "unexpected error: {msg}");
    // No poisoned locks, no stuck workers: ordinary queries still run and
    // still agree with the serial path.
    let parallel = db.execute("SELECT id, v FROM big WHERE v > 500").unwrap();
    with_threads(&db, 1);
    let serial = db.execute("SELECT id, v FROM big WHERE v > 500").unwrap();
    assert_eq!(serial.rows, parallel.rows);
}

#[test]
fn single_thread_forces_serial_path() {
    let db = db_with_big_table();
    with_threads(&db, 1);
    let before = db.exec_stats().parallel_scans;
    db.execute("SELECT * FROM big WHERE v > 10").unwrap();
    let after = db.exec_stats();
    assert_eq!(after.parallel_scans, before, "threads=1 must stay serial");
    assert!(after.serial_scans > 0);
}
