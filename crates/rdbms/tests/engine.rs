//! End-to-end tests for the embedded engine: DDL, DML, queries, joins,
//! aggregation, EXPLAIN, ANALYZE, and the stat/plan interactions the Sinew
//! paper's Table 2 depends on.

use sinew_rdbms::{ColType, Database, Datum, DbError, PlannerConfig};
use std::sync::Arc;

fn db_with_people() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE people (id int, name text, age int, city text)").unwrap();
    db.execute(
        "INSERT INTO people VALUES \
         (1, 'ann', 30, 'oslo'), (2, 'bob', 25, 'oslo'), (3, 'cal', 35, 'lima'), \
         (4, 'dee', 25, 'lima'), (5, 'eli', 40, 'oslo')",
    )
    .unwrap();
    db
}

#[test]
fn select_projection_and_filter() {
    let db = db_with_people();
    let r = db.execute("SELECT name FROM people WHERE age > 28 ORDER BY name").unwrap();
    assert_eq!(r.columns, vec!["name"]);
    let names: Vec<String> =
        r.rows.iter().map(|row| row[0].display_text()).collect();
    assert_eq!(names, vec!["ann", "cal", "eli"]);
}

#[test]
fn select_star_expands_columns() {
    let db = db_with_people();
    let r = db.execute("SELECT * FROM people WHERE id = 3").unwrap();
    assert_eq!(r.columns, vec!["id", "name", "age", "city"]);
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1], Datum::Text("cal".into()));
}

#[test]
fn expressions_in_projection() {
    let db = db_with_people();
    let r = db
        .execute("SELECT id * 10 + 1, upper(name) AS big FROM people WHERE id = 2")
        .unwrap();
    assert_eq!(r.columns[1], "big");
    assert_eq!(r.rows[0], vec![Datum::Int(21), Datum::Text("BOB".into())]);
}

#[test]
fn group_by_and_aggregates() {
    let db = db_with_people();
    let r = db
        .execute(
            "SELECT city, COUNT(*), SUM(age), AVG(age), MIN(name), MAX(age) \
             FROM people GROUP BY city ORDER BY city",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // lima: cal(35), dee(25)
    assert_eq!(r.rows[0][0], Datum::Text("lima".into()));
    assert_eq!(r.rows[0][1], Datum::Int(2));
    assert_eq!(r.rows[0][2], Datum::Int(60));
    assert_eq!(r.rows[0][3], Datum::Float(30.0));
    assert_eq!(r.rows[0][4], Datum::Text("cal".into()));
    assert_eq!(r.rows[0][5], Datum::Int(35));
    // oslo: ann(30), bob(25), eli(40)
    assert_eq!(r.rows[1][1], Datum::Int(3));
    assert_eq!(r.rows[1][2], Datum::Int(95));
}

#[test]
fn scalar_aggregate_and_empty_input() {
    let db = db_with_people();
    let r = db.execute("SELECT COUNT(*), SUM(age) FROM people WHERE age > 100").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(0), Datum::Null]]);
}

#[test]
fn having_filters_groups() {
    let db = db_with_people();
    let r = db
        .execute("SELECT city FROM people GROUP BY city HAVING COUNT(*) > 2")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("oslo".into())]]);
}

#[test]
fn distinct_and_limit() {
    let db = db_with_people();
    let r = db.execute("SELECT DISTINCT city FROM people ORDER BY city").unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = db.execute("SELECT id FROM people ORDER BY id DESC LIMIT 2").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(5)], vec![Datum::Int(4)]]);
}

#[test]
fn count_distinct() {
    let db = db_with_people();
    let r = db.execute("SELECT COUNT(DISTINCT city) FROM people").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(2)));
    let r = db.execute("SELECT COUNT(DISTINCT age) FROM people").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(4)));
}

#[test]
fn implicit_join_two_tables() {
    let db = db_with_people();
    db.execute("CREATE TABLE cities (cname text, country text)").unwrap();
    db.execute("INSERT INTO cities VALUES ('oslo', 'norway'), ('lima', 'peru')").unwrap();
    let r = db
        .execute(
            "SELECT p.name, c.country FROM people p, cities c \
             WHERE p.city = c.cname AND p.age = 35",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("cal".into()), Datum::Text("peru".into())]]);
}

#[test]
fn explicit_join_syntax() {
    let db = db_with_people();
    db.execute("CREATE TABLE cities (cname text, country text)").unwrap();
    db.execute("INSERT INTO cities VALUES ('oslo', 'norway')").unwrap();
    let r = db
        .execute(
            "SELECT COUNT(*) FROM people JOIN cities ON people.city = cities.cname",
        )
        .unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(3)));
}

#[test]
fn left_join_preserves_unmatched() {
    let db = db_with_people();
    db.execute("CREATE TABLE cities (cname text, country text)").unwrap();
    db.execute("INSERT INTO cities VALUES ('oslo', 'norway')").unwrap();
    let r = db
        .execute(
            "SELECT name, country FROM people LEFT JOIN cities ON people.city = cities.cname \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    let cal = r.rows.iter().find(|row| row[0] == Datum::Text("cal".into())).unwrap();
    assert_eq!(cal[1], Datum::Null);
}

#[test]
fn self_join() {
    let db = db_with_people();
    // pairs with same age
    let r = db
        .execute(
            "SELECT p1.name, p2.name FROM people p1, people p2 \
             WHERE p1.age = p2.age AND p1.id < p2.id",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("bob".into()), Datum::Text("dee".into())]]);
}

#[test]
fn three_way_join() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE a (x int)").unwrap();
    db.execute("CREATE TABLE b (x int, y int)").unwrap();
    db.execute("CREATE TABLE c (y int)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
    db.execute("INSERT INTO b VALUES (1, 10), (2, 20), (9, 90)").unwrap();
    db.execute("INSERT INTO c VALUES (10), (20), (99)").unwrap();
    let r = db
        .execute("SELECT a.x, c.y FROM a, b, c WHERE a.x = b.x AND b.y = c.y ORDER BY a.x")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Datum::Int(1), Datum::Int(10)], vec![Datum::Int(2), Datum::Int(20)]]
    );
}

#[test]
fn update_and_delete() {
    let db = db_with_people();
    let r = db.execute("UPDATE people SET age = age + 1 WHERE city = 'oslo'").unwrap();
    assert_eq!(r.affected, 3);
    let r = db.execute("SELECT SUM(age) FROM people").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(158))); // 155 + 3
    let r = db.execute("DELETE FROM people WHERE age > 40").unwrap();
    assert_eq!(r.affected, 1); // eli now 41
    assert_eq!(db.row_count("people").unwrap(), 4);
}

#[test]
fn update_is_visible_to_subsequent_queries() {
    let db = db_with_people();
    db.execute("UPDATE people SET name = 'ANN' WHERE id = 1").unwrap();
    let r = db.execute("SELECT name FROM people WHERE id = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Text("ANN".into())));
}

#[test]
fn is_null_and_coalesce() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a int, b text)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)").unwrap();
    let r = db.execute("SELECT a FROM t WHERE b IS NULL").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(2)]]);
    let r = db.execute("SELECT COALESCE(b, 'fallback') FROM t WHERE a = 2").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Text("fallback".into())));
}

#[test]
fn between_in_like_predicates() {
    let db = db_with_people();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM people WHERE age BETWEEN 25 AND 30").unwrap().scalar(),
        Some(&Datum::Int(3))
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM people WHERE city IN ('lima')").unwrap().scalar(),
        Some(&Datum::Int(2))
    );
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM people WHERE name LIKE '%e%'").unwrap().scalar(),
        Some(&Datum::Int(2)) // dee, eli
    );
}

#[test]
fn multi_typed_dynamic_column_via_udf() {
    // A UDF returning heterogeneous types: comparisons silently skip
    // mismatches (Sinew's typed-extraction semantics).
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a int)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.register_udf(
        "dyn_val",
        Arc::new(|args: &[Datum]| {
            Ok(match args[0] {
                Datum::Int(1) => Datum::Int(100),
                Datum::Int(2) => Datum::Text("hundred".into()),
                _ => Datum::Null,
            })
        }),
    );
    let r = db.execute("SELECT a FROM t WHERE dyn_val(a) = 100").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(1)]]);
}

#[test]
fn explain_shows_plan_shape() {
    let db = db_with_people();
    let r = db.execute("EXPLAIN SELECT DISTINCT city FROM people").unwrap();
    let text: String =
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("Seq Scan on people"), "plan was: {text}");
    assert!(text.contains("HashAggregate"), "plan was: {text}");
}

/// The Table 2 mechanism: without statistics the planner uses default
/// estimates (hash everything); with ANALYZE showing high cardinality and a
/// small work_mem, DISTINCT switches to Sort + Unique and GROUP BY to
/// GroupAggregate.
#[test]
fn stats_change_plan_shapes() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (k int, v int)").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..20_000).map(|i| vec![Datum::Int(i), Datum::Int(i % 7)]).collect();
    db.insert_rows("big", &rows).unwrap();

    // small work_mem so 20k distinct ints overflow
    let config = PlannerConfig { work_mem: 64 * 1024, ..Default::default() };
    db.set_planner_config(config);

    // No stats: default 200-distinct estimate → hashed
    let r = db.execute("EXPLAIN SELECT DISTINCT k FROM big").unwrap();
    let no_stats: String =
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(no_stats.contains("HashAggregate"), "{no_stats}");
    assert!(!no_stats.contains("Unique"), "{no_stats}");

    // With stats: 20k distinct → memory blown → Sort + Unique
    db.execute("ANALYZE big").unwrap();
    let r = db.execute("EXPLAIN SELECT DISTINCT k FROM big").unwrap();
    let with_stats: String =
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(with_stats.contains("Unique"), "{with_stats}");
    assert!(with_stats.contains("Sort"), "{with_stats}");

    // GROUP BY equally switches
    let r = db.execute("EXPLAIN SELECT SUM(v) FROM big GROUP BY k").unwrap();
    let gb: String =
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(gb.contains("GroupAggregate"), "{gb}");

    // Results identical either way
    let r = db.execute("SELECT COUNT(*) FROM (SELECT 1) x").unwrap_err();
    let _ = r; // subqueries unsupported; just checking it errors cleanly
    let r1 = db.execute("SELECT DISTINCT v FROM big ORDER BY v").unwrap();
    assert_eq!(r1.rows.len(), 7);
}

#[test]
fn order_by_hidden_column() {
    let db = db_with_people();
    // ORDER BY a column not in the select list
    let r = db.execute("SELECT name FROM people ORDER BY age DESC, name LIMIT 2").unwrap();
    assert_eq!(r.columns, vec!["name"]);
    assert_eq!(r.rows, vec![vec![Datum::Text("eli".into())], vec![Datum::Text("cal".into())]]);
}

#[test]
fn alias_in_order_by() {
    let db = db_with_people();
    let r = db
        .execute("SELECT age * 2 AS dage FROM people ORDER BY dage LIMIT 1")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Int(50)]]);
}

#[test]
fn schema_evolution_add_column() {
    let db = db_with_people();
    db.add_column("people", "email", ColType::Text).unwrap();
    let r = db.execute("SELECT email FROM people WHERE id = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Null));
    db.execute("UPDATE people SET email = 'ann@x.io' WHERE id = 1").unwrap();
    let r = db.execute("SELECT name FROM people WHERE email IS NOT NULL").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Text("ann".into())]]);
}

#[test]
fn drop_column_frees_name() {
    let db = db_with_people();
    db.drop_column("people", "city").unwrap();
    assert!(matches!(
        db.execute("SELECT city FROM people"),
        Err(DbError::NotFound(_))
    ));
    let r = db.execute("SELECT * FROM people WHERE id = 1").unwrap();
    assert_eq!(r.columns, vec!["id", "name", "age"]);
    // old data gone even after re-adding the name
    db.add_column("people", "city", ColType::Text).unwrap();
    let r = db.execute("SELECT city FROM people WHERE id = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Null));
}

#[test]
fn errors_are_reported() {
    let db = db_with_people();
    assert!(matches!(db.execute("SELECT nope FROM people"), Err(DbError::NotFound(_))));
    assert!(matches!(db.execute("SELECT * FROM missing"), Err(DbError::NotFound(_))));
    assert!(matches!(db.execute("SELECT broken syntax !!"), Err(DbError::Parse(_))));
    assert!(matches!(db.execute("SELECT unknown_fn(id) FROM people"), Err(DbError::NotFound(_))));
}

#[test]
fn cast_error_aborts_query() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (s text)").unwrap();
    db.execute("INSERT INTO t VALUES ('5'), ('twenty')").unwrap();
    let err = db.execute("SELECT CAST(s AS int) FROM t").unwrap_err();
    assert!(matches!(err, DbError::CastError { .. }));
}

#[test]
fn file_backed_database_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sinew-db-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = Database::open(&dir.join("t.db"), 16, None).unwrap();
    db.execute("CREATE TABLE t (a int, b text)").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..10_000).map(|i| vec![Datum::Int(i), Datum::Text(format!("val-{i}"))]).collect();
    db.insert_rows("t", &rows).unwrap();
    // more data than pool: forces evictions and re-reads
    let r = db.execute("SELECT COUNT(*) FROM t WHERE a % 100 = 0").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(100)));
    assert!(db.io_stats().disk_reads > 0 || db.io_stats().disk_writes > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rowid_pseudo_column_is_hidden_but_queryable() {
    let db = db_with_people();
    let r = db.execute("SELECT * FROM people WHERE id = 1").unwrap();
    assert!(!r.columns.contains(&"_rowid".to_string()));
    let r = db.execute("SELECT _rowid FROM people WHERE id = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(0)));
}

#[test]
fn insert_with_column_list() {
    let db = db_with_people();
    db.execute("INSERT INTO people (id, name) VALUES (9, 'zoe')").unwrap();
    let r = db.execute("SELECT age, city FROM people WHERE id = 9").unwrap();
    assert_eq!(r.rows, vec![vec![Datum::Null, Datum::Null]]);
}

#[test]
fn merge_join_chosen_for_large_inputs() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE l (k int)").unwrap();
    db.execute("CREATE TABLE r (k int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..30_000).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("l", &rows).unwrap();
    db.insert_rows("r", &rows).unwrap();
    db.execute("ANALYZE l").unwrap();
    db.execute("ANALYZE r").unwrap();
    // hash table cannot fit
    let config = PlannerConfig { work_mem: 32 * 1024, ..Default::default() };
    db.set_planner_config(config);
    let r = db.execute("EXPLAIN SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap();
    let text: String =
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("Merge Join"), "{text}");
    let r = db.execute("SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(30_000)));
}
