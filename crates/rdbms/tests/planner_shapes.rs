//! Planner behaviour tests: operator and join-order choices must react to
//! statistics the way the Sinew paper's Table 2 depends on.

use sinew_rdbms::{Database, Datum, PlannerConfig};

fn explain(db: &Database, sql: &str) -> String {
    let r = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n")
}

fn small_work_mem(db: &Database) {
    let pc = PlannerConfig { work_mem: 32 * 1024, ..Default::default() };
    db.set_planner_config(pc);
}

#[test]
fn selective_filter_moves_table_first_in_join_order() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (k int, v int)").unwrap();
    db.execute("CREATE TABLE small (k int, tag text)").unwrap();
    let big: Vec<Vec<Datum>> =
        (0..20_000).map(|i| vec![Datum::Int(i % 500), Datum::Int(i)]).collect();
    db.insert_rows("big", &big).unwrap();
    let small: Vec<Vec<Datum>> = (0..500)
        .map(|i| vec![Datum::Int(i), Datum::Text(if i == 7 { "rare" } else { "common" }.into())])
        .collect();
    db.insert_rows("small", &small).unwrap();
    db.execute("ANALYZE big").unwrap();
    db.execute("ANALYZE small").unwrap();

    // With stats, the planner knows tag='rare' selects ~1 row: the filtered
    // `small` should be the build side / early relation.
    let plan = explain(
        &db,
        "SELECT COUNT(*) FROM big, small WHERE big.k = small.k AND small.tag = 'rare'",
    );
    // row estimate for the filtered scan of small must be tiny
    let small_scan_line = plan
        .lines()
        .find(|l| l.contains("Seq Scan on small"))
        .unwrap_or_else(|| panic!("{plan}"));
    let est: u64 = small_scan_line
        .split("rows=")
        .nth(1)
        .and_then(|s| s.trim_end_matches(')').parse().ok())
        .unwrap();
    assert!(est <= 20, "filtered small should estimate few rows: {plan}");
    // and the query is correct
    let r = db
        .execute("SELECT COUNT(*) FROM big, small WHERE big.k = small.k AND small.tag = 'rare'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(40)));
}

#[test]
fn join_order_changes_with_vs_without_stats() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE a (x int, f text)").unwrap();
    db.execute("CREATE TABLE b (x int, y int)").unwrap();
    db.execute("CREATE TABLE c (y int)").unwrap();
    let rows_a: Vec<Vec<Datum>> = (0..10_000)
        .map(|i| {
            vec![
                Datum::Int(i),
                Datum::Text(if i % 1000 == 0 { "hot" } else { "cold" }.into()),
            ]
        })
        .collect();
    db.insert_rows("a", &rows_a).unwrap();
    let rows_b: Vec<Vec<Datum>> =
        (0..10_000).map(|i| vec![Datum::Int(i), Datum::Int(i % 100)]).collect();
    db.insert_rows("b", &rows_b).unwrap();
    let rows_c: Vec<Vec<Datum>> = (0..100).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("c", &rows_c).unwrap();

    let sql = "SELECT COUNT(*) FROM a, b, c \
               WHERE a.x = b.x AND b.y = c.y AND a.f = 'hot'";
    let before = explain(&db, sql);
    db.execute("ANALYZE a").unwrap();
    db.execute("ANALYZE b").unwrap();
    db.execute("ANALYZE c").unwrap();
    let after = explain(&db, sql);
    // the estimates must differ drastically; with stats 'hot' ≈ 0.1%,
    // without stats the default equality guess applies
    assert_ne!(before, after, "stats should change the plan or estimates");
    let r = db.execute(sql).unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(10)));
}

#[test]
fn hash_join_when_build_fits_merge_when_not() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE l (k int)").unwrap();
    db.execute("CREATE TABLE r (k int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..20_000).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("l", &rows).unwrap();
    db.insert_rows("r", &rows).unwrap();
    db.execute("ANALYZE l").unwrap();
    db.execute("ANALYZE r").unwrap();

    // generous work_mem: hash join
    let plan = explain(&db, "SELECT COUNT(*) FROM l, r WHERE l.k = r.k");
    assert!(plan.contains("Hash Join"), "{plan}");

    // starved work_mem: merge join with explicit sorts
    small_work_mem(&db);
    let plan = explain(&db, "SELECT COUNT(*) FROM l, r WHERE l.k = r.k");
    assert!(plan.contains("Merge Join"), "{plan}");
    assert!(plan.contains("Sort"), "{plan}");
    // both produce the same result
    let r = db.execute("SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(20_000)));
}

#[test]
fn distinct_operator_tracks_cardinality_estimates() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (lowcard int, highcard int)").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..30_000).map(|i| vec![Datum::Int(i % 5), Datum::Int(i)]).collect();
    db.insert_rows("t", &rows).unwrap();
    db.execute("ANALYZE t").unwrap();
    small_work_mem(&db);

    // 5 distinct values: hash fits easily
    let plan = explain(&db, "SELECT DISTINCT lowcard FROM t");
    assert!(plan.contains("HashAggregate"), "{plan}");
    // 30k distinct values: blow work_mem → Sort + Unique
    let plan = explain(&db, "SELECT DISTINCT highcard FROM t");
    assert!(plan.contains("Unique"), "{plan}");
    // correctness of both paths
    assert_eq!(db.execute("SELECT DISTINCT lowcard FROM t").unwrap().rows.len(), 5);
    assert_eq!(db.execute("SELECT DISTINCT highcard FROM t").unwrap().rows.len(), 30_000);
}

#[test]
fn projection_pushdown_skips_unreferenced_columns() {
    // A fat unreferenced column must not slow a narrow scan: verified by
    // checking the narrow query runs substantially faster.
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a int, fat text)").unwrap();
    // 4 KiB of fat per row: decode cost has to dominate the per-row
    // executor overhead (large in debug builds) for the ratio to be a
    // meaningful pushdown signal rather than a scheduler-noise coin flip.
    let rows: Vec<Vec<Datum>> = (0..10_000)
        .map(|i| vec![Datum::Int(i), Datum::Text("z".repeat(4_000))])
        .collect();
    db.insert_rows("t", &rows).unwrap();
    // Best-of-5 single runs: the minimum is robust to scheduler noise on
    // busy CI hosts, where a summed-run comparison flakes.
    let timed = |sql: &str| {
        (0..5)
            .map(|_| {
                let start = std::time::Instant::now();
                db.execute(sql).unwrap();
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let narrow = timed("SELECT COUNT(*) FROM t WHERE a >= 0");
    let wide = timed("SELECT COUNT(*) FROM t WHERE length(fat) > 0");
    // In debug builds per-row overhead dominates, so the gap is modest;
    // the guard only needs to catch a pushdown regression (equal times).
    assert!(
        narrow.as_secs_f64() < wide.as_secs_f64() * 0.8,
        "narrow {narrow:?} should be faster than wide {wide:?}"
    );
}

#[test]
fn explain_estimates_vs_reality_for_opaque_udfs() {
    // UDF predicates get the fixed default row estimate regardless of the
    // data (the Sinew paper's central planner observation).
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (v int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..10_000).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("t", &rows).unwrap();
    db.execute("ANALYZE t").unwrap();
    db.register_udf(
        "identity",
        std::sync::Arc::new(|args: &[Datum]| Ok(args[0].clone())),
    );
    let plan = explain(&db, "SELECT COUNT(*) FROM t WHERE identity(v) = 5");
    assert!(plan.contains("rows=200"), "default 200-row estimate: {plan}");
    let plan = explain(&db, "SELECT COUNT(*) FROM t WHERE v = 5");
    assert!(plan.contains("rows=1)") || plan.contains("rows=1 "), "stats estimate ~1: {plan}");
}
