//! Planner behaviour tests: operator and join-order choices must react to
//! statistics the way the Sinew paper's Table 2 depends on.

use sinew_rdbms::{Database, Datum, PlannerConfig};

fn explain(db: &Database, sql: &str) -> String {
    let r = db.execute(&format!("EXPLAIN {sql}")).unwrap();
    r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n")
}

fn small_work_mem(db: &Database) {
    let pc = PlannerConfig { work_mem: 32 * 1024, ..Default::default() };
    db.set_planner_config(pc);
}

#[test]
fn selective_filter_moves_table_first_in_join_order() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (k int, v int)").unwrap();
    db.execute("CREATE TABLE small (k int, tag text)").unwrap();
    let big: Vec<Vec<Datum>> =
        (0..20_000).map(|i| vec![Datum::Int(i % 500), Datum::Int(i)]).collect();
    db.insert_rows("big", &big).unwrap();
    let small: Vec<Vec<Datum>> = (0..500)
        .map(|i| vec![Datum::Int(i), Datum::Text(if i == 7 { "rare" } else { "common" }.into())])
        .collect();
    db.insert_rows("small", &small).unwrap();
    db.execute("ANALYZE big").unwrap();
    db.execute("ANALYZE small").unwrap();

    // With stats, the planner knows tag='rare' selects ~1 row: the filtered
    // `small` should be the build side / early relation.
    let plan = explain(
        &db,
        "SELECT COUNT(*) FROM big, small WHERE big.k = small.k AND small.tag = 'rare'",
    );
    // row estimate for the filtered scan of small must be tiny
    let small_scan_line = plan
        .lines()
        .find(|l| l.contains("Seq Scan on small"))
        .unwrap_or_else(|| panic!("{plan}"));
    let est: u64 = small_scan_line
        .split("rows=")
        .nth(1)
        .and_then(|s| s.trim_end_matches(')').parse().ok())
        .unwrap();
    assert!(est <= 20, "filtered small should estimate few rows: {plan}");
    // and the query is correct
    let r = db
        .execute("SELECT COUNT(*) FROM big, small WHERE big.k = small.k AND small.tag = 'rare'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(40)));
}

#[test]
fn join_order_changes_with_vs_without_stats() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE a (x int, f text)").unwrap();
    db.execute("CREATE TABLE b (x int, y int)").unwrap();
    db.execute("CREATE TABLE c (y int)").unwrap();
    let rows_a: Vec<Vec<Datum>> = (0..10_000)
        .map(|i| {
            vec![
                Datum::Int(i),
                Datum::Text(if i % 1000 == 0 { "hot" } else { "cold" }.into()),
            ]
        })
        .collect();
    db.insert_rows("a", &rows_a).unwrap();
    let rows_b: Vec<Vec<Datum>> =
        (0..10_000).map(|i| vec![Datum::Int(i), Datum::Int(i % 100)]).collect();
    db.insert_rows("b", &rows_b).unwrap();
    let rows_c: Vec<Vec<Datum>> = (0..100).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("c", &rows_c).unwrap();

    let sql = "SELECT COUNT(*) FROM a, b, c \
               WHERE a.x = b.x AND b.y = c.y AND a.f = 'hot'";
    let before = explain(&db, sql);
    db.execute("ANALYZE a").unwrap();
    db.execute("ANALYZE b").unwrap();
    db.execute("ANALYZE c").unwrap();
    let after = explain(&db, sql);
    // the estimates must differ drastically; with stats 'hot' ≈ 0.1%,
    // without stats the default equality guess applies
    assert_ne!(before, after, "stats should change the plan or estimates");
    let r = db.execute(sql).unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(10)));
}

#[test]
fn hash_join_when_build_fits_merge_when_not() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE l (k int)").unwrap();
    db.execute("CREATE TABLE r (k int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..20_000).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("l", &rows).unwrap();
    db.insert_rows("r", &rows).unwrap();
    db.execute("ANALYZE l").unwrap();
    db.execute("ANALYZE r").unwrap();

    // generous work_mem: hash join
    let plan = explain(&db, "SELECT COUNT(*) FROM l, r WHERE l.k = r.k");
    assert!(plan.contains("Hash Join"), "{plan}");

    // starved work_mem: merge join with explicit sorts
    small_work_mem(&db);
    let plan = explain(&db, "SELECT COUNT(*) FROM l, r WHERE l.k = r.k");
    assert!(plan.contains("Merge Join"), "{plan}");
    assert!(plan.contains("Sort"), "{plan}");
    // both produce the same result
    let r = db.execute("SELECT COUNT(*) FROM l, r WHERE l.k = r.k").unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(20_000)));
}

#[test]
fn distinct_operator_tracks_cardinality_estimates() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (lowcard int, highcard int)").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..30_000).map(|i| vec![Datum::Int(i % 5), Datum::Int(i)]).collect();
    db.insert_rows("t", &rows).unwrap();
    db.execute("ANALYZE t").unwrap();
    small_work_mem(&db);

    // 5 distinct values: hash fits easily
    let plan = explain(&db, "SELECT DISTINCT lowcard FROM t");
    assert!(plan.contains("HashAggregate"), "{plan}");
    // 30k distinct values: blow work_mem → Sort + Unique
    let plan = explain(&db, "SELECT DISTINCT highcard FROM t");
    assert!(plan.contains("Unique"), "{plan}");
    // correctness of both paths
    assert_eq!(db.execute("SELECT DISTINCT lowcard FROM t").unwrap().rows.len(), 5);
    assert_eq!(db.execute("SELECT DISTINCT highcard FROM t").unwrap().rows.len(), 30_000);
}

#[test]
fn projection_pushdown_skips_unreferenced_columns() {
    // A fat unreferenced column must not slow a narrow scan: verified by
    // checking the narrow query runs substantially faster.
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a int, fat text)").unwrap();
    // 4 KiB of fat per row: decode cost has to dominate the per-row
    // executor overhead (large in debug builds) for the ratio to be a
    // meaningful pushdown signal rather than a scheduler-noise coin flip.
    let rows: Vec<Vec<Datum>> = (0..10_000)
        .map(|i| vec![Datum::Int(i), Datum::Text("z".repeat(4_000))])
        .collect();
    db.insert_rows("t", &rows).unwrap();
    // Best-of-5 single runs: the minimum is robust to scheduler noise on
    // busy CI hosts, where a summed-run comparison flakes.
    let timed = |sql: &str| {
        (0..5)
            .map(|_| {
                let start = std::time::Instant::now();
                db.execute(sql).unwrap();
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let narrow = timed("SELECT COUNT(*) FROM t WHERE a >= 0");
    let wide = timed("SELECT COUNT(*) FROM t WHERE length(fat) > 0");
    // In debug builds per-row overhead dominates, so the gap is modest;
    // the guard only needs to catch a pushdown regression (equal times).
    assert!(
        narrow.as_secs_f64() < wide.as_secs_f64() * 0.8,
        "narrow {narrow:?} should be faster than wide {wide:?}"
    );
}

#[test]
fn explain_estimates_vs_reality_for_opaque_udfs() {
    // UDF predicates get the fixed default row estimate regardless of the
    // data (the Sinew paper's central planner observation).
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (v int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..10_000).map(|i| vec![Datum::Int(i)]).collect();
    db.insert_rows("t", &rows).unwrap();
    db.execute("ANALYZE t").unwrap();
    db.register_udf(
        "identity",
        std::sync::Arc::new(|args: &[Datum]| Ok(args[0].clone())),
    );
    let plan = explain(&db, "SELECT COUNT(*) FROM t WHERE identity(v) = 5");
    assert!(plan.contains("rows=200"), "default 200-row estimate: {plan}");
    let plan = explain(&db, "SELECT COUNT(*) FROM t WHERE v = 5");
    assert!(plan.contains("rows=1)") || plan.contains("rows=1 "), "stats estimate ~1: {plan}");
}

/// Beyond the 10-relation DP horizon the planner must fall back to the
/// bounded greedy join order instead of refusing the query (PR 9): an
/// 11-table chain both plans and executes.
#[test]
fn eleven_table_join_chain_plans_via_greedy_fallback() {
    let db = Database::in_memory();
    for i in 1..=11 {
        db.execute(&format!("CREATE TABLE c{i} (x int, y int)")).unwrap();
        let rows: Vec<Vec<Datum>> =
            (0..10).map(|v| vec![Datum::Int(v), Datum::Int(v * i)]).collect();
        db.insert_rows(&format!("c{i}"), &rows).unwrap();
        db.execute(&format!("ANALYZE c{i}")).unwrap();
    }
    let from: Vec<String> = (1..=11).map(|i| format!("c{i}")).collect();
    let preds: Vec<String> = (1..11).map(|i| format!("c{}.x = c{}.x", i, i + 1)).collect();
    let sql = format!(
        "SELECT COUNT(*) FROM {} WHERE {}",
        from.join(", "),
        preds.join(" AND ")
    );
    let plan = explain(&db, &sql);
    let joins = plan.matches("Join").count() + plan.matches("Nested Loop").count();
    assert!(joins >= 10, "expected a 10-join tree, got: {plan}");
    // x is a 0..9 key in every table, so the chain matches exactly 10 rows
    let r = db.execute(&sql).unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(10)), "{plan}");
}

/// EXPLAIN ANALYZE must annotate *every* plan node with its observed
/// actuals — rows, blocks, wall time — next to the estimates, across every
/// node type the planner can emit.
#[test]
fn explain_analyze_annotates_every_node_type() {
    let prev_col = std::env::var("SINEW_COLUMNAR").ok();
    std::env::set_var("SINEW_COLUMNAR", "1");

    let db = Database::in_memory();
    db.execute("CREATE TABLE ea (k int, v int, tag text)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..20_000)
        .map(|i| vec![Datum::Int(i), Datum::Int(i % 7), Datum::Text(format!("t{}", i % 3))])
        .collect();
    db.insert_rows("ea", &rows).unwrap();
    db.execute("CREATE TABLE dim (k int, name text)").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..200).map(|i| vec![Datum::Int(i), Datum::Text(format!("n{i}"))]).collect();
    db.insert_rows("dim", &rows).unwrap();
    db.execute("CREATE INDEX idx_ea_k ON ea (k)").unwrap();
    db.execute("ANALYZE ea").unwrap();
    db.execute("ANALYZE dim").unwrap();
    // v columnar (k stays heap + index so the range probe picks Index Scan
    // and the covered point probe picks Index Only Scan)
    db.build_columnar("ea", "v").unwrap();

    let analyze = |sql: &str| -> String {
        let r = db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n")
    };

    // One query per planner shape; small work_mem flips the second half to
    // the sort-based operators.
    let queries: &[&str] = &[
        "SELECT v FROM ea WHERE v = 3 LIMIT 5",
        "SELECT tag FROM ea WHERE k BETWEEN 10 AND 20",
        "SELECT k FROM ea WHERE k = 123",
        "SELECT v, COUNT(*) FROM ea GROUP BY v ORDER BY v",
        "SELECT DISTINCT tag FROM ea",
        "SELECT COUNT(*) FROM ea JOIN dim ON ea.k = dim.k",
        "SELECT COUNT(*) FROM ea, dim WHERE ea.v < dim.k AND dim.k < 2",
        "SELECT 1 + 2, 'const'",
    ];
    let mut plans = String::new();
    for q in queries {
        let text = analyze(q);
        for line in text.lines() {
            if line.contains("(rows=") || line.contains("(n=") {
                assert!(
                    line.contains("(actual rows="),
                    "node line missing actuals for {q:?}: {line}\nfull plan:\n{text}"
                );
            }
        }
        plans.push_str(&text);
        plans.push('\n');
    }
    // Starved work_mem: merge join, sort + group-aggregate, sort + unique.
    small_work_mem(&db);
    for q in &[
        "SELECT COUNT(*) FROM ea a1, ea a2 WHERE a1.k = a2.k",
        "SELECT k, SUM(v) FROM ea GROUP BY k",
        "SELECT DISTINCT k FROM ea",
    ] {
        let text = analyze(q);
        for line in text.lines() {
            if line.contains("(rows=") || line.contains("(n=") {
                assert!(line.contains("(actual rows="), "missing actuals: {line}\n{text}");
            }
        }
        plans.push_str(&text);
        plans.push('\n');
    }
    for node in [
        "Seq Scan", "Index Scan", "Index Only Scan", "Columnar Scan", "Sort",
        "HashAggregate", "GroupAggregate", "Unique", "Hash Join", "Merge Join",
        "Nested Loop", "Limit", "Values",
    ] {
        assert!(plans.contains(node), "workload never produced a {node} node:\n{plans}");
    }

    // Actual rows are the real row counts: the root of a query returning N
    // rows must report actual rows=N.
    let text = analyze("SELECT tag FROM ea WHERE k BETWEEN 10 AND 20");
    let root = text.lines().next().unwrap();
    let actual: u64 = root
        .split("actual rows=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable root line: {root}"));
    assert_eq!(actual, 11, "root actuals wrong: {text}");

    match prev_col {
        Some(v) => std::env::set_var("SINEW_COLUMNAR", v),
        None => std::env::remove_var("SINEW_COLUMNAR"),
    }
}

/// Past the 10-relation DP horizon a beam search orders the join. The
/// star query here sets two traps the one-step-lookahead greedy order
/// (beam width 1) walks into: a one-row decoy dimension captures its
/// smallest-relation start, and the selective-but-expensive-to-scan
/// `dbig` dimension always costs more *this step* than joining one more
/// cheap dimension, so greedy defers it to the very end and every
/// intermediate stays fact-sized. The beam keeps the pay-early order
/// alive one round, sees the intermediate collapse, and must come out
/// strictly cheaper.
#[test]
fn twelve_table_star_beam_beats_greedy() {
    use sinew_rdbms::func::FuncRegistry;
    use sinew_rdbms::planner::Planner;

    let db = Database::in_memory();
    // Fact table: 3000 rows; k joins the 9 small dims, kd the decoy,
    // kb is a 3000-distinct key into dbig.
    db.execute("CREATE TABLE f (k int, kb int, kd int)").unwrap();
    let rows: Vec<Vec<Datum>> = (0..3000)
        .map(|v| vec![Datum::Int(v % 10), Datum::Int(v), Datum::Int(7)])
        .collect();
    db.insert_rows("f", &rows).unwrap();
    // Decoy: one row, joining it filters nothing.
    db.execute("CREATE TABLE decoy (x int)").unwrap();
    db.insert_rows("decoy", &[vec![Datum::Int(7)]]).unwrap();
    // Nine interchangeable small dimensions: 10 rows, join keeps rows flat.
    for i in 1..=9 {
        db.execute(&format!("CREATE TABLE d{i} (x int)")).unwrap();
        let rows: Vec<Vec<Datum>> = (0..10).map(|v| vec![Datum::Int(v)]).collect();
        db.insert_rows(&format!("d{i}"), &rows).unwrap();
    }
    // The trap dimension: 3000 rows to scan, but its filtered single row
    // joined on a 3000-distinct key crushes the intermediate.
    db.execute("CREATE TABLE dbig (x int, y int)").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..3000).map(|v| vec![Datum::Int(v), Datum::Int(v)]).collect();
    db.insert_rows("dbig", &rows).unwrap();
    for t in ["f", "decoy", "dbig"]
        .iter()
        .map(|s| s.to_string())
        .chain((1..=9).map(|i| format!("d{i}")))
    {
        db.execute(&format!("ANALYZE {t}")).unwrap();
    }

    let from: Vec<String> = ["f", "decoy"]
        .iter()
        .map(|s| s.to_string())
        .chain((1..=9).map(|i| format!("d{i}")))
        .chain(std::iter::once("dbig".to_string()))
        .collect();
    let preds: Vec<String> = (1..=9)
        .map(|i| format!("f.k = d{i}.x"))
        .chain([
            "f.kd = decoy.x".to_string(),
            "f.kb = dbig.x".to_string(),
            "dbig.y = 0".to_string(),
        ])
        .collect();
    let sql = format!(
        "SELECT COUNT(*) FROM {} WHERE {}",
        from.join(", "),
        preds.join(" AND ")
    );

    let cost_of = |width: usize| -> f64 {
        let funcs = FuncRegistry::default();
        let stmt = sinew_sql::parse_statement(&sql).unwrap();
        let sinew_sql::Statement::Select(sel) = stmt else { panic!("not a select") };
        Planner::new(&db, &funcs)
            .with_config(PlannerConfig { join_beam_width: width, ..Default::default() })
            .plan_select(&sel)
            .unwrap()
            .cost
    };
    let greedy = cost_of(1);
    let beam = cost_of(8);
    assert!(
        beam < greedy,
        "beam ({beam:.1}) should beat greedy ({greedy:.1}) on the star"
    );

    // Both orders compute the same answer: only the kb = 0 fact row
    // survives the dbig join, and it matches every other dimension once.
    let r = db.execute(&sql).unwrap();
    assert_eq!(r.scalar(), Some(&Datum::Int(1)));
}
