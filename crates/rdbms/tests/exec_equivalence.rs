//! Differential oracle for the streaming block engine: every query in a
//! seeded workload must return *byte-identical* rows under the
//! materializing engine (`ExecMode::Materialize`) and the streaming engine
//! at every block size and thread count — including pathological blocks of
//! 1 and 3 rows, blocks larger than any intermediate, and the
//! morsel-parallel scan path. Aggregation/DISTINCT queries carry ORDER BY
//! so their output order is defined (HashAggregate iteration order is
//! per-instance hash order, in both engines).

use sinew_rdbms::{Database, Datum, ExecLimits, ExecMode};

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const T_ROWS: u64 = 2_000;
const S_ROWS: u64 = 300;

fn build_db() -> Database {
    build_db_sized(T_ROWS)
}

/// Like [`build_db`] but with a chosen `t` row count. The SIMD crossing
/// uses 6 000 rows so `t` spans a *sealed* columnar segment (4 096 slots)
/// plus an unsealed tail — sealed segments are where the packed/dict/rle
/// encodings and therefore the batched kernels live.
fn build_db_sized(t_rows: u64) -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a int, b int, c text, d float)").unwrap();
    db.execute("CREATE TABLE s (k int, v text)").unwrap();
    let mut stmt = String::new();
    for i in 0..t_rows {
        let h = mix(i);
        if stmt.is_empty() {
            stmt.push_str("INSERT INTO t VALUES ");
        } else {
            stmt.push(',');
        }
        let a = (h % 1000) as i64;
        let b = if h.is_multiple_of(13) { "NULL".to_string() } else { ((h >> 8) % 50).to_string() };
        let c = format!("'w{}'", h % 23);
        let d = (h % 9973) as f64 / 7.0;
        stmt.push_str(&format!("({a}, {b}, {c}, {d:.6})"));
        if i % 500 == 499 {
            db.execute(&stmt).unwrap();
            stmt.clear();
        }
    }
    if !stmt.is_empty() {
        db.execute(&stmt).unwrap();
    }
    let mut stmt = String::new();
    for i in 0..S_ROWS {
        let h = mix(i ^ 0xdead_beef);
        if stmt.is_empty() {
            stmt.push_str("INSERT INTO s VALUES ");
        } else {
            stmt.push(',');
        }
        let k = (h % 60) as i64;
        let v = if h.is_multiple_of(11) { "NULL".to_string() } else { format!("'v{}'", h % 7) };
        stmt.push_str(&format!("({k}, {v})"));
        if i % 100 == 99 {
            db.execute(&stmt).unwrap();
            stmt.clear();
        }
    }
    db.execute("CREATE INDEX idx_t_a ON t (a)").unwrap();
    db.execute("CREATE INDEX idx_s_k ON s (k)").unwrap();
    db.execute("ANALYZE t").unwrap();
    db.execute("ANALYZE s").unwrap();
    db
}

/// Filters, extraction-free projections, sorts, aggregates, joins, limits
/// — every operator of both engines, with order pinned where the engine
/// itself does not pin it.
const QUERIES: &[&str] = &[
    "SELECT * FROM t",
    "SELECT a, c FROM t WHERE a > 900",
    "SELECT a, b FROM t WHERE a = 77",
    "SELECT a FROM t WHERE a BETWEEN 100 AND 120",
    "SELECT a, d FROM t WHERE a >= 10 AND a <= 25 AND b > 30",
    "SELECT c FROM t WHERE c LIKE 'w1%'",
    "SELECT a FROM t WHERE b IS NULL",
    "SELECT COALESCE(b, -1), a FROM t WHERE a < 40",
    "SELECT a + b, d * 2.0 FROM t WHERE a % 17 = 3",
    "SELECT a, b, c FROM t ORDER BY c, a DESC, d",
    "SELECT DISTINCT c FROM t ORDER BY c",
    "SELECT DISTINCT b FROM t WHERE a > 500 ORDER BY b",
    "SELECT c, COUNT(*), SUM(a), AVG(d) FROM t GROUP BY c ORDER BY c",
    "SELECT b, MIN(a), MAX(a) FROM t WHERE a > 200 GROUP BY b ORDER BY b",
    "SELECT COUNT(*), SUM(b), MIN(d), MAX(c) FROM t",
    "SELECT COUNT(*) FROM t WHERE a > 5000",
    "SELECT SUM(a) FROM t WHERE a > 5000",
    "SELECT COUNT(DISTINCT c) FROM t",
    "SELECT t.a, s.v FROM t, s WHERE t.b = s.k AND t.a < 50",
    "SELECT COUNT(*) FROM t JOIN s ON t.b = s.k",
    "SELECT COUNT(*) FROM t LEFT JOIN s ON t.b = s.k AND s.v = 'v3'",
    "SELECT COUNT(*) FROM t, s WHERE t.b < s.k AND t.a > 950",
    "SELECT a, c FROM t LIMIT 10",
    "SELECT a, c FROM t WHERE a > 990 LIMIT 5",
    "SELECT a FROM t WHERE a = 77 LIMIT 3",
    "SELECT a, b FROM t ORDER BY a DESC, c LIMIT 17",
    "SELECT c, COUNT(*) FROM t GROUP BY c ORDER BY c LIMIT 4",
    "SELECT a FROM t LIMIT 0",
    "SELECT 1 + 2, 'const'",
];

/// DML applied between two passes of the workload, so equivalence also
/// covers post-delete heaps with holes and relocated updates.
const MUTATIONS: &[&str] = &[
    "DELETE FROM t WHERE a % 7 = 0",
    "UPDATE t SET c = 'rewritten-to-a-longer-value' WHERE a % 11 = 1",
    "UPDATE t SET b = b + 1 WHERE a < 100 AND b IS NOT NULL",
    "DELETE FROM s WHERE k > 50",
];

fn run_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_db();
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    out
}

#[test]
fn streaming_matches_materialize_at_all_block_sizes_and_thread_counts() {
    let oracle = run_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });
    let mut configs = vec![ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 4,
        ..ExecLimits::default()
    }];
    for threads in [1usize, 4] {
        for block_rows in [1usize, 3, 1024, 65_536] {
            configs.push(ExecLimits {
                mode: ExecMode::Streaming,
                exec_threads: threads,
                block_rows,
                ..ExecLimits::default()
            });
        }
    }
    for limits in configs {
        let got = run_workload(limits);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = if i < QUERIES.len() { "pre" } else { "post" };
            assert_eq!(
                g, o,
                "query {q:?} ({phase}-DML) diverged under mode={:?} block_rows={} threads={}",
                limits.mode, limits.block_rows, limits.exec_threads
            );
        }
    }
}

/// Serializes tests that flip the process-global `SINEW_COLUMNAR` knob.
static COLUMNAR_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Workload for the columnar differential: same queries and DML as
/// `run_workload`, but every column of both tables gets a segment store up
/// front, so DML exercises incremental store maintenance, and a
/// drop/rebuild crossing on the DML-churned columns covers stores rebuilt
/// from a heap with holes (the rdbms-level analogue of the
/// demote-then-repromote crossing in the core storage loop). Three phases
/// of query results: fresh stores, post-DML stores, rebuilt stores.
fn run_columnar_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_db();
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }
    for col in ["k", "v"] {
        db.build_columnar("s", col).unwrap();
    }
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    for col in ["b", "c"] {
        assert!(db.drop_columnar("t", col).unwrap());
        db.build_columnar("t", col).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (rebuilt): {e}")).rows);
    }
    out
}

/// The columnar access paths are pure read accelerators: with every column
/// of the workload stored columnar, every query must return byte-identical
/// rows to the heap paths (`SINEW_COLUMNAR=0`), across both engines, 1 and
/// 4 threads, pre- and post-DML, and across a store drop/rebuild crossing.
#[test]
fn columnar_paths_match_heap_paths_byte_identically() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("SINEW_COLUMNAR").ok();

    std::env::set_var("SINEW_COLUMNAR", "0");
    let oracle = run_columnar_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });

    std::env::set_var("SINEW_COLUMNAR", "1");
    let mut configs = Vec::new();
    for threads in [1usize, 4] {
        configs.push(ExecLimits {
            mode: ExecMode::Materialize,
            exec_threads: threads,
            ..ExecLimits::default()
        });
        for block_rows in [3usize, 1024] {
            configs.push(ExecLimits {
                mode: ExecMode::Streaming,
                exec_threads: threads,
                block_rows,
                ..ExecLimits::default()
            });
        }
    }
    for limits in configs {
        let got = run_columnar_workload(limits);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = ["pre", "post", "rebuilt"][i / QUERIES.len()];
            assert_eq!(
                g, o,
                "query {q:?} ({phase}-DML) diverged under mode={:?} block_rows={} threads={}",
                limits.mode, limits.block_rows, limits.exec_threads
            );
        }
    }

    match prev {
        Some(v) => std::env::set_var("SINEW_COLUMNAR", v),
        None => std::env::remove_var("SINEW_COLUMNAR"),
    }
}

/// Guard against the differential passing vacuously: with stores present
/// and the knob on, the planner must actually route eligible queries
/// through the columnar scan and index-only paths, and zone maps must
/// prune segments for out-of-range predicates.
#[test]
fn columnar_paths_actually_engage() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("SINEW_COLUMNAR").ok();
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();
    // this test asserts the new paths engage, so pin both knobs even when
    // the suite runs under SINEW_COLUMNAR=0 or SINEW_FORCE_SCAN=1
    std::env::set_var("SINEW_COLUMNAR", "1");
    std::env::remove_var("SINEW_FORCE_SCAN");

    let db = build_db();
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }

    let before = db.exec_stats();
    db.execute("SELECT a, c FROM t WHERE a > 900").unwrap();
    // b is unindexed and never exceeds 49, so this must go columnar and
    // every segment's zone map must rule itself out
    let r = db.execute("SELECT b, d FROM t WHERE b > 100").unwrap();
    assert!(r.rows.is_empty());
    let r = db.execute("SELECT a FROM t WHERE a = 77").unwrap();
    assert!(!r.rows.is_empty());
    let after = db.exec_stats();
    assert!(after.columnar_scans > before.columnar_scans, "columnar scan never engaged");
    assert!(
        after.segments_pruned > before.segments_pruned,
        "zone maps pruned nothing for b > 100 over values < 50"
    );
    assert!(
        after.index_only_scans > before.index_only_scans,
        "covered point query skipped the index-only path"
    );
    assert_eq!(
        after.heap_fetches, before.heap_fetches,
        "columnar/index-only queries must not fetch heap rows"
    );

    match prev {
        Some(v) => std::env::set_var("SINEW_COLUMNAR", v),
        None => std::env::remove_var("SINEW_COLUMNAR"),
    }
    if let Some(v) = prev_force {
        std::env::set_var("SINEW_FORCE_SCAN", v);
    }
}

/// Workload for the SIMD differential: the columnar workload over a table
/// large enough to hold a sealed segment, so the batched kernels actually
/// run. Two phases of results: fresh stores, then post-DML stores (holes
/// in the liveness bitmap exercise the masked kernel paths).
fn run_kernel_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_db_sized(6_000);
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }
    for col in ["k", "v"] {
        db.build_columnar("s", col).unwrap();
    }
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    out
}

/// `SINEW_SIMD=0` forces the per-slot scalar kernels, which are the oracle
/// for the batched word-parallel paths: the whole workload must come back
/// byte-identical under both knob values, across engines and block sizes.
/// A vacuity guard then checks the batched counters move only under
/// `SINEW_SIMD=1`, and the dictionary-code rewrite fires on a text range.
#[test]
fn batched_kernels_match_scalar_byte_identically() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_col = std::env::var("SINEW_COLUMNAR").ok();
    let prev_simd = std::env::var("SINEW_SIMD").ok();
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();
    std::env::set_var("SINEW_COLUMNAR", "1");
    std::env::remove_var("SINEW_FORCE_SCAN");

    std::env::set_var("SINEW_SIMD", "0");
    let oracle = run_kernel_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });

    std::env::set_var("SINEW_SIMD", "1");
    let mut configs = vec![ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    }];
    for (threads, block_rows) in [(1usize, 3usize), (1, 1024), (4, 1024)] {
        configs.push(ExecLimits {
            mode: ExecMode::Streaming,
            exec_threads: threads,
            block_rows,
            ..ExecLimits::default()
        });
    }
    for limits in configs {
        let got = run_kernel_workload(limits);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = if i < QUERIES.len() { "pre" } else { "post" };
            assert_eq!(
                g, o,
                "query {q:?} ({phase}-DML) diverged from the scalar kernels under \
                 mode={:?} block_rows={} threads={}",
                limits.mode, limits.block_rows, limits.exec_threads
            );
        }
    }

    // Vacuity guard: batched decode engages only when the knob allows it.
    // `b` and `c` are unindexed, so their range predicates must take the
    // columnar scan; `c` is low-cardinality text, so its sealed segment is
    // dictionary-encoded and the predicate rewrites to a code range.
    for (mode, expect) in [("0", false), ("1", true)] {
        std::env::set_var("SINEW_SIMD", mode);
        let db = build_db_sized(6_000);
        for col in ["a", "b", "c", "d"] {
            db.build_columnar("t", col).unwrap();
        }
        let before = db.exec_stats();
        db.execute("SELECT b FROM t WHERE b > 10 AND b < 40").unwrap();
        db.execute("SELECT c FROM t WHERE c >= 'w1' AND c <= 'w5'").unwrap();
        let after = db.exec_stats();
        assert_eq!(
            after.values_decoded_batched > before.values_decoded_batched,
            expect,
            "SINEW_SIMD={mode}: values_decoded_batched moved from {} to {}",
            before.values_decoded_batched,
            after.values_decoded_batched
        );
        if expect {
            assert!(
                after.dict_code_rewrites > before.dict_code_rewrites,
                "text range over a dict segment never rewrote to a code range"
            );
        }
    }

    for (name, prev) in
        [("SINEW_COLUMNAR", prev_col), ("SINEW_SIMD", prev_simd), ("SINEW_FORCE_SCAN", prev_force)]
    {
        match prev {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
    }
}

/// LIMIT over a serial scan must stop pulling: the scan visits O(limit)
/// rows, not the whole table, and the early stop is counted.
#[test]
fn limit_early_stop_reaches_the_scan() {
    let db = build_db();
    db.set_exec_limits(ExecLimits {
        mode: ExecMode::Streaming,
        block_rows: 64,
        exec_threads: 1,
        ..ExecLimits::default()
    });
    let before = db.exec_stats();
    let r = db.execute("SELECT a FROM t LIMIT 10").unwrap();
    assert_eq!(r.rows.len(), 10);
    let after = db.exec_stats();
    assert_eq!(after.early_stops - before.early_stops, 1);
    assert!(after.blocks_emitted > before.blocks_emitted);
    // Peak residency is bounded by the block size, not the table.
    assert!(
        after.peak_resident_rows <= 2 * 64,
        "peak resident {} rows for a LIMIT 10 over {} rows",
        after.peak_resident_rows,
        T_ROWS
    );
}

/// A capped index probe (exact bounds + LIMIT) returns the same rows as
/// the uncapped plan: the cap keeps the smallest rowids, which are exactly
/// the rows the executor would have emitted first.
#[test]
fn limit_pushdown_into_index_probe_is_exact() {
    // Serialized with the columnar tests: they flip SINEW_FORCE_SCAN /
    // SINEW_COLUMNAR process-wide, and this test's engines-agree assertion
    // would flake if a knob changed between its two plans of one query.
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // this test is specifically about capped index probes, so pin the
    // force-scan knob off even when the suite runs under SINEW_FORCE_SCAN=1
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();
    std::env::remove_var("SINEW_FORCE_SCAN");
    let db = build_db();
    let mut index_queries = 0u64;
    for sql in [
        "SELECT a, b, c, d FROM t WHERE a = 77 LIMIT 1",
        "SELECT a, c FROM t WHERE a = 77 LIMIT 2",
        "SELECT a, c FROM t WHERE a BETWEEN 40 AND 45 LIMIT 3",
        "SELECT a, c FROM t WHERE a > 990 AND a < 995 LIMIT 4",
    ] {
        db.set_exec_limits(ExecLimits {
            mode: ExecMode::Materialize,
            exec_threads: 1,
            ..ExecLimits::default()
        });
        let base = db.exec_stats().index_scans;
        let want = db.execute(sql).unwrap().rows;
        let mat_used_index = db.exec_stats().index_scans - base;
        db.set_exec_limits(ExecLimits {
            mode: ExecMode::Streaming,
            block_rows: 2,
            exec_threads: 1,
            ..ExecLimits::default()
        });
        let before = db.exec_stats().index_scans;
        let got = db.execute(sql).unwrap().rows;
        assert_eq!(got, want, "{sql}");
        // Both engines share the planner, so access-path choice must agree.
        assert_eq!(
            db.exec_stats().index_scans - before,
            mat_used_index,
            "{sql}: engines chose different access paths"
        );
        index_queries += mat_used_index;
    }
    assert!(
        index_queries >= 2,
        "expected the planner to pick the index for most capped probes, got {index_queries}"
    );
    if let Some(v) = prev_force {
        std::env::set_var("SINEW_FORCE_SCAN", v);
    }
}
