//! Differential oracle for the streaming block engine: every query in a
//! seeded workload must return *byte-identical* rows under the
//! materializing engine (`ExecMode::Materialize`) and the streaming engine
//! at every block size and thread count — including pathological blocks of
//! 1 and 3 rows, blocks larger than any intermediate, and the
//! morsel-parallel scan path. Aggregation/DISTINCT queries carry ORDER BY
//! so their output order is defined (HashAggregate iteration order is
//! per-instance hash order, in both engines).

use sinew_rdbms::{Database, Datum, ExecLimits, ExecMode, PlannerConfig};

/// splitmix64 — deterministic data without depending on a rand crate.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const T_ROWS: u64 = 2_000;
const S_ROWS: u64 = 300;

fn build_db() -> Database {
    build_db_sized(T_ROWS)
}

/// Like [`build_db`] but with a chosen `t` row count. The SIMD crossing
/// uses 6 000 rows so `t` spans a *sealed* columnar segment (4 096 slots)
/// plus an unsealed tail — sealed segments are where the packed/dict/rle
/// encodings and therefore the batched kernels live.
fn build_db_sized(t_rows: u64) -> Database {
    populate(Database::in_memory(), t_rows)
}

/// Load the seeded workload tables into an already-constructed database
/// (lets the MVCC differential pick the concurrency path explicitly).
fn populate(db: Database, t_rows: u64) -> Database {
    db.execute("CREATE TABLE t (a int, b int, c text, d float)").unwrap();
    db.execute("CREATE TABLE s (k int, v text)").unwrap();
    let mut stmt = String::new();
    for i in 0..t_rows {
        let h = mix(i);
        if stmt.is_empty() {
            stmt.push_str("INSERT INTO t VALUES ");
        } else {
            stmt.push(',');
        }
        let a = (h % 1000) as i64;
        let b = if h.is_multiple_of(13) { "NULL".to_string() } else { ((h >> 8) % 50).to_string() };
        let c = format!("'w{}'", h % 23);
        let d = (h % 9973) as f64 / 7.0;
        stmt.push_str(&format!("({a}, {b}, {c}, {d:.6})"));
        if i % 500 == 499 {
            db.execute(&stmt).unwrap();
            stmt.clear();
        }
    }
    if !stmt.is_empty() {
        db.execute(&stmt).unwrap();
    }
    let mut stmt = String::new();
    for i in 0..S_ROWS {
        let h = mix(i ^ 0xdead_beef);
        if stmt.is_empty() {
            stmt.push_str("INSERT INTO s VALUES ");
        } else {
            stmt.push(',');
        }
        let k = (h % 60) as i64;
        let v = if h.is_multiple_of(11) { "NULL".to_string() } else { format!("'v{}'", h % 7) };
        stmt.push_str(&format!("({k}, {v})"));
        if i % 100 == 99 {
            db.execute(&stmt).unwrap();
            stmt.clear();
        }
    }
    db.execute("CREATE INDEX idx_t_a ON t (a)").unwrap();
    db.execute("CREATE INDEX idx_s_k ON s (k)").unwrap();
    db.execute("ANALYZE t").unwrap();
    db.execute("ANALYZE s").unwrap();
    db
}

/// Filters, extraction-free projections, sorts, aggregates, joins, limits
/// — every operator of both engines, with order pinned where the engine
/// itself does not pin it.
const QUERIES: &[&str] = &[
    "SELECT * FROM t",
    "SELECT a, c FROM t WHERE a > 900",
    "SELECT a, b FROM t WHERE a = 77",
    "SELECT a FROM t WHERE a BETWEEN 100 AND 120",
    "SELECT a, d FROM t WHERE a >= 10 AND a <= 25 AND b > 30",
    "SELECT c FROM t WHERE c LIKE 'w1%'",
    "SELECT a FROM t WHERE b IS NULL",
    "SELECT COALESCE(b, -1), a FROM t WHERE a < 40",
    "SELECT a + b, d * 2.0 FROM t WHERE a % 17 = 3",
    "SELECT a, b, c FROM t ORDER BY c, a DESC, d",
    "SELECT DISTINCT c FROM t ORDER BY c",
    "SELECT DISTINCT b FROM t WHERE a > 500 ORDER BY b",
    "SELECT c, COUNT(*), SUM(a), AVG(d) FROM t GROUP BY c ORDER BY c",
    "SELECT b, MIN(a), MAX(a) FROM t WHERE a > 200 GROUP BY b ORDER BY b",
    "SELECT COUNT(*), SUM(b), MIN(d), MAX(c) FROM t",
    "SELECT COUNT(*) FROM t WHERE a > 5000",
    "SELECT SUM(a) FROM t WHERE a > 5000",
    "SELECT COUNT(DISTINCT c) FROM t",
    "SELECT t.a, s.v FROM t, s WHERE t.b = s.k AND t.a < 50",
    "SELECT COUNT(*) FROM t JOIN s ON t.b = s.k",
    "SELECT COUNT(*) FROM t LEFT JOIN s ON t.b = s.k AND s.v = 'v3'",
    "SELECT COUNT(*) FROM t, s WHERE t.b < s.k AND t.a > 950",
    "SELECT a, c FROM t LIMIT 10",
    "SELECT a, c FROM t WHERE a > 990 LIMIT 5",
    "SELECT a FROM t WHERE a = 77 LIMIT 3",
    "SELECT a, b FROM t ORDER BY a DESC, c LIMIT 17",
    "SELECT c, COUNT(*) FROM t GROUP BY c ORDER BY c LIMIT 4",
    "SELECT a FROM t LIMIT 0",
    "SELECT 1 + 2, 'const'",
];

/// DML applied between two passes of the workload, so equivalence also
/// covers post-delete heaps with holes and relocated updates.
const MUTATIONS: &[&str] = &[
    "DELETE FROM t WHERE a % 7 = 0",
    "UPDATE t SET c = 'rewritten-to-a-longer-value' WHERE a % 11 = 1",
    "UPDATE t SET b = b + 1 WHERE a < 100 AND b IS NOT NULL",
    "DELETE FROM s WHERE k > 50",
];

fn run_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_db();
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    out
}

#[test]
fn streaming_matches_materialize_at_all_block_sizes_and_thread_counts() {
    let oracle = run_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });
    let mut configs = vec![ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 4,
        ..ExecLimits::default()
    }];
    for threads in [1usize, 4] {
        for block_rows in [1usize, 3, 1024, 65_536] {
            configs.push(ExecLimits {
                mode: ExecMode::Streaming,
                exec_threads: threads,
                block_rows,
                ..ExecLimits::default()
            });
        }
    }
    for limits in configs {
        let got = run_workload(limits);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = if i < QUERIES.len() { "pre" } else { "post" };
            assert_eq!(
                g, o,
                "query {q:?} ({phase}-DML) diverged under mode={:?} block_rows={} threads={}",
                limits.mode, limits.block_rows, limits.exec_threads
            );
        }
    }
}

/// The MVCC snapshot engine and the legacy single-writer lock path are
/// differential oracles for each other: the full 29-query workload must be
/// byte-identical pre- and post-DML on both, and also when the DML runs as
/// one explicit transaction instead of autocommit statements.
#[test]
fn mvcc_and_legacy_lock_paths_match_byte_identically() {
    let run = |mvcc: bool, in_txn: bool| -> Vec<Vec<Vec<Datum>>> {
        let db = populate(Database::in_memory_mvcc(mvcc), T_ROWS);
        let mut out = Vec::new();
        for q in QUERIES {
            out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
        }
        if in_txn {
            let mut s = db.session();
            s.execute("BEGIN").unwrap();
            for m in MUTATIONS {
                s.execute(m).unwrap();
            }
            s.execute("COMMIT").unwrap();
        } else {
            for m in MUTATIONS {
                db.execute(m).unwrap();
            }
        }
        for q in QUERIES {
            out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
        }
        out
    };
    let legacy = run(false, false);
    for (label, got) in
        [("mvcc autocommit", run(true, false)), ("mvcc explicit txn", run(true, true))]
    {
        assert_eq!(got.len(), legacy.len());
        for (i, (g, o)) in got.iter().zip(&legacy).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = if i < QUERIES.len() { "pre" } else { "post" };
            assert_eq!(g, o, "query {q:?} ({phase}-DML) diverged under {label}");
        }
    }
}

/// Serializes tests that flip the process-global `SINEW_COLUMNAR` knob.
static COLUMNAR_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Workload for the columnar differential: same queries and DML as
/// `run_workload`, but every column of both tables gets a segment store up
/// front, so DML exercises incremental store maintenance, and a
/// drop/rebuild crossing on the DML-churned columns covers stores rebuilt
/// from a heap with holes (the rdbms-level analogue of the
/// demote-then-repromote crossing in the core storage loop). Three phases
/// of query results: fresh stores, post-DML stores, rebuilt stores.
fn run_columnar_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_db();
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }
    for col in ["k", "v"] {
        db.build_columnar("s", col).unwrap();
    }
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    for col in ["b", "c"] {
        assert!(db.drop_columnar("t", col).unwrap());
        db.build_columnar("t", col).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (rebuilt): {e}")).rows);
    }
    out
}

/// The columnar access paths are pure read accelerators: with every column
/// of the workload stored columnar, every query must return byte-identical
/// rows to the heap paths (`SINEW_COLUMNAR=0`), across both engines, 1 and
/// 4 threads, pre- and post-DML, and across a store drop/rebuild crossing.
#[test]
fn columnar_paths_match_heap_paths_byte_identically() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("SINEW_COLUMNAR").ok();

    std::env::set_var("SINEW_COLUMNAR", "0");
    let oracle = run_columnar_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });

    std::env::set_var("SINEW_COLUMNAR", "1");
    let mut configs = Vec::new();
    for threads in [1usize, 4] {
        configs.push(ExecLimits {
            mode: ExecMode::Materialize,
            exec_threads: threads,
            ..ExecLimits::default()
        });
        for block_rows in [3usize, 1024] {
            configs.push(ExecLimits {
                mode: ExecMode::Streaming,
                exec_threads: threads,
                block_rows,
                ..ExecLimits::default()
            });
        }
    }
    for limits in configs {
        let got = run_columnar_workload(limits);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = ["pre", "post", "rebuilt"][i / QUERIES.len()];
            assert_eq!(
                g, o,
                "query {q:?} ({phase}-DML) diverged under mode={:?} block_rows={} threads={}",
                limits.mode, limits.block_rows, limits.exec_threads
            );
        }
    }

    match prev {
        Some(v) => std::env::set_var("SINEW_COLUMNAR", v),
        None => std::env::remove_var("SINEW_COLUMNAR"),
    }
}

/// Guard against the differential passing vacuously: with stores present
/// and the knob on, the planner must actually route eligible queries
/// through the columnar scan and index-only paths, and zone maps must
/// prune segments for out-of-range predicates.
#[test]
fn columnar_paths_actually_engage() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("SINEW_COLUMNAR").ok();
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();
    // this test asserts the new paths engage, so pin both knobs even when
    // the suite runs under SINEW_COLUMNAR=0 or SINEW_FORCE_SCAN=1
    std::env::set_var("SINEW_COLUMNAR", "1");
    std::env::remove_var("SINEW_FORCE_SCAN");

    let db = build_db();
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }

    let before = db.exec_stats();
    db.execute("SELECT a, c FROM t WHERE a > 900").unwrap();
    // b is unindexed and never exceeds 49, so this must go columnar and
    // every segment's zone map must rule itself out
    let r = db.execute("SELECT b, d FROM t WHERE b > 100").unwrap();
    assert!(r.rows.is_empty());
    let r = db.execute("SELECT a FROM t WHERE a = 77").unwrap();
    assert!(!r.rows.is_empty());
    let after = db.exec_stats();
    assert!(after.columnar_scans > before.columnar_scans, "columnar scan never engaged");
    assert!(
        after.segments_pruned > before.segments_pruned,
        "zone maps pruned nothing for b > 100 over values < 50"
    );
    assert!(
        after.index_only_scans > before.index_only_scans,
        "covered point query skipped the index-only path"
    );
    assert_eq!(
        after.heap_fetches, before.heap_fetches,
        "columnar/index-only queries must not fetch heap rows"
    );

    match prev {
        Some(v) => std::env::set_var("SINEW_COLUMNAR", v),
        None => std::env::remove_var("SINEW_COLUMNAR"),
    }
    if let Some(v) = prev_force {
        std::env::set_var("SINEW_FORCE_SCAN", v);
    }
}

/// Workload for the SIMD differential: the columnar workload over a table
/// large enough to hold a sealed segment, so the batched kernels actually
/// run. Two phases of results: fresh stores, then post-DML stores (holes
/// in the liveness bitmap exercise the masked kernel paths).
fn run_kernel_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_db_sized(6_000);
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }
    for col in ["k", "v"] {
        db.build_columnar("s", col).unwrap();
    }
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    for q in QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    out
}

/// `SINEW_SIMD=0` forces the per-slot scalar kernels, which are the oracle
/// for the batched word-parallel paths: the whole workload must come back
/// byte-identical under both knob values, across engines and block sizes.
/// A vacuity guard then checks the batched counters move only under
/// `SINEW_SIMD=1`, and the dictionary-code rewrite fires on a text range.
#[test]
fn batched_kernels_match_scalar_byte_identically() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_col = std::env::var("SINEW_COLUMNAR").ok();
    let prev_simd = std::env::var("SINEW_SIMD").ok();
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();
    std::env::set_var("SINEW_COLUMNAR", "1");
    std::env::remove_var("SINEW_FORCE_SCAN");

    std::env::set_var("SINEW_SIMD", "0");
    let oracle = run_kernel_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });

    std::env::set_var("SINEW_SIMD", "1");
    let mut configs = vec![ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    }];
    for (threads, block_rows) in [(1usize, 3usize), (1, 1024), (4, 1024)] {
        configs.push(ExecLimits {
            mode: ExecMode::Streaming,
            exec_threads: threads,
            block_rows,
            ..ExecLimits::default()
        });
    }
    for limits in configs {
        let got = run_kernel_workload(limits);
        assert_eq!(got.len(), oracle.len());
        for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
            let q = QUERIES[i % QUERIES.len()];
            let phase = if i < QUERIES.len() { "pre" } else { "post" };
            assert_eq!(
                g, o,
                "query {q:?} ({phase}-DML) diverged from the scalar kernels under \
                 mode={:?} block_rows={} threads={}",
                limits.mode, limits.block_rows, limits.exec_threads
            );
        }
    }

    // Vacuity guard: batched decode engages only when the knob allows it.
    // `b` and `c` are unindexed, so their range predicates must take the
    // columnar scan; `c` is low-cardinality text, so its sealed segment is
    // dictionary-encoded and the predicate rewrites to a code range.
    for (mode, expect) in [("0", false), ("1", true)] {
        std::env::set_var("SINEW_SIMD", mode);
        let db = build_db_sized(6_000);
        for col in ["a", "b", "c", "d"] {
            db.build_columnar("t", col).unwrap();
        }
        let before = db.exec_stats();
        db.execute("SELECT b FROM t WHERE b > 10 AND b < 40").unwrap();
        db.execute("SELECT c FROM t WHERE c >= 'w1' AND c <= 'w5'").unwrap();
        let after = db.exec_stats();
        assert_eq!(
            after.values_decoded_batched > before.values_decoded_batched,
            expect,
            "SINEW_SIMD={mode}: values_decoded_batched moved from {} to {}",
            before.values_decoded_batched,
            after.values_decoded_batched
        );
        if expect {
            assert!(
                after.dict_code_rewrites > before.dict_code_rewrites,
                "text range over a dict segment never rewrote to a code range"
            );
        }
    }

    for (name, prev) in
        [("SINEW_COLUMNAR", prev_col), ("SINEW_SIMD", prev_simd), ("SINEW_FORCE_SCAN", prev_force)]
    {
        match prev {
            Some(v) => std::env::set_var(name, v),
            None => std::env::remove_var(name),
        }
    }
}

/// LIMIT over a serial scan must stop pulling: the scan visits O(limit)
/// rows, not the whole table, and the early stop is counted.
#[test]
fn limit_early_stop_reaches_the_scan() {
    let db = build_db();
    db.set_exec_limits(ExecLimits {
        mode: ExecMode::Streaming,
        block_rows: 64,
        exec_threads: 1,
        ..ExecLimits::default()
    });
    let before = db.exec_stats();
    let r = db.execute("SELECT a FROM t LIMIT 10").unwrap();
    assert_eq!(r.rows.len(), 10);
    let after = db.exec_stats();
    assert_eq!(after.early_stops - before.early_stops, 1);
    assert!(after.blocks_emitted > before.blocks_emitted);
    // Peak residency is bounded by the block size, not the table.
    assert!(
        after.peak_resident_rows <= 2 * 64,
        "peak resident {} rows for a LIMIT 10 over {} rows",
        after.peak_resident_rows,
        T_ROWS
    );
}

/// A capped index probe (exact bounds + LIMIT) returns the same rows as
/// the uncapped plan: the cap keeps the smallest rowids, which are exactly
/// the rows the executor would have emitted first.
#[test]
fn limit_pushdown_into_index_probe_is_exact() {
    // Serialized with the columnar tests: they flip SINEW_FORCE_SCAN /
    // SINEW_COLUMNAR process-wide, and this test's engines-agree assertion
    // would flake if a knob changed between its two plans of one query.
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // this test is specifically about capped index probes, so pin the
    // force-scan knob off even when the suite runs under SINEW_FORCE_SCAN=1
    let prev_force = std::env::var("SINEW_FORCE_SCAN").ok();
    std::env::remove_var("SINEW_FORCE_SCAN");
    let db = build_db();
    let mut index_queries = 0u64;
    for sql in [
        "SELECT a, b, c, d FROM t WHERE a = 77 LIMIT 1",
        "SELECT a, c FROM t WHERE a = 77 LIMIT 2",
        "SELECT a, c FROM t WHERE a BETWEEN 40 AND 45 LIMIT 3",
        "SELECT a, c FROM t WHERE a > 990 AND a < 995 LIMIT 4",
    ] {
        db.set_exec_limits(ExecLimits {
            mode: ExecMode::Materialize,
            exec_threads: 1,
            ..ExecLimits::default()
        });
        let base = db.exec_stats().index_scans;
        let want = db.execute(sql).unwrap().rows;
        let mat_used_index = db.exec_stats().index_scans - base;
        db.set_exec_limits(ExecLimits {
            mode: ExecMode::Streaming,
            block_rows: 2,
            exec_threads: 1,
            ..ExecLimits::default()
        });
        let before = db.exec_stats().index_scans;
        let got = db.execute(sql).unwrap().rows;
        assert_eq!(got, want, "{sql}");
        // Both engines share the planner, so access-path choice must agree.
        assert_eq!(
            db.exec_stats().index_scans - before,
            mat_used_index,
            "{sql}: engines chose different access paths"
        );
        index_queries += mat_used_index;
    }
    assert!(
        index_queries >= 2,
        "expected the planner to pick the index for most capped probes, got {index_queries}"
    );
    if let Some(v) = prev_force {
        std::env::set_var("SINEW_FORCE_SCAN", v);
    }
}

// ---------------------------------------------------------------------------
// PR 9: morsel-parallel pipeline breakers (partitioned hash join, partitioned
// hash aggregation, parallel sort) must be byte-identical to the serial
// operators at every knob setting, thread count, and block size.
// ---------------------------------------------------------------------------

const U_ROWS: u64 = 1_500;

/// Three-table join workload db: the `t`/`s` pair from [`build_db`] plus a
/// `u` fact table keyed into `t.a`, with every join/group column promoted to
/// a columnar segment store (the rdbms-level notion of a promoted column) so
/// the parallel breakers sit downstream of columnar scans too.
fn build_join_db() -> Database {
    let db = build_db();
    db.execute("CREATE TABLE u (g int, w float, tag text)").unwrap();
    let mut stmt = String::new();
    for i in 0..U_ROWS {
        let h = mix(i ^ 0x5eed_cafe);
        if stmt.is_empty() {
            stmt.push_str("INSERT INTO u VALUES ");
        } else {
            stmt.push(',');
        }
        let g = (h % 1000) as i64;
        let w = (h % 4099) as f64 / 3.0;
        stmt.push_str(&format!("({g}, {w:.6}, 'g{}')", h % 5));
        if i % 500 == 499 {
            db.execute(&stmt).unwrap();
            stmt.clear();
        }
    }
    if !stmt.is_empty() {
        db.execute(&stmt).unwrap();
    }
    db.execute("CREATE INDEX idx_u_g ON u (g)").unwrap();
    db.execute("ANALYZE u").unwrap();
    for col in ["a", "b", "c", "d"] {
        db.build_columnar("t", col).unwrap();
    }
    for col in ["k", "v"] {
        db.build_columnar("s", col).unwrap();
    }
    for col in ["g", "w", "tag"] {
        db.build_columnar("u", col).unwrap();
    }
    db
}

/// Inner joins, left joins with residual ON conjuncts, GROUP BY + HAVING
/// over join results, three-way joins, join-fed sorts, DISTINCT aggregates
/// (which must *not* engage the parallel pre-aggregation), and joins whose
/// inputs are promoted (columnar) columns. Join output order is morsel
/// order, which the parallel probe stitches back exactly, so only the
/// aggregate/sort queries pin order with ORDER BY.
const JOIN_AGG_QUERIES: &[&str] = &[
    "SELECT t.a, t.c, s.v FROM t JOIN s ON t.b = s.k WHERE t.a < 200",
    "SELECT t.a, s.v, u.w FROM t JOIN s ON t.b = s.k JOIN u ON u.g = t.a WHERE t.a < 120",
    "SELECT t.a, s.v FROM t LEFT JOIN s ON t.b = s.k AND s.v = 'v3' WHERE t.a % 5 = 0",
    "SELECT s.k, COUNT(*), SUM(t.a) FROM t JOIN s ON t.b = s.k \
     GROUP BY s.k HAVING COUNT(*) > 50 ORDER BY s.k",
    "SELECT t.c, COUNT(*), AVG(u.w) FROM t JOIN u ON u.g = t.a \
     GROUP BY t.c HAVING AVG(u.w) > 100.0 ORDER BY t.c",
    "SELECT u.tag, MIN(t.d), MAX(t.d) FROM u LEFT JOIN t ON t.a = u.g \
     GROUP BY u.tag ORDER BY u.tag",
    "SELECT t.b, COUNT(*) FROM t LEFT JOIN s ON t.b = s.k \
     GROUP BY t.b HAVING COUNT(*) >= 2 ORDER BY t.b",
    "SELECT t.a, t.d FROM t JOIN u ON u.g = t.a ORDER BY t.d DESC, t.a LIMIT 40",
    "SELECT c, COUNT(DISTINCT b) FROM t GROUP BY c ORDER BY c",
    "SELECT COUNT(*), SUM(u.w), MIN(t.a) FROM t JOIN u ON u.g = t.a WHERE t.c LIKE 'w1%'",
];

fn run_join_workload(limits: ExecLimits) -> Vec<Vec<Vec<Datum>>> {
    let db = build_join_db();
    db.set_exec_limits(limits);
    let mut out = Vec::new();
    for q in JOIN_AGG_QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q}: {e}")).rows);
    }
    for m in MUTATIONS {
        db.execute(m).unwrap();
    }
    db.execute("DELETE FROM u WHERE g % 13 = 3").unwrap();
    for q in JOIN_AGG_QUERIES {
        out.push(db.execute(q).unwrap_or_else(|e| panic!("{q} (post-DML): {e}")).rows);
    }
    out
}

fn set_knob(name: &str, val: Option<&str>) {
    match val {
        Some(v) => std::env::set_var(name, v),
        None => std::env::remove_var(name),
    }
}

/// The crossing: serial oracle (both knobs off, materializing engine, one
/// thread) against every combination of SINEW_PARALLEL_JOIN x
/// SINEW_PARALLEL_AGG x threads x block_rows {1,1024}, with the
/// fully-parallel corner swept at 1/2/4/8 threads. Byte-identical
/// everywhere, pre- and post-DML, over promoted columns.
#[test]
fn parallel_breakers_match_serial_byte_identically() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_join = std::env::var("SINEW_PARALLEL_JOIN").ok();
    let prev_agg = std::env::var("SINEW_PARALLEL_AGG").ok();
    let prev_col = std::env::var("SINEW_COLUMNAR").ok();
    std::env::set_var("SINEW_COLUMNAR", "1");

    std::env::set_var("SINEW_PARALLEL_JOIN", "0");
    std::env::set_var("SINEW_PARALLEL_AGG", "0");
    let oracle = run_join_workload(ExecLimits {
        mode: ExecMode::Materialize,
        exec_threads: 1,
        ..ExecLimits::default()
    });
    assert!(oracle.iter().any(|r| !r.is_empty()), "join workload returned nothing");

    for join_knob in ["0", "1"] {
        for agg_knob in ["0", "1"] {
            std::env::set_var("SINEW_PARALLEL_JOIN", join_knob);
            std::env::set_var("SINEW_PARALLEL_AGG", agg_knob);
            // 2 and 8 threads ride only the fully-parallel corner — odd
            // partition counts and thread > partition cases are covered
            // without doubling the whole cross.
            let threads_axis: &[usize] =
                if join_knob == "1" && agg_knob == "1" { &[1, 2, 4, 8] } else { &[1, 4] };
            for &threads in threads_axis {
                for block_rows in [1usize, 1024] {
                    let limits = ExecLimits {
                        mode: ExecMode::Streaming,
                        exec_threads: threads,
                        block_rows,
                        ..ExecLimits::default()
                    };
                    let got = run_join_workload(limits);
                    assert_eq!(got.len(), oracle.len());
                    for (i, (g, o)) in got.iter().zip(&oracle).enumerate() {
                        let q = JOIN_AGG_QUERIES[i % JOIN_AGG_QUERIES.len()];
                        let phase = if i < JOIN_AGG_QUERIES.len() { "pre" } else { "post" };
                        assert_eq!(
                            g, o,
                            "query {q:?} ({phase}-DML) diverged under join={join_knob} \
                             agg={agg_knob} block_rows={block_rows} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    set_knob("SINEW_PARALLEL_JOIN", prev_join.as_deref());
    set_knob("SINEW_PARALLEL_AGG", prev_agg.as_deref());
    set_knob("SINEW_COLUMNAR", prev_col.as_deref());
}

/// Guard against the crossing passing vacuously: with the knobs at their
/// defaults and four worker threads, the partitioned build, the parallel
/// pre-aggregation merge, and the parallel sort must all actually run (the
/// workload tables clear the MIN_PARALLEL_ROWS floor); with the knobs off
/// they must not.
#[test]
fn parallel_breakers_actually_engage() {
    let _g = COLUMNAR_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_join = std::env::var("SINEW_PARALLEL_JOIN").ok();
    let prev_agg = std::env::var("SINEW_PARALLEL_AGG").ok();
    std::env::remove_var("SINEW_PARALLEL_JOIN");
    std::env::remove_var("SINEW_PARALLEL_AGG");

    let db = build_db();
    db.set_exec_limits(ExecLimits {
        mode: ExecMode::Streaming,
        exec_threads: 4,
        block_rows: 1024,
        ..ExecLimits::default()
    });

    let before = db.exec_stats();
    db.execute("SELECT COUNT(*) FROM t JOIN s ON t.b = s.k").unwrap();
    // int-only aggregate: exact under reordering, so the pre-aggregation
    // waves never fall back to the serial path
    db.execute("SELECT c, COUNT(*), SUM(a) FROM t GROUP BY c ORDER BY c").unwrap();
    db.execute("SELECT a, b, c FROM t ORDER BY c, a DESC, d").unwrap();
    let r = db.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM t JOIN s ON t.b = s.k").unwrap();
    let text =
        r.rows.iter().map(|row| row[0].display_text()).collect::<Vec<_>>().join("\n");
    assert!(text.contains("(actual rows="), "EXPLAIN ANALYZE carried no actuals: {text}");
    let after = db.exec_stats();
    assert!(after.join_build_rows > before.join_build_rows, "join build never counted");
    assert!(after.join_partitions > before.join_partitions, "partitioned build never engaged");
    assert!(
        after.agg_partition_merges > before.agg_partition_merges,
        "parallel pre-aggregation never engaged"
    );
    assert!(after.parallel_sorts > before.parallel_sorts, "parallel sort never engaged");
    assert!(after.explain_runs > before.explain_runs, "explain run not counted");

    // Knobs off: the same queries must stay on the serial operators.
    std::env::set_var("SINEW_PARALLEL_JOIN", "0");
    std::env::set_var("SINEW_PARALLEL_AGG", "0");
    let before = db.exec_stats();
    db.execute("SELECT COUNT(*) FROM t JOIN s ON t.b = s.k").unwrap();
    db.execute("SELECT c, COUNT(*), SUM(a) FROM t GROUP BY c ORDER BY c").unwrap();
    db.execute("SELECT a, b, c FROM t ORDER BY c, a DESC, d").unwrap();
    let after = db.exec_stats();
    assert!(after.join_build_rows > before.join_build_rows, "serial build still counts rows");
    assert_eq!(after.join_partitions, before.join_partitions, "knob=0 still partitioned");
    assert_eq!(
        after.agg_partition_merges, before.agg_partition_merges,
        "knob=0 still pre-aggregated in parallel"
    );
    assert_eq!(after.parallel_sorts, before.parallel_sorts, "knob=0 still sorted in parallel");

    set_knob("SINEW_PARALLEL_JOIN", prev_join.as_deref());
    set_knob("SINEW_PARALLEL_AGG", prev_agg.as_deref());
}

/// Equi-join and group keys must use exact Int/Float comparison: 2^53 + 1
/// is not representable as f64, so it must not match 2^53.0 even though
/// casting it to f64 yields exactly that value. Runs over both join
/// algorithms (hash, and merge via a starved work_mem) and both engines.
#[test]
fn int_float_join_and_group_keys_are_exact() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE bi (x int)").unwrap();
    db.execute("CREATE TABLE bf (y float)").unwrap();
    // 2^53 = 9007199254740992: the edge of f64's exact-integer range.
    db.execute(
        "INSERT INTO bi VALUES (9007199254740991), (9007199254740992), (9007199254740993), (1), (2)",
    )
    .unwrap();
    db.execute("INSERT INTO bf VALUES (9007199254740991.0), (9007199254740992.0), (1.0), (3.0)")
        .unwrap();
    db.execute("ANALYZE bi").unwrap();
    db.execute("ANALYZE bf").unwrap();

    let expect = vec![
        vec![Datum::Int(1)],
        vec![Datum::Int(9_007_199_254_740_991)],
        vec![Datum::Int(9_007_199_254_740_992)],
    ];
    for work_mem in [None, Some(64usize)] {
        if let Some(wm) = work_mem {
            // starve the hash build so the planner switches to merge join
            db.set_planner_config(PlannerConfig { work_mem: wm, ..Default::default() });
        }
        for mode in [ExecMode::Materialize, ExecMode::Streaming] {
            for threads in [1usize, 4] {
                db.set_exec_limits(ExecLimits {
                    mode,
                    exec_threads: threads,
                    block_rows: 2,
                    ..ExecLimits::default()
                });
                let r = db
                    .execute("SELECT bi.x FROM bi JOIN bf ON bi.x = bf.y ORDER BY bi.x")
                    .unwrap();
                assert_eq!(
                    r.rows, expect,
                    "inexact join keys under work_mem={work_mem:?} mode={mode:?} threads={threads}"
                );
            }
        }
    }

    // Group keys: COALESCE over a nullable int and a float column yields
    // mixed Int/Float keys in one grouping column. Int(2^53) groups with
    // Float(2^53.0) (numerically equal); Int(2^53 + 1) must stay its own
    // group.
    db.execute("CREATE TABLE m (x int, y float)").unwrap();
    db.execute(
        "INSERT INTO m VALUES (9007199254740993, 0.0), (NULL, 9007199254740992.0), \
         (9007199254740992, 0.0), (NULL, 1.0), (1, 0.0)",
    )
    .unwrap();
    for mode in [ExecMode::Materialize, ExecMode::Streaming] {
        for threads in [1usize, 4] {
            db.set_exec_limits(ExecLimits {
                mode,
                exec_threads: threads,
                block_rows: 2,
                ..ExecLimits::default()
            });
            let r = db
                .execute(
                    "SELECT COUNT(*) FROM m GROUP BY COALESCE(x, y) ORDER BY COALESCE(x, y)",
                )
                .unwrap();
            assert_eq!(
                r.rows,
                vec![vec![Datum::Int(2)], vec![Datum::Int(2)], vec![Datum::Int(1)]],
                "inexact group keys under mode={mode:?} threads={threads}"
            );
        }
    }
}
