//! Model-based fuzzing of the storage layer: a random interleaving of
//! inserts, updates, and deletes against a table must always agree with a
//! trivial in-memory model — across in-memory and file-backed pagers, with
//! buffer pools small enough to force eviction mid-sequence.

use proptest::prelude::*;
use sinew_rdbms::{ColType, Database, Datum};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { a: i64, b: String },
    Update { target: usize, b: String },
    Delete { target: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<i64>(), "[a-z]{0,24}").prop_map(|(a, b)| Op::Insert { a, b }),
            (0usize..64, "[a-z]{0,48}").prop_map(|(target, b)| Op::Update { target, b }),
            (0usize..64).prop_map(|target| Op::Delete { target }),
        ],
        1..80,
    )
}

fn run_against(db: &Database, ops: &[Op]) {
    db.create_table("t", vec![("a".into(), ColType::Int), ("b".into(), ColType::Text)])
        .unwrap();
    let mut model: HashMap<u64, (i64, String)> = HashMap::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Insert { a, b } => {
                db.insert_rows("t", &[vec![Datum::Int(*a), Datum::Text(b.clone())]]).unwrap();
                model.insert(next_id, (*a, b.clone()));
                ids.push(next_id);
                next_id += 1;
            }
            Op::Update { target, b } => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[target % ids.len()];
                if let Some(entry) = model.get_mut(&id) {
                    db.update_row("t", id, &[("b", Datum::Text(b.clone()))]).unwrap();
                    entry.1 = b.clone();
                }
            }
            Op::Delete { target } => {
                if ids.is_empty() {
                    continue;
                }
                let id = ids[target % ids.len()];
                if model.remove(&id).is_some() {
                    let r = db.execute(&format!("DELETE FROM t WHERE _rowid = {id}")).unwrap();
                    assert_eq!(r.affected, 1);
                }
            }
        }
    }
    // final state comparison via a full scan
    let r = db.execute("SELECT _rowid, a, b FROM t").unwrap();
    assert_eq!(r.rows.len(), model.len());
    for row in &r.rows {
        let Datum::Int(id) = row[0] else { panic!() };
        let (a, b) = model.get(&(id as u64)).expect("row exists in model");
        assert_eq!(row[1], Datum::Int(*a));
        assert_eq!(row[2], Datum::Text(b.clone()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn in_memory_storage_agrees_with_model(ops in arb_ops()) {
        run_against(&Database::in_memory(), &ops);
    }

    #[test]
    fn file_backed_tiny_pool_agrees_with_model(ops in arb_ops()) {
        let dir = std::env::temp_dir().join(format!(
            "sinew-fuzz-{}-{}",
            std::process::id(),
            rand_suffix()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        // pool of 8 pages: every few operations force eviction + re-read
        let db = Database::open(&dir.join("db"), 8, None).unwrap();
        run_against(&db, &ops);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn rand_suffix() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos()
}
