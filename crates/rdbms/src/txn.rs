//! MVCC transaction management: commit timestamps, snapshot registry, and
//! visibility rules.
//!
//! The engine keeps **one monotonically increasing commit timestamp**
//! (`u64`, below [`TXN_BASE`]) handed out by [`TxnManager::start_write`].
//! Every heap row version carries `begin`/`end` timestamps; a snapshot
//! reader with read timestamp `R` sees exactly the versions with
//! `begin <= R < end`. Uncommitted versions written inside an explicit
//! transaction carry a *marker* timestamp (`TXN_BASE | seq`) instead,
//! visible only to their own transaction, and are patched to the real
//! commit timestamp at COMMIT.
//!
//! Two write modes fall out of the snapshot registry:
//!
//! - **Eager** — no snapshot is registered when the statement starts.
//!   The writer mutates destructively exactly like the legacy
//!   single-writer path (in-place heap updates, immediate index/columnar
//!   maintenance), so serial workloads are byte- and structure-identical
//!   to `SINEW_MVCC=0`. To keep that safe, [`TxnManager::begin_snapshot`]
//!   *waits* for in-flight eager statements (bounded by one statement's
//!   duration — the same wait the table lock already imposed).
//! - **Retain** — at least one snapshot is registered. The writer
//!   installs new versions and chains the old ones; superseded versions,
//!   stale index entries, and deferred columnar mutations are queued as
//!   garbage stamped with the commit timestamp, reclaimed by vacuum once
//!   the oldest live snapshot has advanced past them.
//!
//! Readers never take the write token and never block on writers in
//! Retain mode: visibility is resolved per version against the heap.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Instant;

/// Marker base: timestamps at or above this are uncommitted transaction
/// markers, never commit timestamps.
pub const TXN_BASE: u64 = 1 << 63;

/// "End of time" for a version that has not been superseded or deleted.
pub const NO_END: u64 = u64::MAX;

/// Sentinel read timestamp that sees every *committed* version and no
/// uncommitted marker — the latest-committed view used by legacy callers
/// (ANALYZE, index builds, DML phase-1 scans outside a transaction).
pub const READ_LATEST: u64 = TXN_BASE - 1;

/// A visibility filter: which versions a reader may see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vis {
    /// Committed versions with `begin <= read_ts` are candidates.
    pub read_ts: u64,
    /// Own-transaction marker (0 when not inside a transaction):
    /// versions stamped with it are visible to this reader only.
    pub marker: u64,
}

impl Vis {
    /// Latest-committed view (no snapshot, no transaction).
    pub const LATEST: Vis = Vis { read_ts: READ_LATEST, marker: 0 };

    pub fn snapshot(read_ts: u64) -> Vis {
        Vis { read_ts, marker: 0 }
    }

    /// Is a version whose lifetime is `[begin, end)` visible here?
    #[inline]
    pub fn sees(&self, begin: u64, end: u64) -> bool {
        self.sees_begin(begin) && !self.sees_end(end)
    }

    /// Was the version born for this reader?
    #[inline]
    pub fn sees_begin(&self, begin: u64) -> bool {
        if begin >= TXN_BASE {
            self.marker != 0 && begin == self.marker
        } else {
            begin <= self.read_ts
        }
    }

    /// Is the version dead for this reader (superseded or deleted)?
    #[inline]
    pub fn sees_end(&self, end: u64) -> bool {
        if end == NO_END {
            false
        } else if end >= TXN_BASE {
            // Deleted by an uncommitted transaction: dead only for that
            // transaction itself.
            self.marker != 0 && end == self.marker
        } else {
            end <= self.read_ts
        }
    }
}

/// What a finished write statement should do with the versions it
/// superseded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// No snapshot registered: destructive legacy-path writes.
    Eager,
    /// Snapshots live: retain superseded versions for them.
    Retain,
}

/// Ticket for one in-flight write statement (or one transaction commit).
#[derive(Debug, Clone, Copy)]
pub struct WriteTicket {
    pub ts: u64,
    pub mode: WriteMode,
}

#[derive(Debug, Default)]
struct Registry {
    /// read_ts → (refcount, earliest registration).
    snaps: BTreeMap<u64, (u64, Instant)>,
}

#[derive(Debug)]
struct Inner {
    /// Last timestamp handed out.
    next: u64,
    /// Commit visible to new snapshots: every ts <= last_visible is
    /// finished (published in timestamp order).
    last_visible: u64,
    /// In-flight write timestamps → eager flag.
    inflight: BTreeMap<u64, bool>,
    /// Finished timestamps still blocked from publishing by an earlier
    /// in-flight one.
    finished: BTreeSet<u64>,
    registry: Registry,
    /// Readers parked in [`TxnManager::begin_snapshot`] waiting out an
    /// eager statement. New writers see them and pick Retain, so a stream
    /// of back-to-back writers cannot starve snapshot registration.
    pending_readers: u64,
    next_marker: u64,
}

/// The global transaction manager (one per [`crate::Database`]).
pub struct TxnManager {
    inner: Mutex<Inner>,
    cv: std::sync::Condvar,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new()
    }
}

impl TxnManager {
    pub fn new() -> TxnManager {
        TxnManager {
            inner: Mutex::new(Inner {
                next: 0,
                last_visible: 0,
                inflight: BTreeMap::new(),
                finished: BTreeSet::new(),
                registry: Registry::default(),
                pending_readers: 0,
                next_marker: 1,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Recovery: fast-forward the clock past every commit timestamp found
    /// in the log, so post-recovery commits stay monotone.
    pub fn seed(&self, max_committed: u64) {
        let mut g = self.inner.lock().unwrap();
        if max_committed > g.next {
            g.next = max_committed;
            g.last_visible = max_committed;
        }
    }

    /// Register a snapshot and return its read timestamp. Waits out
    /// in-flight *eager* statements (they mutate destructively on the
    /// promise that no snapshot exists); Retain-mode writers and open
    /// transactions never block this.
    pub fn begin_snapshot(&self) -> u64 {
        let mut g = self.inner.lock().unwrap();
        if g.inflight.values().any(|&eager| eager) {
            g.pending_readers += 1;
            while g.inflight.values().any(|&eager| eager) {
                g = self.cv.wait(g).unwrap();
            }
            g.pending_readers -= 1;
        }
        let r = g.last_visible;
        let now = Instant::now();
        g.registry.snaps.entry(r).or_insert((0, now)).0 += 1;
        r
    }

    /// Register a snapshot that is guaranteed to include every write that
    /// committed before this call — the BEGIN-of-transaction variant.
    ///
    /// Commits publish strictly in timestamp order, so a write ticket whose
    /// holder is briefly descheduled stalls `last_visible` even though
    /// *later* commits have already finished. [`Self::begin_snapshot`]
    /// (used by plain reads) shrugs: it serves the stale-but-consistent
    /// frontier without blocking. A *transaction* cannot: an update against
    /// a stale snapshot re-reads a row some already-committed write has
    /// since versioned, and first-writer-wins would abort a perfectly
    /// serial workload. Waiting here is bounded by statement length —
    /// tickets span one statement (or one commit), never an open
    /// transaction's think time.
    pub fn begin_snapshot_fresh(&self) -> u64 {
        let mut g = self.inner.lock().unwrap();
        // Everything at or below `target` must publish before we pick a
        // read timestamp; tickets handed out after this point are *later*
        // writes and may stay in flight (no starvation). Eager tickets
        // above `target` must drain too — they mutate destructively on the
        // promise that no snapshot exists, and we are about to be one.
        let target = g.next;
        if g.inflight.iter().any(|(&ts, &eager)| eager || ts <= target) {
            g.pending_readers += 1;
            while g.inflight.iter().any(|(&ts, &eager)| eager || ts <= target) {
                g = self.cv.wait(g).unwrap();
            }
            g.pending_readers -= 1;
        }
        let r = g.last_visible;
        let now = Instant::now();
        g.registry.snaps.entry(r).or_insert((0, now)).0 += 1;
        r
    }

    /// Drop a snapshot registration. Returns `true` when the horizon may
    /// have advanced (the caller may want to vacuum).
    pub fn release_snapshot(&self, read_ts: u64) -> bool {
        let mut g = self.inner.lock().unwrap();
        let advanced = match g.registry.snaps.get_mut(&read_ts) {
            Some(entry) => {
                entry.0 -= 1;
                if entry.0 == 0 {
                    let was_min =
                        g.registry.snaps.keys().next() == Some(&read_ts);
                    g.registry.snaps.remove(&read_ts);
                    was_min
                } else {
                    false
                }
            }
            None => false,
        };
        advanced
    }

    /// Begin one write statement (or one transaction commit): allocate its
    /// commit timestamp and decide Eager vs Retain from the registry.
    pub fn start_write(&self) -> WriteTicket {
        let mut g = self.inner.lock().unwrap();
        g.next += 1;
        let ts = g.next;
        // Eager (destructive) mode is only safe when this write publishes
        // the instant it finishes: any earlier in-flight ticket would hold
        // publication back, letting a later snapshot register *below* this
        // timestamp and look for versions an eager write already destroyed.
        let eager = g.registry.snaps.is_empty()
            && g.pending_readers == 0
            && g.inflight.is_empty();
        g.inflight.insert(ts, eager);
        WriteTicket { ts, mode: if eager { WriteMode::Eager } else { WriteMode::Retain } }
    }

    /// Publish a finished write. Commits become visible strictly in
    /// timestamp order: a later timestamp finishing first waits (invisibly)
    /// for the earlier one.
    pub fn finish_write(&self, ts: u64) {
        let mut g = self.inner.lock().unwrap();
        g.inflight.remove(&ts);
        g.finished.insert(ts);
        loop {
            let nv = g.last_visible + 1;
            if g.finished.remove(&nv) {
                g.last_visible = nv;
            } else {
                break;
            }
        }
        if g.pending_readers > 0 {
            // Both snapshot flavours park on in-flight tickets: plain
            // readers on eager ones, BEGIN on everything at or below its
            // clock reading.
            self.cv.notify_all();
        }
    }

    /// Fresh uncommitted-transaction marker.
    pub fn marker(&self) -> u64 {
        let mut g = self.inner.lock().unwrap();
        let m = TXN_BASE | g.next_marker;
        g.next_marker += 1;
        m
    }

    /// Oldest registered snapshot's read timestamp, or `None` when no
    /// snapshot is live — the vacuum horizon: garbage stamped `<= horizon`
    /// (or all garbage when `None`) is reclaimable.
    pub fn horizon(&self) -> Option<u64> {
        let g = self.inner.lock().unwrap();
        g.registry.snaps.keys().next().copied()
    }

    /// Age of the oldest registered snapshot, for metrics.
    pub fn oldest_snapshot_age_ms(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        g.registry
            .snaps
            .values()
            .map(|(_, at)| at.elapsed().as_millis() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Number of registered snapshots (tests / introspection).
    pub fn live_snapshots(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        g.registry.snaps.values().map(|(n, _)| *n).sum()
    }

    /// Current published timestamp (tests / introspection).
    pub fn last_visible(&self) -> u64 {
        self.inner.lock().unwrap().last_visible
    }

    /// In-flight (started, unfinished) write timestamps with their eager
    /// flags (tests / introspection).
    pub fn inflight_debug(&self) -> Vec<(u64, bool)> {
        let g = self.inner.lock().unwrap();
        g.inflight.iter().map(|(&ts, &e)| (ts, e)).collect()
    }

    /// A timestamp at or above every write timestamp handed out so far —
    /// the conservative visibility floor stamped on rebuilt columnar
    /// stores (a rebuild's heap scan may include still-in-flight writes).
    pub fn current_floor(&self) -> u64 {
        self.inner.lock().unwrap().next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_publish_in_timestamp_order() {
        let m = TxnManager::new();
        let a = m.start_write();
        let b = m.start_write();
        assert!(b.ts > a.ts);
        m.finish_write(b.ts);
        assert_eq!(m.last_visible(), 0, "b blocked behind in-flight a");
        m.finish_write(a.ts);
        assert_eq!(m.last_visible(), b.ts);
    }

    #[test]
    fn registry_forces_retain_mode() {
        let m = TxnManager::new();
        assert_eq!(m.start_write().mode, WriteMode::Eager);
        m.finish_write(1);
        let r = m.begin_snapshot();
        assert_eq!(r, 1);
        let t = m.start_write();
        assert_eq!(t.mode, WriteMode::Retain);
        m.finish_write(t.ts);
        assert!(m.release_snapshot(r));
        assert_eq!(m.horizon(), None);
    }

    #[test]
    fn snapshot_waits_for_eager_writer() {
        use std::sync::Arc;
        let m = Arc::new(TxnManager::new());
        let t = m.start_write();
        assert_eq!(t.mode, WriteMode::Eager);
        let m2 = m.clone();
        let h = std::thread::spawn(move || m2.begin_snapshot());
        std::thread::sleep(std::time::Duration::from_millis(30));
        m.finish_write(t.ts);
        let r = h.join().unwrap();
        assert_eq!(r, t.ts, "snapshot registered only after the eager write");
        m.release_snapshot(r);
    }

    #[test]
    fn visibility_rules() {
        let vis = Vis::snapshot(10);
        assert!(vis.sees(5, NO_END));
        assert!(vis.sees(10, NO_END));
        assert!(!vis.sees(11, NO_END), "born after the snapshot");
        assert!(!vis.sees(5, 10), "deleted at or before the snapshot");
        assert!(vis.sees(5, 11), "deleted after the snapshot");
        // markers: visible only to their own transaction
        let marker = TXN_BASE | 3;
        assert!(!vis.sees(marker, NO_END));
        let own = Vis { read_ts: 10, marker };
        assert!(own.sees(marker, NO_END));
        assert!(!own.sees(5, marker), "deleted by own transaction");
        assert!(own.sees(5, TXN_BASE | 4), "deleted by someone else's txn");
        // latest-committed sentinel: sees all committed, no markers
        assert!(Vis::LATEST.sees(999_999, NO_END));
        assert!(!Vis::LATEST.sees(marker, NO_END));
        assert!(Vis::LATEST.sees(5, TXN_BASE | 9));
    }
}
