//! Secondary ordered indexes: `Datum` key → heap [`RowId`].
//!
//! A [`SecondaryIndex`] is a B-tree-style ordered map from column values to
//! the row ids holding them. Entries live in sorted leaf pages allocated
//! from the table's [`Pager`], so index reads and writes go through the
//! same buffer pool as heap pages and show up in `IoStats` — an index
//! probe on a cold cache costs real (simulated) I/O, exactly like Postgres.
//! The leaf *directory* (low key per page) is kept in memory, mirroring the
//! heap's in-memory row directory.
//!
//! Keys order by [`Datum::total_cmp`], the same total order the sort
//! operators use: NULLs first (never stored — SQL comparison predicates
//! are null-rejecting, so an index scan never needs them), then a fixed
//! type rank, with Int/Float comparing numerically across types. Range
//! lookups therefore return a *superset* of the sql-semantics matches
//! (e.g. `col > 5` ranges over trailing Text entries too); the executor
//! re-applies the full predicate as a residual filter, which keeps index
//! scans byte-identical to full scans by construction.
//!
//! Duplicate keys are allowed; entries are unique by `(key, rowid)`.
//! Oversized keys (encoding beyond [`MAX_ENTRY_KEY`]) are rare — promoted
//! columns hold scalars — and go to a small in-memory overflow list that
//! every lookup merges in, so correctness never depends on key size.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::heap::RowId;
use crate::page::PAGE_SIZE;
use crate::pager::{PageId, Pager};
use std::cmp::Ordering;
use std::sync::Arc;

/// Usable payload bytes per leaf page (2-byte entry-count header).
const LEAF_CAP: usize = PAGE_SIZE - 2;
/// Largest key encoding stored in a leaf page. Guarantees a full page
/// holds at least three entries, so splits always make progress.
const MAX_ENTRY_KEY: usize = 2048;

/// One leaf page: its low `(key, rowid)` bound and entry count.
struct LeafMeta {
    page: PageId,
    lo_key: Datum,
    lo_rowid: RowId,
    count: u32,
}

/// An ordered secondary index over one physical column of a table.
pub struct SecondaryIndex {
    pager: Arc<Pager>,
    name: String,
    column: String,
    /// Leaves in key order; binary-searched by their low bound.
    leaves: Vec<LeafMeta>,
    /// Entries whose key encoding exceeds [`MAX_ENTRY_KEY`], kept sorted.
    overflow: Vec<(Datum, RowId)>,
    entry_count: u64,
}

fn cmp_entry(a: &(Datum, RowId), b: &(Datum, RowId)) -> Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

impl SecondaryIndex {
    pub fn new(pager: Arc<Pager>, name: &str, column: &str) -> SecondaryIndex {
        SecondaryIndex {
            pager,
            name: name.to_string(),
            column: column.to_string(),
            leaves: Vec::new(),
            overflow: Vec::new(),
            entry_count: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The indexed column's name.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of (key, rowid) entries (NULL keys are never stored).
    pub fn key_count(&self) -> u64 {
        self.entry_count
    }

    pub fn pages_used(&self) -> u64 {
        self.leaves.len() as u64
    }

    pub fn bytes_used(&self) -> u64 {
        self.pages_used() * PAGE_SIZE as u64
    }

    /// Add one entry. NULL keys are skipped (comparison predicates are
    /// null-rejecting, so no lookup ever wants them).
    pub fn insert(&mut self, key: &Datum, rowid: RowId) -> DbResult<()> {
        if key.is_null() {
            return Ok(());
        }
        let mut kbytes = Vec::new();
        encode_key(key, &mut kbytes);
        if kbytes.len() > MAX_ENTRY_KEY {
            let entry = (key.clone(), rowid);
            if let Err(pos) = self.overflow.binary_search_by(|e| cmp_entry(e, &entry)) {
                self.overflow.insert(pos, entry);
                self.entry_count += 1;
            }
            return Ok(());
        }
        if self.leaves.is_empty() {
            let page = self.pager.alloc_raw_unlogged()?;
            write_leaf(&self.pager, page, &[(key.clone(), rowid)])?;
            self.leaves.push(LeafMeta {
                page,
                lo_key: key.clone(),
                lo_rowid: rowid,
                count: 1,
            });
            self.entry_count += 1;
            return Ok(());
        }
        let li = self.target_leaf(key, rowid);
        let mut entries = read_leaf(&self.pager, self.leaves[li].page)?;
        let entry = (key.clone(), rowid);
        let pos = match entries.binary_search_by(|e| cmp_entry(e, &entry)) {
            Ok(_) => return Ok(()), // (key, rowid) already present
            Err(pos) => pos,
        };
        entries.insert(pos, entry);
        self.entry_count += 1;
        if encoded_len(&entries) <= LEAF_CAP {
            write_leaf(&self.pager, self.leaves[li].page, &entries)?;
            self.refresh_meta(li, &entries);
            return Ok(());
        }
        // Split: lower half stays, upper half moves to a fresh page.
        let mid = entries.len() / 2;
        let upper: Vec<(Datum, RowId)> = entries.split_off(mid);
        write_leaf(&self.pager, self.leaves[li].page, &entries)?;
        self.refresh_meta(li, &entries);
        let new_page = self.pager.alloc_raw_unlogged()?;
        write_leaf(&self.pager, new_page, &upper)?;
        self.leaves.insert(
            li + 1,
            LeafMeta {
                page: new_page,
                lo_key: upper[0].0.clone(),
                lo_rowid: upper[0].1,
                count: upper.len() as u32,
            },
        );
        Ok(())
    }

    /// Remove one entry; returns whether it was present.
    pub fn remove(&mut self, key: &Datum, rowid: RowId) -> DbResult<bool> {
        if key.is_null() {
            return Ok(false);
        }
        let entry = (key.clone(), rowid);
        if let Ok(pos) = self.overflow.binary_search_by(|e| cmp_entry(e, &entry)) {
            self.overflow.remove(pos);
            self.entry_count -= 1;
            return Ok(true);
        }
        if self.leaves.is_empty() {
            return Ok(false);
        }
        let li = self.target_leaf(key, rowid);
        let mut entries = read_leaf(&self.pager, self.leaves[li].page)?;
        let Ok(pos) = entries.binary_search_by(|e| cmp_entry(e, &entry)) else {
            return Ok(false);
        };
        entries.remove(pos);
        self.entry_count -= 1;
        if entries.is_empty() {
            // Page is abandoned (the pager never frees pages), like a
            // drained jumbo chain; accounting drops it from the directory.
            self.leaves.remove(li);
        } else {
            write_leaf(&self.pager, self.leaves[li].page, &entries)?;
            self.refresh_meta(li, &entries);
        }
        Ok(true)
    }

    /// Rebuild from scratch by sorting once and packing leaves in order —
    /// the bulk path CREATE INDEX and promotion use instead of row-at-a-time
    /// inserts. Returns the number of entries indexed.
    pub fn bulk_build(&mut self, mut entries: Vec<(Datum, RowId)>) -> DbResult<u64> {
        entries.retain(|(k, _)| !k.is_null());
        entries.sort_unstable_by(cmp_entry);
        entries.dedup_by(|a, b| cmp_entry(a, b) == Ordering::Equal);
        self.leaves.clear();
        self.overflow.clear();
        self.entry_count = entries.len() as u64;

        let mut run: Vec<(Datum, RowId)> = Vec::new();
        let mut run_bytes = 0usize;
        for (key, rowid) in entries {
            let mut kbytes = Vec::new();
            encode_key(&key, &mut kbytes);
            if kbytes.len() > MAX_ENTRY_KEY {
                self.overflow.push((key, rowid));
                continue;
            }
            let esz = entry_len(kbytes.len());
            // Pack to ~¾ fill so later point inserts rarely split.
            if run_bytes + esz > LEAF_CAP * 3 / 4 && !run.is_empty() {
                self.flush_run(&mut run)?;
                run_bytes = 0;
            }
            run.push((key, rowid));
            run_bytes += esz;
        }
        if !run.is_empty() {
            self.flush_run(&mut run)?;
        }
        Ok(self.entry_count)
    }

    fn flush_run(&mut self, run: &mut Vec<(Datum, RowId)>) -> DbResult<()> {
        let page = self.pager.alloc_raw_unlogged()?;
        write_leaf(&self.pager, page, run)?;
        self.leaves.push(LeafMeta {
            page,
            lo_key: run[0].0.clone(),
            lo_rowid: run[0].1,
            count: run.len() as u32,
        });
        run.clear();
        Ok(())
    }

    /// All row ids whose key falls inside the given bounds (by
    /// [`Datum::total_cmp`]; `None` = unbounded). Order is unspecified —
    /// callers sort before fetching to preserve heap scan order.
    ///
    /// `cap`, when present, bounds the probe to the `cap` *smallest* row
    /// ids in range (LIMIT pushdown: the executor fetches rowids in
    /// ascending order, so the smallest `cap` are exactly the rows an
    /// uncapped probe would have produced first). A bounded max-heap keeps
    /// memory at O(cap); an equality probe (`lo == hi`, both inclusive)
    /// additionally stops walking leaves early, because entries are sorted
    /// by `(key, rowid)` and therefore arrive in ascending rowid order.
    pub fn lookup_range(
        &self,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<usize>,
    ) -> DbResult<Vec<RowId>> {
        // SQL treats the zero family {Float(-0.0), Int(0), Float(0.0)} as a
        // single value, but tree entries are ordered by `total_cmp`, which
        // places -0.0 strictly below 0.0 (with Int(0) tied to both). A zero
        // endpoint must therefore be widened to the family edge matching its
        // inclusivity, or the probe would split the family: an inclusive lo
        // becomes -0.0 (admit every zero), an exclusive lo becomes 0.0
        // (reject every zero), and symmetrically for hi.
        let zero = |d: &&Datum| matches!(d, Datum::Int(0)) || matches!(d, Datum::Float(f) if *f == 0.0);
        let lo_w = lo.filter(zero).map(|_| Datum::Float(if lo_inc { -0.0 } else { 0.0 }));
        let lo = lo_w.as_ref().or(lo);
        let hi_w = hi.filter(zero).map(|_| Datum::Float(if hi_inc { 0.0 } else { -0.0 }));
        let hi = hi_w.as_ref().or(hi);
        let below_lo = |k: &Datum| match lo {
            Some(b) => match k.total_cmp(b) {
                Ordering::Less => true,
                Ordering::Equal => !lo_inc,
                Ordering::Greater => false,
            },
            None => false,
        };
        let above_hi = |k: &Datum| match hi {
            Some(b) => match k.total_cmp(b) {
                Ordering::Greater => true,
                Ordering::Equal => !hi_inc,
                Ordering::Less => false,
            },
            None => false,
        };
        // Bounded collection: a max-heap of at most `cap` rowids, so the
        // heap top is the largest kept rowid and any larger candidate is
        // rejected without growing memory.
        let mut out = Vec::new();
        let mut heap: std::collections::BinaryHeap<RowId> = std::collections::BinaryHeap::new();
        let keep = |rowid: RowId,
                    out: &mut Vec<RowId>,
                    heap: &mut std::collections::BinaryHeap<RowId>| match cap {
            None => out.push(rowid),
            Some(cap) => {
                if heap.len() < cap {
                    heap.push(rowid);
                } else if heap.peek().is_some_and(|&m| rowid < m) {
                    heap.pop();
                    heap.push(rowid);
                }
            }
        };
        let equality = match (lo, hi) {
            (Some(l), Some(h)) => lo_inc && hi_inc && l.total_cmp(h) == Ordering::Equal,
            _ => false,
        };
        // First leaf that can contain an in-range key: the last leaf whose
        // low bound is below the range start (its tail may still qualify).
        let start = match lo {
            Some(b) => {
                let i = self
                    .leaves
                    .partition_point(|leaf| leaf.lo_key.total_cmp(b) == Ordering::Less);
                i.saturating_sub(1)
            }
            None => 0,
        };
        'leaves: for leaf in &self.leaves[start.min(self.leaves.len())..] {
            if !below_lo(&leaf.lo_key) && above_hi(&leaf.lo_key) {
                break; // every later entry is above the range too
            }
            for (k, rowid) in read_leaf(&self.pager, leaf.page)? {
                if below_lo(&k) {
                    continue;
                }
                if above_hi(&k) {
                    break;
                }
                keep(rowid, &mut out, &mut heap);
                if equality && cap.is_some_and(|c| heap.len() >= c) {
                    // Equal keys arrive in ascending rowid order; the heap
                    // already holds the cap smallest leaf entries.
                    break 'leaves;
                }
            }
        }
        for (k, rowid) in &self.overflow {
            if !below_lo(k) && !above_hi(k) {
                keep(*rowid, &mut out, &mut heap);
            }
        }
        if cap.is_some() {
            out.extend(heap);
        }
        Ok(out)
    }

    /// Like [`lookup_range`](Self::lookup_range) but keeps the keys:
    /// `(key, rowid)` pairs for every in-range entry, the covering probe
    /// behind index-only scans — the caller synthesizes output rows from
    /// the pairs and never touches the heap. `cap` bounds the result to
    /// the entries with the `cap` smallest row ids (LIMIT pushdown under
    /// exact bounds; emission is in ascending rowid order).
    pub fn lookup_range_entries(
        &self,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<usize>,
    ) -> DbResult<Vec<(Datum, RowId)>> {
        // Zero-family endpoint widening — see `lookup_range` for the proof.
        let zero = |d: &&Datum| matches!(d, Datum::Int(0)) || matches!(d, Datum::Float(f) if *f == 0.0);
        let lo_w = lo.filter(zero).map(|_| Datum::Float(if lo_inc { -0.0 } else { 0.0 }));
        let lo = lo_w.as_ref().or(lo);
        let hi_w = hi.filter(zero).map(|_| Datum::Float(if hi_inc { 0.0 } else { -0.0 }));
        let hi = hi_w.as_ref().or(hi);
        let below_lo = |k: &Datum| match lo {
            Some(b) => match k.total_cmp(b) {
                Ordering::Less => true,
                Ordering::Equal => !lo_inc,
                Ordering::Greater => false,
            },
            None => false,
        };
        let above_hi = |k: &Datum| match hi {
            Some(b) => match k.total_cmp(b) {
                Ordering::Greater => true,
                Ordering::Equal => !hi_inc,
                Ordering::Less => false,
            },
            None => false,
        };
        let start = match lo {
            Some(b) => {
                let i = self
                    .leaves
                    .partition_point(|leaf| leaf.lo_key.total_cmp(b) == Ordering::Less);
                i.saturating_sub(1)
            }
            None => 0,
        };
        let mut out: Vec<(Datum, RowId)> = Vec::new();
        for leaf in &self.leaves[start.min(self.leaves.len())..] {
            if !below_lo(&leaf.lo_key) && above_hi(&leaf.lo_key) {
                break;
            }
            for (k, rowid) in read_leaf(&self.pager, leaf.page)? {
                if below_lo(&k) {
                    continue;
                }
                if above_hi(&k) {
                    break;
                }
                out.push((k, rowid));
            }
        }
        for (k, rowid) in &self.overflow {
            if !below_lo(k) && !above_hi(k) {
                out.push((k.clone(), *rowid));
            }
        }
        if let Some(cap) = cap {
            if out.len() > cap {
                out.select_nth_unstable_by_key(cap, |(_, r)| *r);
                out.truncate(cap);
            }
        }
        Ok(out)
    }

    /// Index of the leaf that owns `(key, rowid)`: the last leaf whose low
    /// bound is ≤ the entry (entries below every leaf belong to the first).
    fn target_leaf(&self, key: &Datum, rowid: RowId) -> usize {
        let probe = (key.clone(), rowid);
        let i = self.leaves.partition_point(|leaf| {
            cmp_entry(&(leaf.lo_key.clone(), leaf.lo_rowid), &probe) != Ordering::Greater
        });
        i.saturating_sub(1)
    }

    fn refresh_meta(&mut self, li: usize, entries: &[(Datum, RowId)]) {
        let meta = &mut self.leaves[li];
        meta.lo_key = entries[0].0.clone();
        meta.lo_rowid = entries[0].1;
        meta.count = entries.len() as u32;
    }
}

// ---- leaf page codec ----

fn entry_len(klen: usize) -> usize {
    2 + klen + 8
}

fn encoded_len(entries: &[(Datum, RowId)]) -> usize {
    let mut total = 0;
    let mut buf = Vec::new();
    for (k, _) in entries {
        buf.clear();
        encode_key(k, &mut buf);
        total += entry_len(buf.len());
    }
    total
}

fn write_leaf(pager: &Pager, page: PageId, entries: &[(Datum, RowId)]) -> DbResult<()> {
    let mut buf = Vec::with_capacity(LEAF_CAP);
    buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for (k, rowid) in entries {
        let mut kbytes = Vec::new();
        encode_key(k, &mut kbytes);
        buf.extend_from_slice(&(kbytes.len() as u16).to_le_bytes());
        buf.extend_from_slice(&kbytes);
        buf.extend_from_slice(&rowid.to_le_bytes());
    }
    debug_assert!(buf.len() <= PAGE_SIZE);
    // Unlogged: index leaves are derived state, rebuilt from the heap by
    // recovery instead of replayed from the WAL.
    pager.with_page_mut_unlogged(page, |pg| {
        pg[..buf.len()].copy_from_slice(&buf);
    })
}

fn read_leaf(pager: &Pager, page: PageId) -> DbResult<Vec<(Datum, RowId)>> {
    pager.with_page(page, |pg| {
        let n = u16::from_le_bytes([pg[0], pg[1]]) as usize;
        let mut off = 2;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let klen = u16::from_le_bytes([pg[off], pg[off + 1]]) as usize;
            off += 2;
            let (key, used) = decode_key(&pg[off..off + klen])?;
            debug_assert_eq!(used, klen);
            off += klen;
            let rowid = u64::from_le_bytes(pg[off..off + 8].try_into().unwrap());
            off += 8;
            out.push((key, rowid));
        }
        Ok(out)
    })?
}

// ---- key codec (self-describing; compared after decode, so byte order
// need not mirror Datum order) ----

fn encode_key(d: &Datum, out: &mut Vec<u8>) {
    match d {
        Datum::Null => out.push(0),
        Datum::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Datum::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Datum::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Datum::Text(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Datum::Bytea(b) => {
            out.push(5);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Datum::Array(a) => {
            out.push(6);
            out.extend_from_slice(&(a.len() as u32).to_le_bytes());
            for e in a {
                encode_key(e, out);
            }
        }
    }
}

fn decode_key(buf: &[u8]) -> DbResult<(Datum, usize)> {
    let corrupt = || DbError::Io("corrupt index key".into());
    let tag = *buf.first().ok_or_else(corrupt)?;
    match tag {
        0 => Ok((Datum::Null, 1)),
        1 => Ok((Datum::Bool(*buf.get(1).ok_or_else(corrupt)? != 0), 2)),
        2 => {
            let raw = buf.get(1..9).ok_or_else(corrupt)?;
            Ok((Datum::Int(i64::from_le_bytes(raw.try_into().unwrap())), 9))
        }
        3 => {
            let raw = buf.get(1..9).ok_or_else(corrupt)?;
            Ok((Datum::Float(f64::from_bits(u64::from_le_bytes(raw.try_into().unwrap()))), 9))
        }
        4 | 5 => {
            let raw = buf.get(1..5).ok_or_else(corrupt)?;
            let len = u32::from_le_bytes(raw.try_into().unwrap()) as usize;
            let body = buf.get(5..5 + len).ok_or_else(corrupt)?;
            let d = if tag == 4 {
                Datum::Text(String::from_utf8(body.to_vec()).map_err(|_| corrupt())?)
            } else {
                Datum::Bytea(body.to_vec())
            };
            Ok((d, 5 + len))
        }
        6 => {
            let raw = buf.get(1..5).ok_or_else(corrupt)?;
            let n = u32::from_le_bytes(raw.try_into().unwrap()) as usize;
            let mut off = 5;
            let mut elems = Vec::with_capacity(n);
            for _ in 0..n {
                let (e, used) = decode_key(buf.get(off..).ok_or_else(corrupt)?)?;
                elems.push(e);
                off += used;
            }
            Ok((Datum::Array(elems), off))
        }
        _ => Err(corrupt()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> SecondaryIndex {
        SecondaryIndex::new(Arc::new(Pager::in_memory()), "i", "c")
    }

    fn eq_lookup(ix: &SecondaryIndex, k: &Datum) -> Vec<RowId> {
        let mut v = ix.lookup_range(Some(k), true, Some(k), true, None).unwrap();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ix = idx();
        ix.insert(&Datum::Int(5), 10).unwrap();
        ix.insert(&Datum::Int(5), 11).unwrap();
        ix.insert(&Datum::Int(7), 12).unwrap();
        ix.insert(&Datum::Null, 13).unwrap(); // skipped
        assert_eq!(ix.key_count(), 3);
        assert_eq!(eq_lookup(&ix, &Datum::Int(5)), vec![10, 11]);
        assert_eq!(eq_lookup(&ix, &Datum::Int(6)), Vec::<RowId>::new());
        assert!(ix.remove(&Datum::Int(5), 10).unwrap());
        assert!(!ix.remove(&Datum::Int(5), 10).unwrap());
        assert_eq!(eq_lookup(&ix, &Datum::Int(5)), vec![11]);
        assert_eq!(ix.key_count(), 2);
    }

    #[test]
    fn duplicate_entry_is_idempotent() {
        let mut ix = idx();
        ix.insert(&Datum::Int(1), 1).unwrap();
        ix.insert(&Datum::Int(1), 1).unwrap();
        assert_eq!(ix.key_count(), 1);
    }

    #[test]
    fn range_bounds_and_inclusivity() {
        let mut ix = idx();
        for i in 0..100i64 {
            ix.insert(&Datum::Int(i), i as RowId).unwrap();
        }
        let both = ix
            .lookup_range(Some(&Datum::Int(10)), true, Some(&Datum::Int(20)), true, None)
            .unwrap();
        assert_eq!(both.len(), 11);
        let open = ix
            .lookup_range(Some(&Datum::Int(10)), false, Some(&Datum::Int(20)), false, None)
            .unwrap();
        assert_eq!(open.len(), 9);
        let unbounded_lo = ix.lookup_range(None, true, Some(&Datum::Int(4)), true, None).unwrap();
        assert_eq!(unbounded_lo.len(), 5);
        let unbounded_hi = ix.lookup_range(Some(&Datum::Int(95)), false, None, true, None).unwrap();
        assert_eq!(unbounded_hi.len(), 4);
    }

    #[test]
    fn cross_numeric_keys_compare_numerically() {
        let mut ix = idx();
        ix.insert(&Datum::Int(5), 1).unwrap();
        ix.insert(&Datum::Float(5.0), 2).unwrap();
        ix.insert(&Datum::Float(4.5), 3).unwrap();
        assert_eq!(eq_lookup(&ix, &Datum::Int(5)), vec![1, 2]);
        let r = ix
            .lookup_range(Some(&Datum::Float(4.4)), true, Some(&Datum::Int(5)), false, None)
            .unwrap();
        assert_eq!(r, vec![3]);
    }

    #[test]
    fn splits_across_many_pages_stay_sorted() {
        let mut ix = idx();
        let n = 20_000i64;
        // insert in a scrambled order to force mid-leaf splits
        for i in 0..n {
            let k = (i * 7919) % n;
            ix.insert(&Datum::Int(k), k as RowId).unwrap();
        }
        assert_eq!(ix.key_count(), n as u64);
        assert!(ix.pages_used() > 10, "expected many leaves, got {}", ix.pages_used());
        let mut all = ix.lookup_range(None, true, None, true, None).unwrap();
        all.sort_unstable();
        assert_eq!(all.len(), n as usize);
        assert_eq!(eq_lookup(&ix, &Datum::Int(12_345 % n)), vec![(12_345 % n) as RowId]);
        let r = ix
            .lookup_range(Some(&Datum::Int(100)), true, Some(&Datum::Int(199)), true, None)
            .unwrap();
        assert_eq!(r.len(), 100);
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let n = 5_000i64;
        let entries: Vec<(Datum, RowId)> =
            (0..n).map(|i| (Datum::Int((i * 13) % 500), i as RowId)).collect();
        let mut bulk = idx();
        bulk.bulk_build(entries.clone()).unwrap();
        let mut inc = idx();
        for (k, r) in &entries {
            inc.insert(k, *r).unwrap();
        }
        assert_eq!(bulk.key_count(), inc.key_count());
        for probe in [0i64, 13, 250, 499, 777] {
            assert_eq!(
                eq_lookup(&bulk, &Datum::Int(probe)),
                eq_lookup(&inc, &Datum::Int(probe)),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn oversized_keys_go_to_overflow_and_still_match() {
        let mut ix = idx();
        let big = Datum::Text("x".repeat(MAX_ENTRY_KEY + 100));
        ix.insert(&big, 1).unwrap();
        ix.insert(&Datum::Text("small".into()), 2).unwrap();
        assert_eq!(ix.key_count(), 2);
        assert_eq!(eq_lookup(&ix, &big), vec![1]);
        assert!(ix.remove(&big, 1).unwrap());
        assert_eq!(ix.key_count(), 1);
    }

    #[test]
    fn mixed_type_keys_order_by_type_rank() {
        let mut ix = idx();
        ix.insert(&Datum::Bool(true), 1).unwrap();
        ix.insert(&Datum::Int(0), 2).unwrap();
        ix.insert(&Datum::Text("a".into()), 3).unwrap();
        ix.insert(&Datum::Array(vec![Datum::Int(1)]), 4).unwrap();
        // range over all numbers only
        let r = ix.lookup_range(Some(&Datum::Int(i64::MIN)), true, Some(&Datum::Float(f64::INFINITY)), true, None).unwrap();
        assert_eq!(r, vec![2]);
        assert_eq!(eq_lookup(&ix, &Datum::Array(vec![Datum::Int(1)])), vec![4]);
    }

    #[test]
    fn delete_then_reinsert_reuses_cleanly() {
        let mut ix = idx();
        for i in 0..1000i64 {
            ix.insert(&Datum::Int(i), i as RowId).unwrap();
        }
        for i in 0..1000i64 {
            assert!(ix.remove(&Datum::Int(i), i as RowId).unwrap());
        }
        assert_eq!(ix.key_count(), 0);
        for i in 0..1000i64 {
            ix.insert(&Datum::Int(i), (i + 5000) as RowId).unwrap();
        }
        assert_eq!(ix.key_count(), 1000);
        assert_eq!(eq_lookup(&ix, &Datum::Int(42)), vec![5042]);
    }
}
