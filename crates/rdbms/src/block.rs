//! Pull-based streaming block execution.
//!
//! The default engine since PR 5: operators implement [`BlockOperator`]
//! and pull [`RowBlock`]s of ~`ExecLimits::block_rows` rows from their
//! child instead of materializing whole intermediates. Streaming operators
//! (scan, filter, project, limit, the probe side of a hash join, the outer
//! side of a nested loop, group/unique/distinct over sorted or hashed
//! state) hold O(block) rows; *pipeline breakers* (sort, hash aggregation,
//! the build side of a hash join, both sides of a merge join) drain their
//! child before emitting. Because everything above a breaker still pulls,
//! a `LIMIT` propagates an early-stop all the way down: the limit simply
//! stops calling `next_block`, the scan operator stops its `Heap::scan`
//! callback mid-page, and the morsel-parallel scan skips the waves it
//! never reached.
//!
//! Output is byte-identical to the materializing oracle
//! (`SINEW_EXEC_MODE=materialize`, `Executor::run_materialize`) at every
//! block size and thread count: scans emit rows in row-id order, parallel
//! waves are stitched in morsel order, float accumulation order equals
//! input order, and hash aggregation emits groups in first-occurrence
//! (input) order — the same order the oracle produces. The equivalence
//! suite (`tests/exec_equivalence.rs`,
//! `crates/core/tests/streaming_oracle.rs`) enforces this over a seeded
//! random workload.
//!
//! Since PR 9 the pipeline *breakers* parallelize too (DESIGN.md §15):
//! the hash-join build side is partitioned over P = next_pow2(threads)
//! private hash tables and the probe runs wave-parallel over buffered
//! probe rows; hash aggregation pre-aggregates thread-locally per morsel
//! and merges partition-wise (falling back, stickily, to the serial fold
//! the moment a float sum appears, because float addition is not
//! associative); sort runs per-chunk run sorts plus a k-way merge whose
//! global-index tiebreak reproduces the serial stable sort exactly.
//! `SINEW_PARALLEL_JOIN=0` / `SINEW_PARALLEL_AGG=0` restore the serial
//! operators for differential testing (the AGG knob also covers the
//! parallel sort). `EXPLAIN ANALYZE` wraps every operator in an
//! [`AnalyzeOp`] that counts rows/blocks/wall time per plan node.
//!
//! Resource governance: `max_intermediate_rows` is charged wherever rows
//! actually accumulate — the root accumulator, breaker buffers, join
//! output counts, distinct/group state — so the streaming engine never
//! charges more than the oracle (and may legitimately succeed where full
//! materialization would exhaust the cap).

use crate::datum::{Datum, GroupKey};
use crate::error::{DbError, DbResult};
use crate::exec::{
    cmp_sort_keys, eval_sort_keys, feed_accs, finish_group, new_acc, panic_message, rows_equal,
    sort_rows, ExecStats, Executor, Row, ScanPipeline,
};
use crate::expr::{EvalCtx, PhysExpr};
use crate::agg::Accumulator;
use crate::plan::{AggSpec, NodeActuals, Plan, SortKey};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A batch of rows flowing between operators. `sel`, when present, lists
/// the indices of `rows` that are logically in the block (a selection
/// vector): filters narrow a block by rewriting `sel` instead of moving
/// rows. Blocks on the wire are never empty — end of stream is `None`
/// from [`BlockOperator::next_block`].
#[derive(Debug, Default)]
pub struct RowBlock {
    pub rows: Vec<Row>,
    pub sel: Option<Vec<u32>>,
}

impl RowBlock {
    pub fn from_rows(rows: Vec<Row>) -> RowBlock {
        RowBlock { rows, sel: None }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compact into a plain vector of the selected rows, in order.
    pub fn take_rows(self) -> Vec<Row> {
        match self.sel {
            None => self.rows,
            Some(sel) => {
                let mut rows = self.rows;
                let mut out = Vec::with_capacity(sel.len());
                for &i in &sel {
                    out.push(std::mem::take(&mut rows[i as usize]));
                }
                out
            }
        }
    }

    /// Keep only the first `n` selected rows.
    pub fn truncate(&mut self, n: usize) {
        match &mut self.sel {
            Some(s) => s.truncate(n),
            None => self.rows.truncate(n),
        }
    }

    /// Visit the selected rows in order.
    pub fn for_each_row(
        &self,
        mut f: impl FnMut(&Row) -> DbResult<()>,
    ) -> DbResult<()> {
        match &self.sel {
            Some(s) => {
                for &i in s {
                    f(&self.rows[i as usize])?;
                }
            }
            None => {
                for row in &self.rows {
                    f(row)?;
                }
            }
        }
        Ok(())
    }
}

/// A pull-based operator. Lifecycle: `open` → `next_block`* → `close`;
/// `close` must be safe to call after an error and is responsible for the
/// whole subtree (operators close their children).
pub trait BlockOperator {
    fn open(&mut self) -> DbResult<()> {
        Ok(())
    }

    /// Produce the next non-empty block, or `None` at end of stream.
    fn next_block(&mut self) -> DbResult<Option<RowBlock>>;

    fn close(&mut self) {}

    /// Rows currently buffered inside this operator subtree (pipeline
    /// breakers, join builds, parallel-scan stitch buffers) — feeds the
    /// `peak_resident_rows` metric.
    fn resident_rows(&self) -> u64 {
        0
    }
}

/// Execute `plan` by pulling the root operator dry, accumulating into the
/// final result. Charges `max_intermediate_rows` per block as the result
/// accumulates and tracks block/early-stop/resident metrics.
pub(crate) fn run_streaming(exec: &Executor<'_>, plan: &Plan) -> DbResult<Vec<Row>> {
    run_streaming_with(exec, plan, None)
}

/// [`run_streaming`] with optional `EXPLAIN ANALYZE` instrumentation:
/// when `az` is set, every plan node's operator is wrapped in an
/// [`AnalyzeOp`] and `az` collects per-node actual rows/blocks/ns in the
/// same pre-order the plan renderer walks.
pub(crate) fn run_streaming_with(
    exec: &Executor<'_>,
    plan: &Plan,
    az: Option<&AnalyzeCtx>,
) -> DbResult<Vec<Row>> {
    let mut op = build_node(exec, plan, None, az)?;
    let mut out: Vec<Row> = Vec::new();
    let result = (|| -> DbResult<()> {
        op.open()?;
        while let Some(block) = op.next_block()? {
            if let Some(st) = exec.stats {
                st.record_block(block.len() as u64);
            }
            let mut rows = block.take_rows();
            out.append(&mut rows);
            exec.check_limit(out.len())?;
            if let Some(st) = exec.stats {
                st.note_resident(out.len() as u64 + op.resident_rows());
            }
        }
        Ok(())
    })();
    op.close();
    result?;
    Ok(out)
}

/// Build the operator tree for `plan`. `cap`, when present, is an upper
/// bound on the rows the parent will consume (LIMIT pushdown); it flows
/// through row-preserving operators (Project) down to index scans, which
/// may bound their B-tree probe when the plan's bounds are exact.
///
/// `az`, when present, registers one [`NodeActuals`] slot per plan node
/// (pre-order: node, then left child, then right — matching
/// `Plan::explain_analyze`'s walk) and wraps each operator in an
/// [`AnalyzeOp`]. Scan-pipeline fusion is disabled under analyze so the
/// operator tree stays 1:1 with the plan tree.
pub(crate) fn build_node<'x, 'a: 'x>(
    exec: &'x Executor<'a>,
    plan: &'x Plan,
    cap: Option<u64>,
    az: Option<&'x AnalyzeCtx>,
) -> DbResult<Box<dyn BlockOperator + 'x>> {
    // The scan→filter→project prefix goes to the morsel-parallel operator
    // when the pool and the table are big enough — same gating as the
    // materializing engine's `try_parallel_pipeline`.
    if az.is_none() && exec.limits.exec_threads.max(1) > 1 {
        if let Some(pipe) = Executor::scan_pipeline(plan) {
            if let Some(high) = exec.source.high_water(pipe.table)? {
                if let Some(op) = ParallelScanOp::try_new(exec, pipe, high) {
                    return Ok(Box::new(op));
                }
            }
        }
    }
    let node_id = az.map(AnalyzeCtx::register);
    let op: Box<dyn BlockOperator + 'x> = match plan {
        Plan::SeqScan { table, filter, needed, .. } => Box::new(SeqScanOp::new(
            exec,
            table,
            filter.as_ref(),
            needed.as_deref(),
        )),
        Plan::IndexScan {
            table,
            binding: _,
            column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            filter,
            needed,
            est_rows: _,
            exact_bounds,
        } => Box::new(IndexScanOp {
            exec,
            table,
            column,
            lo: lo.as_ref(),
            lo_inc: *lo_inc,
            hi: hi.as_ref(),
            hi_inc: *hi_inc,
            filter: filter.as_ref(),
            needed: needed.as_deref(),
            // A probe cap is only sound when the bounds *are* the whole
            // predicate: then every row the index surfaces is an output
            // row, and the `cap` smallest rowids are exactly the rows an
            // uncapped scan would have produced first.
            cap: if *exact_bounds { cap } else { None },
            ctx: EvalCtx::new(),
            state: IndexState::Init,
        }),
        Plan::ColumnarScan {
            table,
            column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            filter,
            needed,
            exact_bounds,
            bounds_cover_filter,
            ..
        } => Box::new(ColumnarScanOp {
            exec,
            table,
            column: column.as_deref(),
            lo: lo.as_ref(),
            lo_inc: *lo_inc,
            hi: hi.as_ref(),
            hi_inc: *hi_inc,
            filter: filter.as_ref(),
            needed: needed.as_deref(),
            exact_bounds: *exact_bounds,
            bounds_cover: *bounds_cover_filter,
            pending: VecDeque::new(),
            emitted: 0,
            skip: 0,
            state: ColumnarState::Init,
        }),
        Plan::IndexOnlyScan {
            table,
            column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            filter,
            needed,
            exact_bounds,
            ..
        } => Box::new(IndexOnlyScanOp {
            exec,
            table,
            column,
            lo: lo.as_ref(),
            lo_inc: *lo_inc,
            hi: hi.as_ref(),
            hi_inc: *hi_inc,
            filter: filter.as_ref(),
            needed: needed.as_deref(),
            // Same soundness rule as IndexScan's probe cap.
            cap: if *exact_bounds { cap } else { None },
            exact_bounds: *exact_bounds,
            ctx: EvalCtx::new(),
            state: IndexOnlyState::Init,
        }),
        Plan::Filter { input, predicate, .. } => Box::new(FilterOp {
            child: build_node(exec, input, None, az)?,
            predicate,
            ctx: EvalCtx::new(),
        }),
        Plan::Project { input, exprs, .. } => Box::new(ProjectOp {
            child: build_node(exec, input, cap, az)?,
            exprs,
            ctx: EvalCtx::new(),
        }),
        Plan::Limit { input, n } => Box::new(LimitOp {
            child: build_node(exec, input, Some(cap.unwrap_or(u64::MAX).min(*n)), az)?,
            remaining: *n,
            stats: exec.stats,
        }),
        Plan::Sort { input, keys, .. } => Box::new(SortOp {
            exec,
            child: build_node(exec, input, None, az)?,
            keys,
            buf: None,
            pos: 0,
        }),
        Plan::HashAggregate { input, groups, aggs, .. } => Box::new(HashAggOp {
            exec,
            child: build_node(exec, input, None, az)?,
            groups,
            aggs,
            out: None,
            pos: 0,
        }),
        Plan::GroupAggregate { input, groups, aggs, .. } => Box::new(GroupAggOp {
            child: build_node(exec, input, None, az)?,
            exec,
            groups,
            aggs,
            current: None,
            pending: Vec::new(),
            input_done: false,
            emitted_any: false,
        }),
        Plan::Unique { input, .. } => Box::new(UniqueOp {
            child: build_node(exec, input, None, az)?,
            last: None,
        }),
        Plan::HashDistinct { input, .. } => Box::new(HashDistinctOp {
            exec,
            child: build_node(exec, input, None, az)?,
            seen: HashSet::new(),
        }),
        Plan::HashJoin { left, right, left_key, right_key, residual, left_outer, .. } => {
            Box::new(HashJoinOp {
                exec,
                left: build_node(exec, left, None, az)?,
                right: build_node(exec, right, None, az)?,
                left_key,
                right_key,
                residual: residual.as_ref(),
                left_outer: *left_outer,
                built: None,
                emitted: 0,
                pending: VecDeque::new(),
                pbuf: Vec::new(),
                left_done: false,
            })
        }
        Plan::MergeJoin { left, right, left_key, right_key, residual, .. } => {
            Box::new(MergeJoinOp {
                exec,
                left: build_node(exec, left, None, az)?,
                right: build_node(exec, right, None, az)?,
                left_key,
                right_key,
                residual: residual.as_ref(),
                out: None,
                pos: 0,
            })
        }
        Plan::NestedLoop { left, right, predicate, left_outer, .. } => {
            Box::new(NestedLoopOp {
                exec,
                left: build_node(exec, left, None, az)?,
                right: build_node(exec, right, None, az)?,
                predicate: predicate.as_ref(),
                left_outer: *left_outer,
                right_rows: None,
                emitted: 0,
                pending: VecDeque::new(),
                left_done: false,
            })
        }
        Plan::Values { rows } => Box::new(ValuesOp {
            exec,
            rows,
            pos: 0,
        }),
    };
    Ok(match (node_id, az) {
        (Some(id), Some(az)) => Box::new(AnalyzeOp { id, az, inner: op }),
        _ => op,
    })
}

/// Drain a child operator into a materialized vector (pipeline breakers),
/// charging the intermediate-row cap as the buffer grows.
fn drain_child(
    exec: &Executor<'_>,
    child: &mut (dyn BlockOperator + '_),
) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(block) = child.next_block()? {
        let mut rows = block.take_rows();
        out.append(&mut rows);
        exec.check_limit(out.len())?;
        if let Some(st) = exec.stats {
            st.note_resident(out.len() as u64);
        }
    }
    Ok(out)
}

/// Move up to `n` front rows of a buffered result into a block.
fn chunk_from(buf: &mut [Row], pos: &mut usize, n: usize) -> Option<RowBlock> {
    if *pos >= buf.len() {
        return None;
    }
    let end = (*pos + n.max(1)).min(buf.len());
    let mut out = Vec::with_capacity(end - *pos);
    for row in &mut buf[*pos..end] {
        out.push(std::mem::take(row));
    }
    *pos = end;
    Some(RowBlock::from_rows(out))
}

// ---------------------------------------------------------------------------
// Parallel-breaker infrastructure (DESIGN.md §15)

fn env_knob(name: &str) -> bool {
    std::env::var(name).map(|v| !v.is_empty() && v != "0").unwrap_or(true)
}

/// `SINEW_PARALLEL_JOIN=0` restores the serial hash-join build and probe.
pub(crate) fn parallel_join_enabled() -> bool {
    env_knob("SINEW_PARALLEL_JOIN")
}

/// `SINEW_PARALLEL_AGG=0` restores the serial hash aggregation *and* the
/// serial sort (the sort breaker rides the aggregation knob).
pub(crate) fn parallel_agg_enabled() -> bool {
    env_knob("SINEW_PARALLEL_AGG")
}

/// Below this many buffered rows a breaker stays serial: thread spawn
/// would cost more than the work saved.
const MIN_PARALLEL_ROWS: usize = 1024;

/// Per-worker morsel size for the buffered probe/pre-aggregation waves.
const BREAKER_MORSEL: usize = 512;

/// Number of build/merge partitions for `threads` workers.
fn partition_count(threads: usize) -> usize {
    threads.max(1).next_power_of_two().min(64)
}

/// Deterministic key → partition routing. One instance per operator: the
/// build and probe phases of the same join must agree on the routing, but
/// the routing itself need not be stable across operator instances — only
/// the stitched output order is, and that never depends on which
/// partition a key landed in.
struct Partitioner {
    hasher: std::collections::hash_map::RandomState,
    mask: u64,
}

impl Partitioner {
    fn new(partitions: usize) -> Partitioner {
        debug_assert!(partitions.is_power_of_two());
        Partitioner { hasher: Default::default(), mask: partitions as u64 - 1 }
    }

    fn of<K: std::hash::Hash + ?Sized>(&self, key: &K) -> usize {
        use std::hash::BuildHasher;
        (self.hasher.hash_one(key) & self.mask) as usize
    }
}

/// A boxed unit of parallel work for [`run_tasks`].
type Task<'env, R> = Box<dyn FnOnce() -> DbResult<R> + Send + 'env>;

/// One sort run entry: the evaluated sort keys plus the row's global
/// index, the tiebreaker that makes the parallel sort exactly stable.
type SortRun = Vec<(Vec<Datum>, u64)>;

/// Run one scoped worker per task and return results in task order.
/// Callers propagate the first error in task order, so a failing parallel
/// wave reports the same (earliest-input) error the serial path would;
/// worker panics surface as clean `DbError::Eval`s like the parallel scan.
fn run_tasks<'env, R: Send + 'env>(tasks: Vec<Task<'env, R>>) -> Vec<DbResult<R>> {
    let mut results = Vec::with_capacity(tasks.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                s.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).unwrap_or_else(
                        |payload| {
                            Err(DbError::Eval(format!(
                                "parallel worker panicked: {}",
                                panic_message(payload.as_ref())
                            )))
                        },
                    )
                })
            })
            .collect();
        for h in handles {
            results.push(match h.join() {
                Ok(r) => r,
                Err(payload) => Err(DbError::Eval(format!(
                    "parallel worker panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            });
        }
    });
    results
}

/// Split `rows` into `workers` contiguous chunks of roughly equal size
/// (at least one row each). Chunk boundaries never affect output — each
/// parallel breaker stitches per-chunk results back in chunk order.
fn even_chunks(rows: &[Row], workers: usize) -> Vec<&[Row]> {
    let per = rows.len().div_ceil(workers.max(1)).max(1);
    rows.chunks(per).collect()
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE instrumentation

/// Collects per-plan-node actuals during an `EXPLAIN ANALYZE` run. Node
/// ids are assigned by `build_node` in pre-order (node, left, right) —
/// the exact walk `Plan::explain_analyze` uses to render, so slot `i`
/// always describes the `i`-th rendered plan line.
pub(crate) struct AnalyzeCtx {
    nodes: RefCell<Vec<NodeActuals>>,
}

impl AnalyzeCtx {
    pub(crate) fn new() -> AnalyzeCtx {
        AnalyzeCtx { nodes: RefCell::new(Vec::new()) }
    }

    fn register(&self) -> usize {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(NodeActuals::default());
        nodes.len() - 1
    }

    fn record(&self, id: usize, rows: u64, blocks: u64, ns: u64) {
        let mut nodes = self.nodes.borrow_mut();
        let slot = &mut nodes[id];
        slot.rows += rows;
        slot.blocks += blocks;
        slot.ns += ns;
    }

    pub(crate) fn take_nodes(self) -> Vec<NodeActuals> {
        self.nodes.into_inner()
    }
}

/// Wraps one operator during `EXPLAIN ANALYZE`: counts emitted rows and
/// blocks, and accumulates wall time spent inside `open`/`next_block` —
/// inclusive of children, Postgres-style.
struct AnalyzeOp<'x> {
    id: usize,
    az: &'x AnalyzeCtx,
    inner: Box<dyn BlockOperator + 'x>,
}

impl BlockOperator for AnalyzeOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        let start = Instant::now();
        let result = self.inner.open();
        self.az.record(self.id, 0, 0, start.elapsed().as_nanos() as u64);
        result
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let start = Instant::now();
        let result = self.inner.next_block();
        let ns = start.elapsed().as_nanos() as u64;
        match &result {
            Ok(Some(block)) => self.az.record(self.id, block.len() as u64, 1, ns),
            _ => self.az.record(self.id, 0, 0, ns),
        }
        result
    }

    fn close(&mut self) {
        self.inner.close();
    }

    fn resident_rows(&self) -> u64 {
        self.inner.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Scans

/// Serial heap scan with an embedded filter. When the source supports
/// range scans, each block resumes at the row id after the last one
/// emitted, and the scan callback stops (early-stop into `Heap::scan`)
/// the moment the block is full. Sources without range support fall back
/// to a one-shot buffered scan.
struct SeqScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    ctx: EvalCtx,
    next_rowid: u64,
    ranged: bool,
    buffered: Option<VecDeque<Row>>,
    done: bool,
}

impl<'x, 'a> SeqScanOp<'x, 'a> {
    fn new(
        exec: &'x Executor<'a>,
        table: &'x str,
        filter: Option<&'x PhysExpr>,
        needed: Option<&'x [String]>,
    ) -> SeqScanOp<'x, 'a> {
        SeqScanOp {
            exec,
            table,
            filter,
            needed,
            ctx: EvalCtx::new(),
            next_rowid: 0,
            ranged: false,
            buffered: None,
            done: false,
        }
    }
}

impl BlockOperator for SeqScanOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        if let Some(st) = self.exec.stats {
            st.serial_scans.fetch_add(1, Ordering::Relaxed);
        }
        self.ranged = self.exec.source.high_water(self.table)?.is_some();
        Ok(())
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.done {
            return Ok(None);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        if !self.ranged {
            // One-shot path for sources without resumable range scans.
            if self.buffered.is_none() {
                let mut buf = VecDeque::new();
                let ctx = &mut self.ctx;
                let filter = self.filter;
                let exec = self.exec;
                if let Some(f) = filter {
                    f.begin_block();
                }
                let res = exec.source.scan_table(self.table, self.needed, &mut |row| {
                    let keep = match filter {
                        Some(f) => {
                            ctx.reset();
                            f.eval_bool_ctx(&row, ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        buf.push_back(row);
                        exec.check_limit(buf.len())?;
                    }
                    Ok(true)
                });
                if let Some(f) = filter {
                    f.end_block();
                }
                res?;
                self.buffered = Some(buf);
            }
            let buf = self.buffered.as_mut().unwrap();
            if buf.is_empty() {
                self.done = true;
                return Ok(None);
            }
            let n = buf.len().min(block_rows);
            let out: Vec<Row> = buf.drain(..n).collect();
            return Ok(Some(RowBlock::from_rows(out)));
        }
        let mut out: Vec<Row> = Vec::with_capacity(block_rows);
        let mut resume = self.next_rowid;
        {
            let ctx = &mut self.ctx;
            let filter = self.filter;
            if let Some(f) = filter {
                f.begin_block();
            }
            let res = self.exec.source.scan_table_range(
                self.table,
                self.needed,
                self.next_rowid,
                u64::MAX,
                &mut |row| {
                    // Scan rows end with their rowid; remember where to
                    // resume the next block.
                    let rid = match row.last() {
                        Some(Datum::Int(r)) => *r as u64,
                        _ => {
                            return Err(DbError::Eval(
                                "scan row missing trailing rowid".into(),
                            ))
                        }
                    };
                    resume = rid + 1;
                    let keep = match filter {
                        Some(f) => {
                            ctx.reset();
                            f.eval_bool_ctx(&row, ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        out.push(row);
                    }
                    Ok(out.len() < block_rows)
                },
            );
            if let Some(f) = filter {
                f.end_block();
            }
            res?;
        }
        self.next_rowid = resume;
        if out.len() < block_rows {
            // The callback never asked to stop, so the scan is exhausted.
            self.done = true;
        }
        if out.is_empty() {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(RowBlock::from_rows(out)))
    }
}

enum IndexState<'x, 'a> {
    Init,
    Fetching { rowids: Vec<u64>, pos: usize },
    /// The index disappeared between planning and execution: degrade to a
    /// sequential scan with the same filter (identical output).
    Fallback(SeqScanOp<'x, 'a>),
    Done,
}

/// Secondary-index access: probe once (optionally capped, satellite 1),
/// sort rowids so output matches heap-scan order, then fetch in
/// block-sized windows — rowids past an early-stop are never fetched.
struct IndexScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    column: &'x str,
    lo: Option<&'x Datum>,
    lo_inc: bool,
    hi: Option<&'x Datum>,
    hi_inc: bool,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    cap: Option<u64>,
    ctx: EvalCtx,
    state: IndexState<'x, 'a>,
}

impl<'x, 'a> IndexScanOp<'x, 'a> {
    fn probe(&mut self) -> DbResult<()> {
        let rowids = self.exec.source.index_lookup(
            self.table,
            self.column,
            self.lo,
            self.lo_inc,
            self.hi,
            self.hi_inc,
            self.cap,
        )?;
        match rowids {
            Some(mut rowids) => {
                if let Some(st) = self.exec.stats {
                    st.index_scans.fetch_add(1, Ordering::Relaxed);
                }
                // Heap scans emit rows in rowid order; match it exactly.
                rowids.sort_unstable();
                self.state = IndexState::Fetching { rowids, pos: 0 };
            }
            None => {
                let mut op = SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = IndexState::Fallback(op);
            }
        }
        Ok(())
    }
}

impl BlockOperator for IndexScanOp<'_, '_> {
    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if matches!(self.state, IndexState::Init) {
            self.probe()?;
        }
        match &mut self.state {
            IndexState::Fetching { rowids, pos } => {
                let block_rows = self.exec.limits.block_rows.max(1);
                let ctx = &mut self.ctx;
                let filter = self.filter;
                while *pos < rowids.len() {
                    let end = (*pos + block_rows).min(rowids.len());
                    let window = &rowids[*pos..end];
                    *pos = end;
                    let mut out: Vec<Row> = Vec::with_capacity(window.len());
                    if let Some(f) = filter {
                        f.begin_block();
                    }
                    let res = self.exec.source.fetch_rows(
                        self.table,
                        self.needed,
                        window,
                        &mut |row| {
                            let keep = match filter {
                                Some(f) => {
                                    ctx.reset();
                                    f.eval_bool_ctx(&row, ctx)?
                                }
                                None => true,
                            };
                            if keep {
                                out.push(row);
                            }
                            Ok(true)
                        },
                    );
                    if let Some(f) = filter {
                        f.end_block();
                    }
                    res?;
                    if !out.is_empty() {
                        return Ok(Some(RowBlock::from_rows(out)));
                    }
                }
                self.state = IndexState::Done;
                Ok(None)
            }
            IndexState::Fallback(op) => op.next_block(),
            IndexState::Done => Ok(None),
            IndexState::Init => unreachable!("probe resolves Init"),
        }
    }

    fn close(&mut self) {
        if let IndexState::Fallback(op) = &mut self.state {
            op.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar scan

enum ColumnarState<'x, 'a> {
    Init,
    Scanning { n_segments: usize, next_seg: usize, wave: usize, n_workers: usize },
    /// Segments vanished (demotion) between planning and execution:
    /// degrade to a sequential scan with the same filter (identical
    /// output).
    Fallback(SeqScanOp<'x, 'a>),
    Done,
}

/// Columnar segment scan: fills blocks column-at-a-time from the table's
/// column stores. Each segment runs the vectorized bound kernel (when the
/// plan carries a sargable bound column) producing a selection vector,
/// gathers only `needed` columns for the selected slots, then re-applies
/// the full residual predicate per block unless the bounds are exact.
/// Segments are dispatched in morsel waves like [`ParallelScanOp`]
/// (ramping 1, 2, 4, … workers, stitched in segment order), so output is
/// byte-identical to the heap scan at any thread count and a LIMIT skips
/// the waves it never reaches.
/// One segment's scan output with the residual filter already applied:
/// surviving rows plus the segment's kernel/pruned/exact stats. `None`
/// means the column store was demoted mid-scan.
type SegScanResult = Result<Option<crate::exec::SegScan>, DbError>;

struct ColumnarScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    column: Option<&'x str>,
    lo: Option<&'x Datum>,
    lo_inc: bool,
    hi: Option<&'x Datum>,
    hi_inc: bool,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    exact_bounds: bool,
    /// Planner proof that the bound literals cover the whole predicate in
    /// one exactness class; combined with a segment's `exact` flag it
    /// skips the residual filter for that segment.
    bounds_cover: bool,
    pending: VecDeque<Row>,
    /// Rows already handed downstream — the resume point if a mid-scan
    /// demotion forces a restart from the heap.
    emitted: u64,
    /// Rows the fallback scan must drop before producing output (set to
    /// `emitted` when a mid-scan demotion triggers the restart).
    skip: u64,
    state: ColumnarState<'x, 'a>,
}

impl ColumnarScanOp<'_, '_> {
    /// Scan one segment and apply the residual filter, returning the
    /// surviving rows plus the kernel / pruned stats.
    fn scan_segment(&self, seg: usize) -> SegScanResult {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.exec.source.columnar_scan_segment(
                self.table,
                self.needed,
                self.column,
                self.lo,
                self.lo_inc,
                self.hi,
                self.hi_inc,
                seg,
            )
        }));
        let mut scan = match result {
            Ok(Ok(Some(s))) => s,
            Ok(Ok(None)) => return Ok(None),
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(DbError::Eval(format!(
                    "columnar scan worker panicked: {}",
                    panic_message(payload.as_ref())
                )))
            }
        };
        let skip_residual = self.exact_bounds || (self.bounds_cover && scan.exact);
        if let Some(f) = self.filter {
            if !skip_residual && !scan.rows.is_empty() {
                let mut ctx = EvalCtx::new();
                f.begin_block();
                let keep = f.filter_block(&scan.rows, None, &mut ctx);
                f.end_block();
                let keep = keep?;
                let mut rows = std::mem::take(&mut scan.rows);
                scan.rows =
                    keep.iter().map(|&i| std::mem::take(&mut rows[i as usize])).collect();
            }
        }
        Ok(Some(scan))
    }

    fn run_wave(&mut self) -> DbResult<()> {
        let ColumnarState::Scanning { n_segments, next_seg, wave, n_workers } = self.state
        else {
            return Ok(());
        };
        let remaining = n_segments - next_seg;
        let k = wave.min(remaining).min(n_workers);
        let mut results: Vec<SegScanResult> = Vec::with_capacity(k);
        if k <= 1 || n_workers <= 1 {
            for i in 0..k {
                results.push(self.scan_segment(next_seg + i));
            }
        } else {
            let this = &*self;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| s.spawn(move || this.scan_segment(next_seg + i)))
                    .collect();
                for h in handles {
                    results.push(match h.join() {
                        Ok(r) => r,
                        Err(payload) => Err(DbError::Eval(format!(
                            "columnar scan worker panicked: {}",
                            panic_message(payload.as_ref())
                        ))),
                    });
                }
            });
        }
        // Results are in segment order; the lowest failing segment wins.
        for r in results {
            let Some(scan) = r? else {
                // The store was demoted mid-scan. The heap is authoritative
                // and produces the identical row sequence, so restart as a
                // sequential scan and skip what already left this operator;
                // buffered-but-unemitted rows are simply reproduced.
                self.pending.clear();
                self.skip = self.emitted;
                let mut op =
                    SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = ColumnarState::Fallback(op);
                return Ok(());
            };
            if let Some(st) = self.exec.stats {
                if scan.pruned {
                    st.segments_pruned.fetch_add(1, Ordering::Relaxed);
                } else {
                    st.record_decoded(scan.kernel.decoded);
                    st.record_kernels(&scan.kernel);
                }
            }
            self.pending.extend(scan.rows);
            self.exec.check_limit(self.pending.len())?;
        }
        let done = next_seg + k >= n_segments;
        self.state = if done {
            ColumnarState::Done
        } else {
            ColumnarState::Scanning {
                n_segments,
                next_seg: next_seg + k,
                wave: (wave * 2).min(n_workers),
                n_workers,
            }
        };
        Ok(())
    }
}

impl BlockOperator for ColumnarScanOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        let meta = self.exec.source.columnar_meta(self.table, self.needed, self.column)?;
        match meta {
            Some(meta) => {
                if let Some(st) = self.exec.stats {
                    st.columnar_scans.fetch_add(1, Ordering::Relaxed);
                }
                self.state = ColumnarState::Scanning {
                    n_segments: meta.n_segments,
                    next_seg: 0,
                    wave: 1,
                    n_workers: self.exec.limits.exec_threads.max(1),
                };
            }
            None => {
                let mut op = SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = ColumnarState::Fallback(op);
            }
        }
        Ok(())
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let block_rows = self.exec.limits.block_rows.max(1);
        loop {
            if self.pending.len() >= block_rows {
                break;
            }
            if matches!(self.state, ColumnarState::Scanning { .. }) {
                self.run_wave()?;
                continue;
            }
            let ColumnarState::Fallback(op) = &mut self.state else { break };
            let Some(block) = op.next_block()? else { break };
            for row in block.take_rows() {
                if self.skip > 0 {
                    self.skip -= 1;
                } else {
                    self.pending.push_back(row);
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        self.emitted += n as u64;
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        if let ColumnarState::Fallback(op) = &mut self.state {
            op.close();
        }
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        self.pending.len() as u64
    }
}

// ---------------------------------------------------------------------------
// Covering index-only scan

enum IndexOnlyState<'x, 'a> {
    Init,
    Emitting { entries: Vec<(Datum, u64)>, n_live_cols: usize, key_slot: usize, pos: usize },
    /// The index disappeared between planning and execution.
    Fallback(SeqScanOp<'x, 'a>),
    Done,
}

/// Covering index access: one B-tree probe yields the (key, rowid)
/// entries themselves — the scan output is synthesized from them with
/// zero heap page reads. Entries arrive sorted by rowid, so output order
/// matches the heap scan exactly.
struct IndexOnlyScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    column: &'x str,
    lo: Option<&'x Datum>,
    lo_inc: bool,
    hi: Option<&'x Datum>,
    hi_inc: bool,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    cap: Option<u64>,
    exact_bounds: bool,
    ctx: EvalCtx,
    state: IndexOnlyState<'x, 'a>,
}

impl IndexOnlyScanOp<'_, '_> {
    fn probe(&mut self) -> DbResult<()> {
        let probe = self.exec.source.index_only_probe(
            self.table,
            self.column,
            self.lo,
            self.lo_inc,
            self.hi,
            self.hi_inc,
            self.cap,
        )?;
        match probe {
            Some(p) => {
                if let Some(st) = self.exec.stats {
                    st.index_only_scans.fetch_add(1, Ordering::Relaxed);
                }
                self.state = IndexOnlyState::Emitting {
                    entries: p.entries,
                    n_live_cols: p.n_live_cols,
                    key_slot: p.key_slot,
                    pos: 0,
                };
            }
            None => {
                let mut op = SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = IndexOnlyState::Fallback(op);
            }
        }
        Ok(())
    }
}

impl BlockOperator for IndexOnlyScanOp<'_, '_> {
    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if matches!(self.state, IndexOnlyState::Init) {
            self.probe()?;
        }
        match &mut self.state {
            IndexOnlyState::Emitting { entries, n_live_cols, key_slot, pos } => {
                let block_rows = self.exec.limits.block_rows.max(1);
                let filter = self.filter;
                let exact = self.exact_bounds;
                while *pos < entries.len() {
                    let end = (*pos + block_rows).min(entries.len());
                    let mut rows: Vec<Row> = Vec::with_capacity(end - *pos);
                    for (key, rowid) in &mut entries[*pos..end] {
                        let mut row: Row = vec![Datum::Null; *n_live_cols + 1];
                        row[*key_slot] = std::mem::replace(key, Datum::Null);
                        row[*n_live_cols] = Datum::Int(*rowid as i64);
                        rows.push(row);
                    }
                    *pos = end;
                    let out: Vec<Row> = match filter {
                        Some(f) if !exact => {
                            f.begin_block();
                            let keep = f.filter_block(&rows, None, &mut self.ctx);
                            f.end_block();
                            let keep = keep?;
                            keep.iter()
                                .map(|&i| std::mem::take(&mut rows[i as usize]))
                                .collect()
                        }
                        _ => rows,
                    };
                    if !out.is_empty() {
                        return Ok(Some(RowBlock::from_rows(out)));
                    }
                }
                self.state = IndexOnlyState::Done;
                Ok(None)
            }
            IndexOnlyState::Fallback(op) => op.next_block(),
            IndexOnlyState::Done => Ok(None),
            IndexOnlyState::Init => unreachable!("probe resolves Init"),
        }
    }

    fn close(&mut self) {
        if let IndexOnlyState::Fallback(op) = &mut self.state {
            op.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Row-at-a-time streaming operators

struct FilterOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    predicate: &'x PhysExpr,
    ctx: EvalCtx,
}

impl BlockOperator for FilterOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        loop {
            let Some(mut block) = self.child.next_block()? else { return Ok(None) };
            let keep = self.predicate.filter_block(
                &block.rows,
                block.sel.as_deref(),
                &mut self.ctx,
            )?;
            if !keep.is_empty() {
                block.sel = Some(keep);
                return Ok(Some(block));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

struct ProjectOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    exprs: &'x [PhysExpr],
    ctx: EvalCtx,
}

impl BlockOperator for ProjectOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let Some(block) = self.child.next_block()? else { return Ok(None) };
        let mut out: Vec<Row> = Vec::with_capacity(block.len());
        for e in self.exprs {
            e.begin_block();
        }
        // One context reset per *row* across all projections: the k
        // `array_get(extract_keys(...), i)` outputs of a fused extraction
        // share a single document decode per row (same as the oracle).
        let ctx = &mut self.ctx;
        let exprs = self.exprs;
        let res = block.for_each_row(|row| {
            ctx.reset();
            let mut new_row = Vec::with_capacity(exprs.len());
            for e in exprs {
                new_row.push(e.eval_ctx(row, ctx)?);
            }
            out.push(new_row);
            Ok(())
        });
        for e in self.exprs {
            e.end_block();
        }
        res?;
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

struct LimitOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    remaining: u64,
    stats: Option<&'x ExecStats>,
}

impl BlockOperator for LimitOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(mut block) = self.child.next_block()? else {
            self.remaining = 0;
            return Ok(None);
        };
        let n = block.len() as u64;
        if n >= self.remaining {
            block.truncate(self.remaining as usize);
            self.remaining = 0;
            // The stream ends here without exhausting the child: the
            // early-stop that makes LIMIT O(limit), not O(table).
            if let Some(st) = self.stats {
                st.early_stops.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.remaining -= n;
        }
        Ok(Some(block))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

/// DISTINCT over sorted input: drop rows equal to their predecessor.
struct UniqueOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    last: Option<Row>,
}

impl BlockOperator for UniqueOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        loop {
            let Some(mut block) = self.child.next_block()? else { return Ok(None) };
            let mut keep: Vec<u32> = Vec::new();
            let idxs: Vec<u32> = match &block.sel {
                Some(s) => s.clone(),
                None => (0..block.rows.len() as u32).collect(),
            };
            for i in idxs {
                let row = &block.rows[i as usize];
                if self.last.as_ref().map(|p| rows_equal(p, row)) != Some(true) {
                    self.last = Some(row.clone());
                    keep.push(i);
                }
            }
            if !keep.is_empty() {
                block.sel = Some(keep);
                return Ok(Some(block));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

/// DISTINCT over unsorted input. Output order equals input order (first
/// occurrence wins), so it is mode- and block-size-independent.
struct HashDistinctOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    seen: HashSet<Vec<GroupKey>>,
}

impl BlockOperator for HashDistinctOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        loop {
            let Some(mut block) = self.child.next_block()? else { return Ok(None) };
            let mut keep: Vec<u32> = Vec::new();
            let idxs: Vec<u32> = match &block.sel {
                Some(s) => s.clone(),
                None => (0..block.rows.len() as u32).collect(),
            };
            for i in idxs {
                let row = &block.rows[i as usize];
                let key: Vec<GroupKey> = row.iter().map(Datum::group_key).collect();
                if self.seen.insert(key) {
                    keep.push(i);
                }
            }
            self.exec.check_limit(self.seen.len())?;
            if !keep.is_empty() {
                block.sel = Some(keep);
                return Ok(Some(block));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.seen.len() as u64 + self.child.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers

/// Sort: drains its child, sorts once, then emits block-sized chunks.
struct SortOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    keys: &'x [SortKey],
    buf: Option<Vec<Row>>,
    pos: usize,
}

impl SortOp<'_, '_> {
    /// Sort the drained buffer: serial [`sort_rows`] when small or the
    /// parallel knob is off; otherwise per-chunk run sorts on scoped
    /// workers followed by a k-way merge. Runs and merge both compare
    /// (sort keys, original index) — a total order whose result is
    /// exactly the serial *stable* sort at any thread count.
    fn sort_buffer(&self, rows: &mut Vec<Row>) -> DbResult<()> {
        let threads = self.exec.limits.exec_threads.max(1);
        if !parallel_agg_enabled() || threads <= 1 || rows.len() < MIN_PARALLEL_ROWS {
            return sort_rows(rows, self.keys);
        }
        let keys = self.keys;
        let chunks = even_chunks(rows, threads);
        let mut tasks: Vec<Task<'_, SortRun>> = Vec::with_capacity(chunks.len());
        let mut base = 0u64;
        for chunk in chunks {
            let start = base;
            base += chunk.len() as u64;
            tasks.push(Box::new(move || {
                let mut run = Vec::with_capacity(chunk.len());
                for (i, row) in chunk.iter().enumerate() {
                    // Workers eval keys in row order, so a failing wave's
                    // first-in-chunk-order error is the serial error.
                    run.push((eval_sort_keys(row, keys)?, start + i as u64));
                }
                run.sort_by(|(ka, ia), (kb, ib)| cmp_sort_keys(ka, kb, keys).then(ia.cmp(ib)));
                Ok(run)
            }));
        }
        let mut runs = Vec::with_capacity(threads);
        for r in run_tasks(tasks) {
            runs.push(r?);
        }
        if let Some(st) = self.exec.stats {
            st.parallel_sorts.fetch_add(1, Ordering::Relaxed);
        }
        // K-way merge: k ≤ threads is small, so a linear scan over the
        // run heads beats a heap.
        let mut cursors = vec![0usize; runs.len()];
        let mut order: Vec<u64> = Vec::with_capacity(rows.len());
        loop {
            let mut best: Option<usize> = None;
            for (r, run) in runs.iter().enumerate() {
                let Some(head) = run.get(cursors[r]) else { continue };
                best = match best {
                    None => Some(r),
                    Some(b) => {
                        let bh = &runs[b][cursors[b]];
                        if cmp_sort_keys(&head.0, &bh.0, keys).then(head.1.cmp(&bh.1))
                            == std::cmp::Ordering::Less
                        {
                            Some(r)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let Some(b) = best else { break };
            order.push(runs[b][cursors[b]].1);
            cursors[b] += 1;
        }
        let mut sorted = Vec::with_capacity(rows.len());
        for &idx in &order {
            sorted.push(std::mem::take(&mut rows[idx as usize]));
        }
        *rows = sorted;
        Ok(())
    }
}

impl BlockOperator for SortOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.buf.is_none() {
            let mut rows = drain_child(self.exec, self.child.as_mut())?;
            self.sort_buffer(&mut rows)?;
            self.buf = Some(rows);
            self.pos = 0;
        }
        let block_rows = self.exec.limits.block_rows;
        Ok(chunk_from(self.buf.as_mut().unwrap(), &mut self.pos, block_rows))
    }

    fn close(&mut self) {
        self.child.close();
        self.buf = None;
    }

    fn resident_rows(&self) -> u64 {
        let buffered = self
            .buf
            .as_ref()
            .map(|b| (b.len() - self.pos) as u64)
            .unwrap_or(0);
        buffered + self.child.resident_rows()
    }
}

/// First-occurrence-ordered aggregation table: groups are emitted in the
/// order their first input row arrived — the same deterministic order the
/// materializing oracle and the parallel pre-aggregation path produce.
struct AggTable {
    index: HashMap<Vec<GroupKey>, usize>,
    entries: Vec<(Row, Vec<Accumulator>)>,
}

impl AggTable {
    fn new() -> AggTable {
        AggTable { index: HashMap::new(), entries: Vec::new() }
    }

    fn feed(&mut self, groups: &[PhysExpr], aggs: &[AggSpec], row: &Row) -> DbResult<()> {
        let mut key_vals = Vec::with_capacity(groups.len());
        for g in groups {
            key_vals.push(g.eval(row)?);
        }
        let key: Vec<GroupKey> = key_vals.iter().map(Datum::group_key).collect();
        let index = &mut self.index;
        let entries = &mut self.entries;
        let slot = *index.entry(key).or_insert_with(|| {
            entries.push((key_vals.clone(), aggs.iter().map(new_acc).collect()));
            entries.len() - 1
        });
        feed_accs(&mut self.entries[slot].1, aggs, row)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One partition of the parallel aggregation's global state. Entries keep
/// the `(chunk_seq << 32) | local_idx` rank of the group's first
/// occurrence, so concatenating all partitions and sorting by rank
/// recovers global first-occurrence order regardless of which partition
/// a key hashed into.
#[derive(Default)]
struct AggPart {
    index: HashMap<Vec<GroupKey>, usize>,
    entries: Vec<(u64, Vec<GroupKey>, Row, Vec<Accumulator>)>,
}

/// One chunk's pre-aggregated output: `(partition, key, key values,
/// accumulators)` in chunk-first-occurrence order, plus whether every
/// accumulator may be merged exactly (no float sums, no DISTINCT).
type LocalAggEntries = Vec<(usize, Vec<GroupKey>, Row, Vec<Accumulator>)>;
type LocalAgg = (LocalAggEntries, bool);

/// Collapse partitioned state back into one first-occurrence-ordered
/// table (used both when the input is exhausted and when a float sum
/// forces the sticky serial fallback).
fn collapse_agg_parts(parts: Vec<AggPart>) -> AggTable {
    let mut all: Vec<(u64, Vec<GroupKey>, Row, Vec<Accumulator>)> = Vec::new();
    for part in parts {
        all.extend(part.entries);
    }
    all.sort_by_key(|e| e.0);
    let mut table = AggTable::new();
    for (_, key, key_vals, accs) in all {
        table.index.insert(key, table.entries.len());
        table.entries.push((key_vals, accs));
    }
    table
}

/// Hash aggregation: streams its input (only group state plus at most one
/// wave of buffered rows is resident), then emits the finished groups in
/// first-occurrence order. With threads and the `SINEW_PARALLEL_AGG` knob,
/// buffered rows pre-aggregate thread-locally per chunk and merge
/// partition-wise; the serial fold is byte-identical and handles DISTINCT
/// and float sums (whose addition order must equal input order).
struct HashAggOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    groups: &'x [PhysExpr],
    aggs: &'x [AggSpec],
    out: Option<Vec<Row>>,
    pos: usize,
}

impl HashAggOp<'_, '_> {
    fn fold_input(&mut self) -> DbResult<Vec<(Row, Vec<Accumulator>)>> {
        let threads = self.exec.limits.exec_threads.max(1);
        let can_parallel =
            parallel_agg_enabled() && threads > 1 && self.aggs.iter().all(|a| !a.distinct);
        if can_parallel {
            self.fold_parallel(threads)
        } else {
            self.fold_serial_from(AggTable::new(), Vec::new())
        }
    }

    /// The serial fold: feed `pending` rows (already pulled from the
    /// child by a parallel attempt), then drain the rest of the child.
    fn fold_serial_from(
        &mut self,
        mut table: AggTable,
        pending: Vec<Row>,
    ) -> DbResult<Vec<(Row, Vec<Accumulator>)>> {
        let groups = self.groups;
        let aggs = self.aggs;
        for row in &pending {
            table.feed(groups, aggs, row)?;
        }
        while let Some(block) = self.child.next_block()? {
            let table_ref = &mut table;
            block.for_each_row(|row| table_ref.feed(groups, aggs, row))?;
            self.exec.check_limit(table.len())?;
            if let Some(st) = self.exec.stats {
                st.note_resident(table.len() as u64 + self.child.resident_rows());
            }
        }
        Ok(table.entries)
    }

    /// Partitioned parallel pre-aggregation (DESIGN.md §15): buffer up to
    /// one wave of input rows, pre-aggregate the wave's chunks on scoped
    /// workers, then merge each chunk table into P per-partition global
    /// tables in parallel (each partition is owned by exactly one merge
    /// task, so no locks). Exact merging requires associativity — the
    /// first chunk whose accumulators report inexact (a float SUM/AVG
    /// appeared) aborts the wave and falls back, stickily, to the serial
    /// fold seeded with the exact pre-wave state plus the wave's raw rows.
    fn fold_parallel(&mut self, threads: usize) -> DbResult<Vec<(Row, Vec<Accumulator>)>> {
        let p = partition_count(threads);
        let partitioner = Partitioner::new(p);
        let groups = self.groups;
        let aggs = self.aggs;
        let mut parts: Vec<AggPart> = (0..p).map(|_| AggPart::default()).collect();
        let mut groups_held = 0usize;
        let mut buf: Vec<Row> = Vec::new();
        let mut chunk_seq = 0u64;
        let wave_target = threads * BREAKER_MORSEL;
        let mut input_done = false;
        while !input_done || !buf.is_empty() {
            if !input_done {
                match self.child.next_block()? {
                    Some(block) => buf.extend(block.take_rows()),
                    None => input_done = true,
                }
            }
            self.exec.check_limit(groups_held + buf.len())?;
            if let Some(st) = self.exec.stats {
                st.note_resident(
                    (groups_held + buf.len()) as u64 + self.child.resident_rows(),
                );
            }
            if buf.len() < wave_target && !input_done {
                continue;
            }
            if buf.is_empty() {
                break;
            }
            if buf.len() < MIN_PARALLEL_ROWS {
                // Tiny tail: not worth a wave. Finish serially from the
                // exact merged state.
                return self.fold_serial_from(collapse_agg_parts(parts), std::mem::take(&mut buf));
            }

            // Phase 1: thread-local pre-aggregation, one chunk per worker.
            let chunks = even_chunks(&buf, threads);
            let n_chunks = chunks.len();
            let partitioner_ref = &partitioner;
            let mut tasks: Vec<Box<dyn FnOnce() -> DbResult<LocalAgg> + Send + '_>> =
                Vec::with_capacity(n_chunks);
            for chunk in chunks {
                tasks.push(Box::new(move || {
                    let mut table = AggTable::new();
                    for row in chunk {
                        table.feed(groups, aggs, row)?;
                    }
                    let exact = table
                        .entries
                        .iter()
                        .all(|(_, accs)| accs.iter().all(Accumulator::merge_is_exact));
                    // Re-key entries with their partition; `index` keys
                    // are recovered positionally via drain.
                    let mut keys: Vec<Option<Vec<GroupKey>>> = vec![None; table.entries.len()];
                    for (key, slot) in table.index.drain() {
                        keys[slot] = Some(key);
                    }
                    let local = table
                        .entries
                        .into_iter()
                        .zip(keys)
                        .map(|((key_vals, accs), key)| {
                            let key = key.expect("every entry is indexed");
                            (partitioner_ref.of(&key), key, key_vals, accs)
                        })
                        .collect();
                    Ok((local, exact))
                }));
            }
            let mut locals: Vec<LocalAggEntries> = Vec::with_capacity(n_chunks);
            let mut all_exact = true;
            for r in run_tasks(tasks) {
                let (local, exact) = r?;
                all_exact &= exact;
                locals.push(local);
            }
            if !all_exact {
                // A float sum appeared: its addition order matters, so
                // discard the wave's pre-aggregates and refold this
                // wave's raw rows (and everything after) serially. The
                // pre-wave partition state is exact, i.e. identical to
                // the serial table over the prior rows.
                return self.fold_serial_from(collapse_agg_parts(parts), std::mem::take(&mut buf));
            }

            // Phase 2: partition-wise merge — task `pi` owns `parts[pi]`
            // and walks the chunk tables in chunk order, so within a
            // group accumulators merge in input order.
            let locals_ref = &locals;
            let base_seq = chunk_seq;
            let mut merge_tasks: Vec<Box<dyn FnOnce() -> DbResult<()> + Send + '_>> =
                Vec::with_capacity(p);
            for (pi, part) in parts.iter_mut().enumerate() {
                merge_tasks.push(Box::new(move || {
                    for (ci, local) in locals_ref.iter().enumerate() {
                        for (li, (lp, key, key_vals, accs)) in local.iter().enumerate() {
                            if *lp != pi {
                                continue;
                            }
                            match part.index.get(key) {
                                Some(&slot) => {
                                    for (dst, src) in
                                        part.entries[slot].3.iter_mut().zip(accs)
                                    {
                                        dst.merge(src);
                                    }
                                }
                                None => {
                                    let rank = ((base_seq + ci as u64) << 32) | li as u64;
                                    part.index.insert(key.clone(), part.entries.len());
                                    part.entries.push((
                                        rank,
                                        key.clone(),
                                        key_vals.clone(),
                                        accs.clone(),
                                    ));
                                }
                            }
                        }
                    }
                    Ok(())
                }));
            }
            for r in run_tasks(merge_tasks) {
                r?;
            }
            if let Some(st) = self.exec.stats {
                st.agg_partition_merges.fetch_add(p as u64, Ordering::Relaxed);
            }
            chunk_seq += n_chunks as u64;
            groups_held = parts.iter().map(|part| part.entries.len()).sum();
            buf.clear();
            self.exec.check_limit(groups_held)?;
        }
        Ok(collapse_agg_parts(parts).entries)
    }
}

impl BlockOperator for HashAggOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.out.is_none() {
            let entries = self.fold_input()?;
            let mut out: Vec<Row> = Vec::with_capacity(entries.len());
            if self.groups.is_empty() && entries.is_empty() {
                // Scalar aggregate over empty input still yields one row.
                let accs: Vec<Accumulator> = self.aggs.iter().map(new_acc).collect();
                out.push(finish_group(Vec::new(), &accs));
            } else {
                for (key_vals, accs) in entries {
                    out.push(finish_group(key_vals, &accs));
                }
            }
            self.out = Some(out);
            self.pos = 0;
        }
        let block_rows = self.exec.limits.block_rows;
        Ok(chunk_from(self.out.as_mut().unwrap(), &mut self.pos, block_rows))
    }

    fn close(&mut self) {
        self.child.close();
        self.out = None;
    }

    fn resident_rows(&self) -> u64 {
        let buffered = self
            .out
            .as_ref()
            .map(|b| (b.len() - self.pos) as u64)
            .unwrap_or(0);
        buffered + self.child.resident_rows()
    }
}

/// Group aggregation over sorted input — fully streaming: only the
/// current group's accumulators and the not-yet-emitted finished groups
/// are resident.
struct GroupAggOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    groups: &'x [PhysExpr],
    aggs: &'x [AggSpec],
    current: Option<(Vec<Datum>, Vec<Accumulator>)>,
    pending: Vec<Row>,
    input_done: bool,
    emitted_any: bool,
}

impl BlockOperator for GroupAggOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let block_rows = self.exec.limits.block_rows.max(1);
        while !self.input_done && self.pending.len() < block_rows {
            match self.child.next_block()? {
                Some(block) => {
                    let groups = self.groups;
                    let aggs = self.aggs;
                    let current = &mut self.current;
                    let pending = &mut self.pending;
                    block.for_each_row(|row| {
                        let mut key_vals = Vec::with_capacity(groups.len());
                        for g in groups {
                            key_vals.push(g.eval(row)?);
                        }
                        // `key_cmp`, not `total_cmp`: group boundaries
                        // must match the hash aggregate's canonical
                        // `group_key` exactly (`1` groups with `1.0`,
                        // `2^53+1` does not group with `2^53.0`) so plan
                        // choice never changes the result.
                        let same = current.as_ref().is_some_and(|(k, _)| {
                            k.iter()
                                .zip(&key_vals)
                                .all(|(a, b)| a.key_cmp(b) == std::cmp::Ordering::Equal)
                        });
                        if !same {
                            if let Some((k, accs)) = current.take() {
                                pending.push(finish_group(k, &accs));
                            }
                            *current = Some((key_vals, aggs.iter().map(new_acc).collect()));
                        }
                        if let Some((_, accs)) = current.as_mut() {
                            feed_accs(accs, aggs, row)?;
                        }
                        Ok(())
                    })?;
                }
                None => {
                    self.input_done = true;
                    if let Some((k, accs)) = self.current.take() {
                        self.pending.push(finish_group(k, &accs));
                    } else if self.groups.is_empty() && !self.emitted_any && self.pending.is_empty()
                    {
                        let accs: Vec<Accumulator> = self.aggs.iter().map(new_acc).collect();
                        self.pending.push(finish_group(Vec::new(), &accs));
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        self.emitted_any = true;
        Ok(Some(RowBlock::from_rows(std::mem::take(&mut self.pending))))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.pending.len() as u64 + self.child.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Joins

/// Drained build side of a hash join. `Serial` is the single-map oracle
/// structure; `Partitioned` splits the key → row-index map across P
/// private per-partition tables (DESIGN.md §15). Lookups are equivalent:
/// every key lives in exactly one partition and per-key index lists are
/// in build-row order under both layouts.
enum BuiltSide {
    Serial {
        rows: Vec<Row>,
        table: HashMap<GroupKey, Vec<usize>>,
        width: usize,
    },
    Partitioned {
        rows: Vec<Row>,
        partitioner: Partitioner,
        tables: Vec<HashMap<GroupKey, Vec<usize>>>,
        width: usize,
    },
}

impl BuiltSide {
    fn rows(&self) -> &[Row] {
        match self {
            BuiltSide::Serial { rows, .. } | BuiltSide::Partitioned { rows, .. } => rows,
        }
    }

    fn width(&self) -> usize {
        match self {
            BuiltSide::Serial { width, .. } | BuiltSide::Partitioned { width, .. } => *width,
        }
    }

    fn get(&self, k: &GroupKey) -> Option<&[usize]> {
        match self {
            BuiltSide::Serial { table, .. } => table.get(k).map(Vec::as_slice),
            BuiltSide::Partitioned { partitioner, tables, .. } => {
                tables[partitioner.of(k)].get(k).map(Vec::as_slice)
            }
        }
    }
}

/// Probe one left row against the built side, appending matches (and the
/// left-outer pad) to `pending` in build-row order — the shared inner
/// loop of the serial probe path and the parallel path's tiny-tail flush.
#[allow(clippy::too_many_arguments)]
fn probe_one(
    built: &BuiltSide,
    left_key: &PhysExpr,
    residual: Option<&PhysExpr>,
    left_outer: bool,
    exec: &Executor<'_>,
    emitted: &mut u64,
    pending: &mut VecDeque<Row>,
    lrow: &Row,
) -> DbResult<()> {
    let k = left_key.eval(lrow)?;
    let mut matched = false;
    if !k.is_null() {
        if let Some(idxs) = built.get(&k.group_key()) {
            for &i in idxs {
                let mut joined = lrow.clone();
                joined.extend(built.rows()[i].iter().cloned());
                let keep = match residual {
                    Some(r) => r.eval_bool(&joined)?,
                    None => true,
                };
                if keep {
                    matched = true;
                    pending.push_back(joined);
                    *emitted += 1;
                    exec.check_limit(*emitted as usize)?;
                }
            }
        }
    }
    if left_outer && !matched {
        let mut joined = lrow.clone();
        joined.extend(std::iter::repeat_n(Datum::Null, built.width()));
        pending.push_back(joined);
        *emitted += 1;
        exec.check_limit(*emitted as usize)?;
    }
    Ok(())
}

/// Hash join: the build (right) side is a pipeline breaker, the probe
/// (left) side streams. Join output beyond a block is buffered briefly in
/// `pending` and emitted in block-sized chunks. With threads and the
/// `SINEW_PARALLEL_JOIN` knob the build is partitioned and probe rows are
/// buffered into waves probed by scoped workers, with per-chunk outputs
/// stitched back in chunk order — byte-identical to the serial probe.
struct HashJoinOp<'x, 'a> {
    exec: &'x Executor<'a>,
    left: Box<dyn BlockOperator + 'x>,
    right: Box<dyn BlockOperator + 'x>,
    left_key: &'x PhysExpr,
    right_key: &'x PhysExpr,
    residual: Option<&'x PhysExpr>,
    left_outer: bool,
    built: Option<BuiltSide>,
    /// Cumulative joined rows — charged against the cap exactly like the
    /// oracle's `out.len()`.
    emitted: u64,
    pending: VecDeque<Row>,
    /// Probe rows buffered for the next parallel wave.
    pbuf: Vec<Row>,
    left_done: bool,
}

impl HashJoinOp<'_, '_> {
    /// Drain the right child and build the hash side. With the parallel
    /// knob and threads: evaluate build keys chunk-parallel (phase A),
    /// scatter `(key, row index)` pairs to their partitions serially in
    /// row order (phase B — preserves per-key index order), then build
    /// each partition's private map, in parallel when the build side is
    /// big enough to pay for the spawns (phase C).
    fn build_side(&mut self) -> DbResult<BuiltSide> {
        let right_rows = drain_child(self.exec, self.right.as_mut())?;
        let width = right_rows.first().map(Vec::len).unwrap_or(0);
        if let Some(st) = self.exec.stats {
            st.join_build_rows.fetch_add(right_rows.len() as u64, Ordering::Relaxed);
        }
        let threads = self.exec.limits.exec_threads.max(1);
        if !parallel_join_enabled() || threads <= 1 {
            let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
            for (i, row) in right_rows.iter().enumerate() {
                let k = self.right_key.eval(row)?;
                if k.is_null() {
                    continue; // NULL never joins
                }
                table.entry(k.group_key()).or_default().push(i);
            }
            return Ok(BuiltSide::Serial { rows: right_rows, table, width });
        }
        let p = partition_count(threads);
        let partitioner = Partitioner::new(p);
        let parallel_phases = right_rows.len() >= MIN_PARALLEL_ROWS;
        // Phase A: build-key evaluation (NULL keys never join → None).
        let right_key = self.right_key;
        let keys: Vec<Option<GroupKey>> = if parallel_phases {
            let chunks = even_chunks(&right_rows, threads);
            let mut tasks: Vec<Task<'_, Vec<Option<GroupKey>>>> = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                tasks.push(Box::new(move || {
                    chunk
                        .iter()
                        .map(|row| {
                            let k = right_key.eval(row)?;
                            Ok((!k.is_null()).then(|| k.group_key()))
                        })
                        .collect()
                }));
            }
            let mut keys = Vec::with_capacity(right_rows.len());
            for r in run_tasks(tasks) {
                keys.extend(r?);
            }
            keys
        } else {
            let mut keys = Vec::with_capacity(right_rows.len());
            for row in &right_rows {
                let k = right_key.eval(row)?;
                keys.push((!k.is_null()).then(|| k.group_key()));
            }
            keys
        };
        // Phase B: scatter in row order, so each partition's per-key
        // index lists stay ascending like the serial table's.
        let mut buckets: Vec<Vec<(GroupKey, usize)>> = (0..p).map(|_| Vec::new()).collect();
        for (i, k) in keys.into_iter().enumerate() {
            if let Some(k) = k {
                buckets[partitioner.of(&k)].push((k, i));
            }
        }
        // Phase C: private per-partition builds.
        let build_bucket = |bucket: Vec<(GroupKey, usize)>| {
            let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
            for (k, i) in bucket {
                table.entry(k).or_default().push(i);
            }
            table
        };
        let tables: Vec<HashMap<GroupKey, Vec<usize>>> = if parallel_phases {
            let mut tasks: Vec<Task<'_, HashMap<GroupKey, Vec<usize>>>> = Vec::with_capacity(p);
            for bucket in buckets {
                tasks.push(Box::new(move || Ok(build_bucket(bucket))));
            }
            let mut tables = Vec::with_capacity(p);
            for r in run_tasks(tasks) {
                tables.push(r?);
            }
            tables
        } else {
            buckets.into_iter().map(build_bucket).collect()
        };
        if let Some(st) = self.exec.stats {
            st.join_partitions.fetch_add(p as u64, Ordering::Relaxed);
        }
        Ok(BuiltSide::Partitioned { rows: right_rows, partitioner, tables, width })
    }

    /// Probe the buffered wave. Big waves split into per-worker chunks
    /// whose outputs are stitched back in chunk order; row-cap accounting
    /// goes through a shared budget like the parallel scan's (the error
    /// is identical, though *which* worker trips it first is not
    /// deterministic — only the failure case differs in timing). Tiny
    /// tails probe serially.
    fn probe_wave(&mut self) -> DbResult<()> {
        let buf = std::mem::take(&mut self.pbuf);
        let built = self.built.as_ref().expect("probe runs after build");
        let threads = self.exec.limits.exec_threads.max(1);
        if buf.len() < MIN_PARALLEL_ROWS {
            let emitted = &mut self.emitted;
            let pending = &mut self.pending;
            for lrow in &buf {
                probe_one(
                    built,
                    self.left_key,
                    self.residual,
                    self.left_outer,
                    self.exec,
                    emitted,
                    pending,
                    lrow,
                )?;
            }
            return Ok(());
        }
        let chunks = even_chunks(&buf, threads);
        let budget = AtomicU64::new(self.emitted);
        let budget_ref = &budget;
        let max_rows = self.exec.limits.max_intermediate_rows;
        let left_key = self.left_key;
        let residual = self.residual;
        let left_outer = self.left_outer;
        let mut tasks: Vec<Box<dyn FnOnce() -> DbResult<Vec<Row>> + Send + '_>> =
            Vec::with_capacity(chunks.len());
        for chunk in chunks {
            tasks.push(Box::new(move || {
                let mut out: Vec<Row> = Vec::new();
                for lrow in chunk {
                    let k = left_key.eval(lrow)?;
                    let mut matched = false;
                    if !k.is_null() {
                        if let Some(idxs) = built.get(&k.group_key()) {
                            for &i in idxs {
                                let mut joined = lrow.clone();
                                joined.extend(built.rows()[i].iter().cloned());
                                let keep = match residual {
                                    Some(r) => r.eval_bool(&joined)?,
                                    None => true,
                                };
                                if keep {
                                    matched = true;
                                    if budget_ref.fetch_add(1, Ordering::Relaxed) + 1 > max_rows
                                    {
                                        return Err(DbError::ResourceExhausted(format!(
                                            "intermediate result exceeded {max_rows} rows"
                                        )));
                                    }
                                    out.push(joined);
                                }
                            }
                        }
                    }
                    if left_outer && !matched {
                        let mut joined = lrow.clone();
                        joined.extend(std::iter::repeat_n(Datum::Null, built.width()));
                        if budget_ref.fetch_add(1, Ordering::Relaxed) + 1 > max_rows {
                            return Err(DbError::ResourceExhausted(format!(
                                "intermediate result exceeded {max_rows} rows"
                            )));
                        }
                        out.push(joined);
                    }
                }
                Ok(out)
            }));
        }
        let results = run_tasks(tasks);
        // Stitch in chunk order; the lowest failing chunk wins, matching
        // the serial path's earliest-row error.
        for r in results {
            let rows = r?;
            self.emitted += rows.len() as u64;
            self.pending.extend(rows);
        }
        Ok(())
    }
}

impl BlockOperator for HashJoinOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.built.is_none() {
            self.built = Some(self.build_side()?);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        let parallel_probe =
            matches!(self.built, Some(BuiltSide::Partitioned { .. }));
        if parallel_probe {
            let wave_target = self.exec.limits.exec_threads.max(1) * BREAKER_MORSEL;
            while self.pending.len() < block_rows && !self.left_done {
                match self.left.next_block()? {
                    Some(block) => self.pbuf.extend(block.take_rows()),
                    None => self.left_done = true,
                }
                if self.pbuf.len() >= wave_target || (self.left_done && !self.pbuf.is_empty()) {
                    self.probe_wave()?;
                }
            }
        } else {
            while self.pending.len() < block_rows && !self.left_done {
                let Some(block) = self.left.next_block()? else {
                    self.left_done = true;
                    break;
                };
                let built = self.built.as_ref().unwrap();
                let left_key = self.left_key;
                let residual = self.residual;
                let left_outer = self.left_outer;
                let exec = self.exec;
                let emitted = &mut self.emitted;
                let pending = &mut self.pending;
                block.for_each_row(|lrow| {
                    probe_one(
                        built, left_key, residual, left_outer, exec, emitted, pending, lrow,
                    )
                })?;
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.built = None;
        self.pending.clear();
        self.pbuf.clear();
    }

    fn resident_rows(&self) -> u64 {
        let built = self.built.as_ref().map(|b| b.rows().len() as u64).unwrap_or(0);
        built
            + self.pending.len() as u64
            + self.pbuf.len() as u64
            + self.left.resident_rows()
            + self.right.resident_rows()
    }
}

/// Merge join: both (sorted) sides are pipeline breakers — they drain,
/// then the oracle's merge logic runs once and the result streams out.
struct MergeJoinOp<'x, 'a> {
    exec: &'x Executor<'a>,
    left: Box<dyn BlockOperator + 'x>,
    right: Box<dyn BlockOperator + 'x>,
    left_key: &'x PhysExpr,
    right_key: &'x PhysExpr,
    residual: Option<&'x PhysExpr>,
    out: Option<Vec<Row>>,
    pos: usize,
}

impl BlockOperator for MergeJoinOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.out.is_none() {
            let left_rows = drain_child(self.exec, self.left.as_mut())?;
            let right_rows = drain_child(self.exec, self.right.as_mut())?;
            let joined = self.exec.merge_join_rows(
                &left_rows,
                &right_rows,
                self.left_key,
                self.right_key,
                self.residual,
            )?;
            self.out = Some(joined);
            self.pos = 0;
        }
        let block_rows = self.exec.limits.block_rows;
        Ok(chunk_from(self.out.as_mut().unwrap(), &mut self.pos, block_rows))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.out = None;
    }

    fn resident_rows(&self) -> u64 {
        let buffered = self
            .out
            .as_ref()
            .map(|b| (b.len() - self.pos) as u64)
            .unwrap_or(0);
        buffered + self.left.resident_rows() + self.right.resident_rows()
    }
}

/// Nested-loop join: the inner (right) side is a pipeline breaker, the
/// outer (left) side streams block by block.
struct NestedLoopOp<'x, 'a> {
    exec: &'x Executor<'a>,
    left: Box<dyn BlockOperator + 'x>,
    right: Box<dyn BlockOperator + 'x>,
    predicate: Option<&'x PhysExpr>,
    left_outer: bool,
    right_rows: Option<Vec<Row>>,
    emitted: u64,
    pending: VecDeque<Row>,
    left_done: bool,
}

impl BlockOperator for NestedLoopOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.right_rows.is_none() {
            self.right_rows = Some(drain_child(self.exec, self.right.as_mut())?);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        while self.pending.len() < block_rows && !self.left_done {
            let Some(block) = self.left.next_block()? else {
                self.left_done = true;
                break;
            };
            let right_rows = self.right_rows.as_ref().unwrap();
            let right_width = right_rows.first().map(Vec::len).unwrap_or(0);
            let predicate = self.predicate;
            let left_outer = self.left_outer;
            let exec = self.exec;
            let emitted = &mut self.emitted;
            let pending = &mut self.pending;
            block.for_each_row(|lrow| {
                let mut matched = false;
                for rrow in right_rows {
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    let keep = match predicate {
                        Some(p) => p.eval_bool(&joined)?,
                        None => true,
                    };
                    if keep {
                        matched = true;
                        pending.push_back(joined);
                        *emitted += 1;
                        exec.check_limit(*emitted as usize)?;
                    }
                }
                if left_outer && !matched {
                    let mut joined = lrow.clone();
                    joined.extend(std::iter::repeat_n(Datum::Null, right_width));
                    pending.push_back(joined);
                    // The oracle does not charge the outer pad row; match it.
                    *emitted += 1;
                }
                Ok(())
            })?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.right_rows = None;
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        let built = self.right_rows.as_ref().map(|r| r.len() as u64).unwrap_or(0);
        built
            + self.pending.len() as u64
            + self.left.resident_rows()
            + self.right.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Leaves

struct ValuesOp<'x, 'a> {
    exec: &'x Executor<'a>,
    rows: &'x [Vec<PhysExpr>],
    pos: usize,
}

impl BlockOperator for ValuesOp<'_, '_> {
    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        let end = (self.pos + block_rows).min(self.rows.len());
        let empty: Row = Vec::new();
        let mut out: Vec<Row> = Vec::with_capacity(end - self.pos);
        for exprs in &self.rows[self.pos..end] {
            let row: Row = exprs.iter().map(|e| e.eval(&empty)).collect::<DbResult<_>>()?;
            out.push(row);
        }
        self.pos = end;
        Ok(Some(RowBlock::from_rows(out)))
    }
}

// ---------------------------------------------------------------------------
// Morsel-parallel scan

/// The streaming version of the morsel-parallel scan→filter→project
/// pipeline. Work proceeds in synchronous *waves*: wave `w` dispatches
/// `min(2^w, workers)` consecutive morsels to scoped threads (morsel `i`
/// of the wave is deterministically morsel `base + i`), joins them, and
/// appends their outputs in morsel order — so the stitched stream is
/// byte-identical to the serial scan at any thread count, and a LIMIT
/// that stops pulling skips every wave after the one that satisfied it.
/// The ramp-up keeps tiny LIMITs from paying a full-width wave.
struct ParallelScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    pipe: ScanPipeline<'x>,
    high: u64,
    morsel_size: u64,
    n_morsels: u64,
    n_workers: usize,
    next_morsel: u64,
    wave: usize,
    budget: AtomicU64,
    pending: VecDeque<Row>,
    input_done: bool,
}

impl<'x, 'a> ParallelScanOp<'x, 'a> {
    /// Same gating as the oracle's `try_parallel_pipeline`: enough
    /// threads, a range-scannable source, and a table big enough to cut.
    fn try_new(
        exec: &'x Executor<'a>,
        pipe: ScanPipeline<'x>,
        high: u64,
    ) -> Option<ParallelScanOp<'x, 'a>> {
        const MIN_MORSEL_ROWS: u64 = 256;
        const MORSELS_PER_WORKER: u64 = 8;
        let threads = exec.limits.exec_threads.max(1);
        if threads <= 1 || high < MIN_MORSEL_ROWS * 2 {
            return None;
        }
        let target_morsels = threads as u64 * MORSELS_PER_WORKER;
        let morsel_size = (high / target_morsels).max(MIN_MORSEL_ROWS);
        let n_morsels = high.div_ceil(morsel_size);
        if n_morsels <= 1 {
            return None;
        }
        Some(ParallelScanOp {
            exec,
            pipe,
            high,
            morsel_size,
            n_morsels,
            n_workers: threads.min(n_morsels as usize),
            next_morsel: 0,
            wave: 1,
            budget: AtomicU64::new(0),
            pending: VecDeque::new(),
            input_done: false,
        })
    }

    fn run_wave(&mut self) -> DbResult<()> {
        let remaining = self.n_morsels - self.next_morsel;
        let k = (self.wave as u64).min(remaining).min(self.n_workers as u64) as usize;
        let base = self.next_morsel;
        let pipe = self.pipe;
        let exec = self.exec;
        let budget = &self.budget;
        let morsel_size = self.morsel_size;
        let high = self.high;
        let max_rows = exec.limits.max_intermediate_rows;
        let stats = exec.stats;

        let mut results: Vec<Result<Vec<Row>, DbError>> = Vec::with_capacity(k);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|i| {
                    let m = base + i as u64;
                    s.spawn(move || -> Result<Vec<Row>, DbError> {
                        let mut ctx = EvalCtx::new();
                        let start = m * morsel_size;
                        let end = high.min(start + morsel_size);
                        let mut rows_seen = 0u64;
                        let mut out: Vec<Row> = Vec::new();
                        if let Some(f) = pipe.scan_filter {
                            f.begin_block();
                        }
                        if let Some(f) = pipe.post_filter {
                            f.begin_block();
                        }
                        if let Some(exprs) = pipe.project {
                            for e in exprs {
                                e.begin_block();
                            }
                        }
                        // Catch panics per morsel: an evaluator bug in one
                        // worker must surface as a clean DbError.
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                exec.source.scan_table_range(
                                    pipe.table,
                                    pipe.needed,
                                    start,
                                    end,
                                    &mut |row| {
                                        rows_seen += 1;
                                        ctx.reset();
                                        let keep = match pipe.scan_filter {
                                            Some(f) => f.eval_bool_ctx(&row, &mut ctx)?,
                                            None => true,
                                        };
                                        if !keep {
                                            return Ok(true);
                                        }
                                        if budget.fetch_add(1, Ordering::Relaxed) + 1 > max_rows
                                        {
                                            return Err(DbError::ResourceExhausted(format!(
                                                "intermediate result exceeded {max_rows} rows"
                                            )));
                                        }
                                        if let Some(p) = pipe.post_filter {
                                            if !p.eval_bool_ctx(&row, &mut ctx)? {
                                                return Ok(true);
                                            }
                                        }
                                        match pipe.project {
                                            Some(exprs) => {
                                                let mut new_row =
                                                    Vec::with_capacity(exprs.len());
                                                for e in exprs {
                                                    new_row.push(e.eval_ctx(&row, &mut ctx)?);
                                                }
                                                out.push(new_row);
                                            }
                                            None => out.push(row),
                                        }
                                        Ok(true)
                                    },
                                )
                            }));
                        if let Some(f) = pipe.scan_filter {
                            f.end_block();
                        }
                        if let Some(f) = pipe.post_filter {
                            f.end_block();
                        }
                        if let Some(exprs) = pipe.project {
                            for e in exprs {
                                e.end_block();
                            }
                        }
                        match result {
                            Ok(Ok(())) => {
                                if let Some(st) = stats {
                                    st.record_morsel(rows_seen);
                                }
                                Ok(out)
                            }
                            Ok(Err(e)) => Err(e),
                            Err(payload) => Err(DbError::Eval(format!(
                                "scan worker panicked: {}",
                                panic_message(payload.as_ref())
                            ))),
                        }
                    })
                })
                .collect();
            for h in handles {
                results.push(match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(DbError::Eval(format!(
                        "scan worker panicked: {}",
                        panic_message(payload.as_ref())
                    ))),
                });
            }
        });
        if let Some(st) = stats {
            st.morsels_dispatched.fetch_add(k as u64, Ordering::Relaxed);
        }
        // Results are in morsel order; the lowest failing morsel wins,
        // matching the oracle's deterministic error choice.
        for r in results {
            self.pending.extend(r?);
        }
        self.next_morsel += k as u64;
        if self.next_morsel >= self.n_morsels {
            self.input_done = true;
        }
        self.wave = (self.wave * 2).min(self.n_workers);
        Ok(())
    }
}

impl BlockOperator for ParallelScanOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        if let Some(st) = self.exec.stats {
            st.parallel_scans.fetch_add(1, Ordering::Relaxed);
            st.scan_workers.fetch_add(self.n_workers as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let block_rows = self.exec.limits.block_rows.max(1);
        while !self.input_done && self.pending.len() < block_rows {
            self.run_wave()?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        self.pending.len() as u64
    }
}
