//! Pull-based streaming block execution.
//!
//! The default engine since PR 5: operators implement [`BlockOperator`]
//! and pull [`RowBlock`]s of ~`ExecLimits::block_rows` rows from their
//! child instead of materializing whole intermediates. Streaming operators
//! (scan, filter, project, limit, the probe side of a hash join, the outer
//! side of a nested loop, group/unique/distinct over sorted or hashed
//! state) hold O(block) rows; *pipeline breakers* (sort, hash aggregation,
//! the build side of a hash join, both sides of a merge join) drain their
//! child before emitting. Because everything above a breaker still pulls,
//! a `LIMIT` propagates an early-stop all the way down: the limit simply
//! stops calling `next_block`, the scan operator stops its `Heap::scan`
//! callback mid-page, and the morsel-parallel scan skips the waves it
//! never reached.
//!
//! Output is byte-identical to the materializing oracle
//! (`SINEW_EXEC_MODE=materialize`, `Executor::run_materialize`) at every
//! block size and thread count: scans emit rows in row-id order, parallel
//! waves are stitched in morsel order, float accumulation order equals
//! input order, and hash-based operators use the same per-instance
//! `HashMap` semantics as the oracle. The equivalence suite
//! (`tests/exec_equivalence.rs`, `crates/core/tests/streaming_oracle.rs`)
//! enforces this over a seeded random workload.
//!
//! Resource governance: `max_intermediate_rows` is charged wherever rows
//! actually accumulate — the root accumulator, breaker buffers, join
//! output counts, distinct/group state — so the streaming engine never
//! charges more than the oracle (and may legitimately succeed where full
//! materialization would exhaust the cap).

use crate::datum::{Datum, GroupKey};
use crate::error::{DbError, DbResult};
use crate::exec::{
    feed_accs, finish_group, new_acc, panic_message, rows_equal, sort_rows, ExecStats, Executor,
    Row, ScanPipeline,
};
use crate::expr::{EvalCtx, PhysExpr};
use crate::agg::Accumulator;
use crate::plan::{AggSpec, Plan, SortKey};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// A batch of rows flowing between operators. `sel`, when present, lists
/// the indices of `rows` that are logically in the block (a selection
/// vector): filters narrow a block by rewriting `sel` instead of moving
/// rows. Blocks on the wire are never empty — end of stream is `None`
/// from [`BlockOperator::next_block`].
#[derive(Debug, Default)]
pub struct RowBlock {
    pub rows: Vec<Row>,
    pub sel: Option<Vec<u32>>,
}

impl RowBlock {
    pub fn from_rows(rows: Vec<Row>) -> RowBlock {
        RowBlock { rows, sel: None }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compact into a plain vector of the selected rows, in order.
    pub fn take_rows(self) -> Vec<Row> {
        match self.sel {
            None => self.rows,
            Some(sel) => {
                let mut rows = self.rows;
                let mut out = Vec::with_capacity(sel.len());
                for &i in &sel {
                    out.push(std::mem::take(&mut rows[i as usize]));
                }
                out
            }
        }
    }

    /// Keep only the first `n` selected rows.
    pub fn truncate(&mut self, n: usize) {
        match &mut self.sel {
            Some(s) => s.truncate(n),
            None => self.rows.truncate(n),
        }
    }

    /// Visit the selected rows in order.
    pub fn for_each_row(
        &self,
        mut f: impl FnMut(&Row) -> DbResult<()>,
    ) -> DbResult<()> {
        match &self.sel {
            Some(s) => {
                for &i in s {
                    f(&self.rows[i as usize])?;
                }
            }
            None => {
                for row in &self.rows {
                    f(row)?;
                }
            }
        }
        Ok(())
    }
}

/// A pull-based operator. Lifecycle: `open` → `next_block`* → `close`;
/// `close` must be safe to call after an error and is responsible for the
/// whole subtree (operators close their children).
pub trait BlockOperator {
    fn open(&mut self) -> DbResult<()> {
        Ok(())
    }

    /// Produce the next non-empty block, or `None` at end of stream.
    fn next_block(&mut self) -> DbResult<Option<RowBlock>>;

    fn close(&mut self) {}

    /// Rows currently buffered inside this operator subtree (pipeline
    /// breakers, join builds, parallel-scan stitch buffers) — feeds the
    /// `peak_resident_rows` metric.
    fn resident_rows(&self) -> u64 {
        0
    }
}

/// Execute `plan` by pulling the root operator dry, accumulating into the
/// final result. Charges `max_intermediate_rows` per block as the result
/// accumulates and tracks block/early-stop/resident metrics.
pub(crate) fn run_streaming(exec: &Executor<'_>, plan: &Plan) -> DbResult<Vec<Row>> {
    let mut op = build_op(exec, plan, None)?;
    let mut out: Vec<Row> = Vec::new();
    let result = (|| -> DbResult<()> {
        op.open()?;
        while let Some(block) = op.next_block()? {
            if let Some(st) = exec.stats {
                st.record_block(block.len() as u64);
            }
            let mut rows = block.take_rows();
            out.append(&mut rows);
            exec.check_limit(out.len())?;
            if let Some(st) = exec.stats {
                st.note_resident(out.len() as u64 + op.resident_rows());
            }
        }
        Ok(())
    })();
    op.close();
    result?;
    Ok(out)
}

/// Build the operator tree for `plan`. `cap`, when present, is an upper
/// bound on the rows the parent will consume (LIMIT pushdown); it flows
/// through row-preserving operators (Project) down to index scans, which
/// may bound their B-tree probe when the plan's bounds are exact.
pub(crate) fn build_op<'x, 'a: 'x>(
    exec: &'x Executor<'a>,
    plan: &'x Plan,
    cap: Option<u64>,
) -> DbResult<Box<dyn BlockOperator + 'x>> {
    // The scan→filter→project prefix goes to the morsel-parallel operator
    // when the pool and the table are big enough — same gating as the
    // materializing engine's `try_parallel_pipeline`.
    if exec.limits.exec_threads.max(1) > 1 {
        if let Some(pipe) = Executor::scan_pipeline(plan) {
            if let Some(high) = exec.source.high_water(pipe.table)? {
                if let Some(op) = ParallelScanOp::try_new(exec, pipe, high) {
                    return Ok(Box::new(op));
                }
            }
        }
    }
    Ok(match plan {
        Plan::SeqScan { table, filter, needed, .. } => Box::new(SeqScanOp::new(
            exec,
            table,
            filter.as_ref(),
            needed.as_deref(),
        )),
        Plan::IndexScan {
            table,
            binding: _,
            column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            filter,
            needed,
            est_rows: _,
            exact_bounds,
        } => Box::new(IndexScanOp {
            exec,
            table,
            column,
            lo: lo.as_ref(),
            lo_inc: *lo_inc,
            hi: hi.as_ref(),
            hi_inc: *hi_inc,
            filter: filter.as_ref(),
            needed: needed.as_deref(),
            // A probe cap is only sound when the bounds *are* the whole
            // predicate: then every row the index surfaces is an output
            // row, and the `cap` smallest rowids are exactly the rows an
            // uncapped scan would have produced first.
            cap: if *exact_bounds { cap } else { None },
            ctx: EvalCtx::new(),
            state: IndexState::Init,
        }),
        Plan::ColumnarScan {
            table,
            column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            filter,
            needed,
            exact_bounds,
            bounds_cover_filter,
            ..
        } => Box::new(ColumnarScanOp {
            exec,
            table,
            column: column.as_deref(),
            lo: lo.as_ref(),
            lo_inc: *lo_inc,
            hi: hi.as_ref(),
            hi_inc: *hi_inc,
            filter: filter.as_ref(),
            needed: needed.as_deref(),
            exact_bounds: *exact_bounds,
            bounds_cover: *bounds_cover_filter,
            pending: VecDeque::new(),
            state: ColumnarState::Init,
        }),
        Plan::IndexOnlyScan {
            table,
            column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            filter,
            needed,
            exact_bounds,
            ..
        } => Box::new(IndexOnlyScanOp {
            exec,
            table,
            column,
            lo: lo.as_ref(),
            lo_inc: *lo_inc,
            hi: hi.as_ref(),
            hi_inc: *hi_inc,
            filter: filter.as_ref(),
            needed: needed.as_deref(),
            // Same soundness rule as IndexScan's probe cap.
            cap: if *exact_bounds { cap } else { None },
            exact_bounds: *exact_bounds,
            ctx: EvalCtx::new(),
            state: IndexOnlyState::Init,
        }),
        Plan::Filter { input, predicate, .. } => Box::new(FilterOp {
            child: build_op(exec, input, None)?,
            predicate,
            ctx: EvalCtx::new(),
        }),
        Plan::Project { input, exprs, .. } => Box::new(ProjectOp {
            child: build_op(exec, input, cap)?,
            exprs,
            ctx: EvalCtx::new(),
        }),
        Plan::Limit { input, n } => Box::new(LimitOp {
            child: build_op(exec, input, Some(cap.unwrap_or(u64::MAX).min(*n)))?,
            remaining: *n,
            stats: exec.stats,
        }),
        Plan::Sort { input, keys, .. } => Box::new(SortOp {
            exec,
            child: build_op(exec, input, None)?,
            keys,
            buf: None,
            pos: 0,
        }),
        Plan::HashAggregate { input, groups, aggs, .. } => Box::new(HashAggOp {
            exec,
            child: build_op(exec, input, None)?,
            groups,
            aggs,
            out: None,
            pos: 0,
        }),
        Plan::GroupAggregate { input, groups, aggs, .. } => Box::new(GroupAggOp {
            child: build_op(exec, input, None)?,
            exec,
            groups,
            aggs,
            current: None,
            pending: Vec::new(),
            input_done: false,
            emitted_any: false,
        }),
        Plan::Unique { input, .. } => Box::new(UniqueOp {
            child: build_op(exec, input, None)?,
            last: None,
        }),
        Plan::HashDistinct { input, .. } => Box::new(HashDistinctOp {
            exec,
            child: build_op(exec, input, None)?,
            seen: HashSet::new(),
        }),
        Plan::HashJoin { left, right, left_key, right_key, residual, left_outer, .. } => {
            Box::new(HashJoinOp {
                exec,
                left: build_op(exec, left, None)?,
                right: build_op(exec, right, None)?,
                left_key,
                right_key,
                residual: residual.as_ref(),
                left_outer: *left_outer,
                built: None,
                emitted: 0,
                pending: VecDeque::new(),
                left_done: false,
            })
        }
        Plan::MergeJoin { left, right, left_key, right_key, residual, .. } => {
            Box::new(MergeJoinOp {
                exec,
                left: build_op(exec, left, None)?,
                right: build_op(exec, right, None)?,
                left_key,
                right_key,
                residual: residual.as_ref(),
                out: None,
                pos: 0,
            })
        }
        Plan::NestedLoop { left, right, predicate, left_outer, .. } => {
            Box::new(NestedLoopOp {
                exec,
                left: build_op(exec, left, None)?,
                right: build_op(exec, right, None)?,
                predicate: predicate.as_ref(),
                left_outer: *left_outer,
                right_rows: None,
                emitted: 0,
                pending: VecDeque::new(),
                left_done: false,
            })
        }
        Plan::Values { rows } => Box::new(ValuesOp {
            exec,
            rows,
            pos: 0,
        }),
    })
}

/// Drain a child operator into a materialized vector (pipeline breakers),
/// charging the intermediate-row cap as the buffer grows.
fn drain_child(
    exec: &Executor<'_>,
    child: &mut (dyn BlockOperator + '_),
) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(block) = child.next_block()? {
        let mut rows = block.take_rows();
        out.append(&mut rows);
        exec.check_limit(out.len())?;
        if let Some(st) = exec.stats {
            st.note_resident(out.len() as u64);
        }
    }
    Ok(out)
}

/// Move up to `n` front rows of a buffered result into a block.
fn chunk_from(buf: &mut [Row], pos: &mut usize, n: usize) -> Option<RowBlock> {
    if *pos >= buf.len() {
        return None;
    }
    let end = (*pos + n.max(1)).min(buf.len());
    let mut out = Vec::with_capacity(end - *pos);
    for row in &mut buf[*pos..end] {
        out.push(std::mem::take(row));
    }
    *pos = end;
    Some(RowBlock::from_rows(out))
}

// ---------------------------------------------------------------------------
// Scans

/// Serial heap scan with an embedded filter. When the source supports
/// range scans, each block resumes at the row id after the last one
/// emitted, and the scan callback stops (early-stop into `Heap::scan`)
/// the moment the block is full. Sources without range support fall back
/// to a one-shot buffered scan.
struct SeqScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    ctx: EvalCtx,
    next_rowid: u64,
    ranged: bool,
    buffered: Option<VecDeque<Row>>,
    done: bool,
}

impl<'x, 'a> SeqScanOp<'x, 'a> {
    fn new(
        exec: &'x Executor<'a>,
        table: &'x str,
        filter: Option<&'x PhysExpr>,
        needed: Option<&'x [String]>,
    ) -> SeqScanOp<'x, 'a> {
        SeqScanOp {
            exec,
            table,
            filter,
            needed,
            ctx: EvalCtx::new(),
            next_rowid: 0,
            ranged: false,
            buffered: None,
            done: false,
        }
    }
}

impl BlockOperator for SeqScanOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        if let Some(st) = self.exec.stats {
            st.serial_scans.fetch_add(1, Ordering::Relaxed);
        }
        self.ranged = self.exec.source.high_water(self.table)?.is_some();
        Ok(())
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.done {
            return Ok(None);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        if !self.ranged {
            // One-shot path for sources without resumable range scans.
            if self.buffered.is_none() {
                let mut buf = VecDeque::new();
                let ctx = &mut self.ctx;
                let filter = self.filter;
                let exec = self.exec;
                if let Some(f) = filter {
                    f.begin_block();
                }
                let res = exec.source.scan_table(self.table, self.needed, &mut |row| {
                    let keep = match filter {
                        Some(f) => {
                            ctx.reset();
                            f.eval_bool_ctx(&row, ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        buf.push_back(row);
                        exec.check_limit(buf.len())?;
                    }
                    Ok(true)
                });
                if let Some(f) = filter {
                    f.end_block();
                }
                res?;
                self.buffered = Some(buf);
            }
            let buf = self.buffered.as_mut().unwrap();
            if buf.is_empty() {
                self.done = true;
                return Ok(None);
            }
            let n = buf.len().min(block_rows);
            let out: Vec<Row> = buf.drain(..n).collect();
            return Ok(Some(RowBlock::from_rows(out)));
        }
        let mut out: Vec<Row> = Vec::with_capacity(block_rows);
        let mut resume = self.next_rowid;
        {
            let ctx = &mut self.ctx;
            let filter = self.filter;
            if let Some(f) = filter {
                f.begin_block();
            }
            let res = self.exec.source.scan_table_range(
                self.table,
                self.needed,
                self.next_rowid,
                u64::MAX,
                &mut |row| {
                    // Scan rows end with their rowid; remember where to
                    // resume the next block.
                    let rid = match row.last() {
                        Some(Datum::Int(r)) => *r as u64,
                        _ => {
                            return Err(DbError::Eval(
                                "scan row missing trailing rowid".into(),
                            ))
                        }
                    };
                    resume = rid + 1;
                    let keep = match filter {
                        Some(f) => {
                            ctx.reset();
                            f.eval_bool_ctx(&row, ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        out.push(row);
                    }
                    Ok(out.len() < block_rows)
                },
            );
            if let Some(f) = filter {
                f.end_block();
            }
            res?;
        }
        self.next_rowid = resume;
        if out.len() < block_rows {
            // The callback never asked to stop, so the scan is exhausted.
            self.done = true;
        }
        if out.is_empty() {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(RowBlock::from_rows(out)))
    }
}

enum IndexState<'x, 'a> {
    Init,
    Fetching { rowids: Vec<u64>, pos: usize },
    /// The index disappeared between planning and execution: degrade to a
    /// sequential scan with the same filter (identical output).
    Fallback(SeqScanOp<'x, 'a>),
    Done,
}

/// Secondary-index access: probe once (optionally capped, satellite 1),
/// sort rowids so output matches heap-scan order, then fetch in
/// block-sized windows — rowids past an early-stop are never fetched.
struct IndexScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    column: &'x str,
    lo: Option<&'x Datum>,
    lo_inc: bool,
    hi: Option<&'x Datum>,
    hi_inc: bool,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    cap: Option<u64>,
    ctx: EvalCtx,
    state: IndexState<'x, 'a>,
}

impl<'x, 'a> IndexScanOp<'x, 'a> {
    fn probe(&mut self) -> DbResult<()> {
        let rowids = self.exec.source.index_lookup(
            self.table,
            self.column,
            self.lo,
            self.lo_inc,
            self.hi,
            self.hi_inc,
            self.cap,
        )?;
        match rowids {
            Some(mut rowids) => {
                if let Some(st) = self.exec.stats {
                    st.index_scans.fetch_add(1, Ordering::Relaxed);
                }
                // Heap scans emit rows in rowid order; match it exactly.
                rowids.sort_unstable();
                self.state = IndexState::Fetching { rowids, pos: 0 };
            }
            None => {
                let mut op = SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = IndexState::Fallback(op);
            }
        }
        Ok(())
    }
}

impl BlockOperator for IndexScanOp<'_, '_> {
    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if matches!(self.state, IndexState::Init) {
            self.probe()?;
        }
        match &mut self.state {
            IndexState::Fetching { rowids, pos } => {
                let block_rows = self.exec.limits.block_rows.max(1);
                let ctx = &mut self.ctx;
                let filter = self.filter;
                while *pos < rowids.len() {
                    let end = (*pos + block_rows).min(rowids.len());
                    let window = &rowids[*pos..end];
                    *pos = end;
                    let mut out: Vec<Row> = Vec::with_capacity(window.len());
                    if let Some(f) = filter {
                        f.begin_block();
                    }
                    let res = self.exec.source.fetch_rows(
                        self.table,
                        self.needed,
                        window,
                        &mut |row| {
                            let keep = match filter {
                                Some(f) => {
                                    ctx.reset();
                                    f.eval_bool_ctx(&row, ctx)?
                                }
                                None => true,
                            };
                            if keep {
                                out.push(row);
                            }
                            Ok(true)
                        },
                    );
                    if let Some(f) = filter {
                        f.end_block();
                    }
                    res?;
                    if !out.is_empty() {
                        return Ok(Some(RowBlock::from_rows(out)));
                    }
                }
                self.state = IndexState::Done;
                Ok(None)
            }
            IndexState::Fallback(op) => op.next_block(),
            IndexState::Done => Ok(None),
            IndexState::Init => unreachable!("probe resolves Init"),
        }
    }

    fn close(&mut self) {
        if let IndexState::Fallback(op) = &mut self.state {
            op.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar scan

enum ColumnarState<'x, 'a> {
    Init,
    Scanning { n_segments: usize, next_seg: usize, wave: usize, n_workers: usize },
    /// Segments vanished (demotion) between planning and execution:
    /// degrade to a sequential scan with the same filter (identical
    /// output).
    Fallback(SeqScanOp<'x, 'a>),
    Done,
}

/// Columnar segment scan: fills blocks column-at-a-time from the table's
/// column stores. Each segment runs the vectorized bound kernel (when the
/// plan carries a sargable bound column) producing a selection vector,
/// gathers only `needed` columns for the selected slots, then re-applies
/// the full residual predicate per block unless the bounds are exact.
/// Segments are dispatched in morsel waves like [`ParallelScanOp`]
/// (ramping 1, 2, 4, … workers, stitched in segment order), so output is
/// byte-identical to the heap scan at any thread count and a LIMIT skips
/// the waves it never reaches.
/// One segment's scan output with the residual filter already applied:
/// surviving rows plus the segment's kernel/pruned/exact stats.
type SegScanResult = Result<crate::exec::SegScan, DbError>;

struct ColumnarScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    column: Option<&'x str>,
    lo: Option<&'x Datum>,
    lo_inc: bool,
    hi: Option<&'x Datum>,
    hi_inc: bool,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    exact_bounds: bool,
    /// Planner proof that the bound literals cover the whole predicate in
    /// one exactness class; combined with a segment's `exact` flag it
    /// skips the residual filter for that segment.
    bounds_cover: bool,
    pending: VecDeque<Row>,
    state: ColumnarState<'x, 'a>,
}

impl ColumnarScanOp<'_, '_> {
    /// Scan one segment and apply the residual filter, returning the
    /// surviving rows plus the kernel / pruned stats.
    fn scan_segment(&self, seg: usize) -> SegScanResult {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.exec
                .source
                .columnar_scan_segment(
                    self.table,
                    self.needed,
                    self.column,
                    self.lo,
                    self.lo_inc,
                    self.hi,
                    self.hi_inc,
                    seg,
                )?
                .ok_or_else(|| DbError::Eval("column store vanished mid-scan".into()))
        }));
        let mut scan = match result {
            Ok(Ok(s)) => s,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(DbError::Eval(format!(
                    "columnar scan worker panicked: {}",
                    panic_message(payload.as_ref())
                )))
            }
        };
        let skip_residual = self.exact_bounds || (self.bounds_cover && scan.exact);
        if let Some(f) = self.filter {
            if !skip_residual && !scan.rows.is_empty() {
                let mut ctx = EvalCtx::new();
                f.begin_block();
                let keep = f.filter_block(&scan.rows, None, &mut ctx);
                f.end_block();
                let keep = keep?;
                let mut rows = std::mem::take(&mut scan.rows);
                scan.rows =
                    keep.iter().map(|&i| std::mem::take(&mut rows[i as usize])).collect();
            }
        }
        Ok(scan)
    }

    fn run_wave(&mut self) -> DbResult<()> {
        let ColumnarState::Scanning { n_segments, next_seg, wave, n_workers } = self.state
        else {
            return Ok(());
        };
        let remaining = n_segments - next_seg;
        let k = wave.min(remaining).min(n_workers);
        let mut results: Vec<SegScanResult> = Vec::with_capacity(k);
        if k <= 1 || n_workers <= 1 {
            for i in 0..k {
                results.push(self.scan_segment(next_seg + i));
            }
        } else {
            let this = &*self;
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| s.spawn(move || this.scan_segment(next_seg + i)))
                    .collect();
                for h in handles {
                    results.push(match h.join() {
                        Ok(r) => r,
                        Err(payload) => Err(DbError::Eval(format!(
                            "columnar scan worker panicked: {}",
                            panic_message(payload.as_ref())
                        ))),
                    });
                }
            });
        }
        // Results are in segment order; the lowest failing segment wins.
        for r in results {
            let scan = r?;
            if let Some(st) = self.exec.stats {
                if scan.pruned {
                    st.segments_pruned.fetch_add(1, Ordering::Relaxed);
                } else {
                    st.record_decoded(scan.kernel.decoded);
                    st.record_kernels(&scan.kernel);
                }
            }
            self.pending.extend(scan.rows);
            self.exec.check_limit(self.pending.len())?;
        }
        let done = next_seg + k >= n_segments;
        self.state = if done {
            ColumnarState::Done
        } else {
            ColumnarState::Scanning {
                n_segments,
                next_seg: next_seg + k,
                wave: (wave * 2).min(n_workers),
                n_workers,
            }
        };
        Ok(())
    }
}

impl BlockOperator for ColumnarScanOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        let meta = self.exec.source.columnar_meta(self.table, self.needed, self.column)?;
        match meta {
            Some(meta) => {
                if let Some(st) = self.exec.stats {
                    st.columnar_scans.fetch_add(1, Ordering::Relaxed);
                }
                self.state = ColumnarState::Scanning {
                    n_segments: meta.n_segments,
                    next_seg: 0,
                    wave: 1,
                    n_workers: self.exec.limits.exec_threads.max(1),
                };
            }
            None => {
                let mut op = SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = ColumnarState::Fallback(op);
            }
        }
        Ok(())
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if let ColumnarState::Fallback(op) = &mut self.state {
            return op.next_block();
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        while matches!(self.state, ColumnarState::Scanning { .. })
            && self.pending.len() < block_rows
        {
            self.run_wave()?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        if let ColumnarState::Fallback(op) = &mut self.state {
            op.close();
        }
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        self.pending.len() as u64
    }
}

// ---------------------------------------------------------------------------
// Covering index-only scan

enum IndexOnlyState<'x, 'a> {
    Init,
    Emitting { entries: Vec<(Datum, u64)>, n_live_cols: usize, key_slot: usize, pos: usize },
    /// The index disappeared between planning and execution.
    Fallback(SeqScanOp<'x, 'a>),
    Done,
}

/// Covering index access: one B-tree probe yields the (key, rowid)
/// entries themselves — the scan output is synthesized from them with
/// zero heap page reads. Entries arrive sorted by rowid, so output order
/// matches the heap scan exactly.
struct IndexOnlyScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    table: &'x str,
    column: &'x str,
    lo: Option<&'x Datum>,
    lo_inc: bool,
    hi: Option<&'x Datum>,
    hi_inc: bool,
    filter: Option<&'x PhysExpr>,
    needed: Option<&'x [String]>,
    cap: Option<u64>,
    exact_bounds: bool,
    ctx: EvalCtx,
    state: IndexOnlyState<'x, 'a>,
}

impl IndexOnlyScanOp<'_, '_> {
    fn probe(&mut self) -> DbResult<()> {
        let probe = self.exec.source.index_only_probe(
            self.table,
            self.column,
            self.lo,
            self.lo_inc,
            self.hi,
            self.hi_inc,
            self.cap,
        )?;
        match probe {
            Some(p) => {
                if let Some(st) = self.exec.stats {
                    st.index_only_scans.fetch_add(1, Ordering::Relaxed);
                }
                self.state = IndexOnlyState::Emitting {
                    entries: p.entries,
                    n_live_cols: p.n_live_cols,
                    key_slot: p.key_slot,
                    pos: 0,
                };
            }
            None => {
                let mut op = SeqScanOp::new(self.exec, self.table, self.filter, self.needed);
                op.open()?;
                self.state = IndexOnlyState::Fallback(op);
            }
        }
        Ok(())
    }
}

impl BlockOperator for IndexOnlyScanOp<'_, '_> {
    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if matches!(self.state, IndexOnlyState::Init) {
            self.probe()?;
        }
        match &mut self.state {
            IndexOnlyState::Emitting { entries, n_live_cols, key_slot, pos } => {
                let block_rows = self.exec.limits.block_rows.max(1);
                let filter = self.filter;
                let exact = self.exact_bounds;
                while *pos < entries.len() {
                    let end = (*pos + block_rows).min(entries.len());
                    let mut rows: Vec<Row> = Vec::with_capacity(end - *pos);
                    for (key, rowid) in &mut entries[*pos..end] {
                        let mut row: Row = vec![Datum::Null; *n_live_cols + 1];
                        row[*key_slot] = std::mem::replace(key, Datum::Null);
                        row[*n_live_cols] = Datum::Int(*rowid as i64);
                        rows.push(row);
                    }
                    *pos = end;
                    let out: Vec<Row> = match filter {
                        Some(f) if !exact => {
                            f.begin_block();
                            let keep = f.filter_block(&rows, None, &mut self.ctx);
                            f.end_block();
                            let keep = keep?;
                            keep.iter()
                                .map(|&i| std::mem::take(&mut rows[i as usize]))
                                .collect()
                        }
                        _ => rows,
                    };
                    if !out.is_empty() {
                        return Ok(Some(RowBlock::from_rows(out)));
                    }
                }
                self.state = IndexOnlyState::Done;
                Ok(None)
            }
            IndexOnlyState::Fallback(op) => op.next_block(),
            IndexOnlyState::Done => Ok(None),
            IndexOnlyState::Init => unreachable!("probe resolves Init"),
        }
    }

    fn close(&mut self) {
        if let IndexOnlyState::Fallback(op) = &mut self.state {
            op.close();
        }
    }
}

// ---------------------------------------------------------------------------
// Row-at-a-time streaming operators

struct FilterOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    predicate: &'x PhysExpr,
    ctx: EvalCtx,
}

impl BlockOperator for FilterOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        loop {
            let Some(mut block) = self.child.next_block()? else { return Ok(None) };
            let keep = self.predicate.filter_block(
                &block.rows,
                block.sel.as_deref(),
                &mut self.ctx,
            )?;
            if !keep.is_empty() {
                block.sel = Some(keep);
                return Ok(Some(block));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

struct ProjectOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    exprs: &'x [PhysExpr],
    ctx: EvalCtx,
}

impl BlockOperator for ProjectOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let Some(block) = self.child.next_block()? else { return Ok(None) };
        let mut out: Vec<Row> = Vec::with_capacity(block.len());
        for e in self.exprs {
            e.begin_block();
        }
        // One context reset per *row* across all projections: the k
        // `array_get(extract_keys(...), i)` outputs of a fused extraction
        // share a single document decode per row (same as the oracle).
        let ctx = &mut self.ctx;
        let exprs = self.exprs;
        let res = block.for_each_row(|row| {
            ctx.reset();
            let mut new_row = Vec::with_capacity(exprs.len());
            for e in exprs {
                new_row.push(e.eval_ctx(row, ctx)?);
            }
            out.push(new_row);
            Ok(())
        });
        for e in self.exprs {
            e.end_block();
        }
        res?;
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

struct LimitOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    remaining: u64,
    stats: Option<&'x ExecStats>,
}

impl BlockOperator for LimitOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(mut block) = self.child.next_block()? else {
            self.remaining = 0;
            return Ok(None);
        };
        let n = block.len() as u64;
        if n >= self.remaining {
            block.truncate(self.remaining as usize);
            self.remaining = 0;
            // The stream ends here without exhausting the child: the
            // early-stop that makes LIMIT O(limit), not O(table).
            if let Some(st) = self.stats {
                st.early_stops.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.remaining -= n;
        }
        Ok(Some(block))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

/// DISTINCT over sorted input: drop rows equal to their predecessor.
struct UniqueOp<'x> {
    child: Box<dyn BlockOperator + 'x>,
    last: Option<Row>,
}

impl BlockOperator for UniqueOp<'_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        loop {
            let Some(mut block) = self.child.next_block()? else { return Ok(None) };
            let mut keep: Vec<u32> = Vec::new();
            let idxs: Vec<u32> = match &block.sel {
                Some(s) => s.clone(),
                None => (0..block.rows.len() as u32).collect(),
            };
            for i in idxs {
                let row = &block.rows[i as usize];
                if self.last.as_ref().map(|p| rows_equal(p, row)) != Some(true) {
                    self.last = Some(row.clone());
                    keep.push(i);
                }
            }
            if !keep.is_empty() {
                block.sel = Some(keep);
                return Ok(Some(block));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.child.resident_rows()
    }
}

/// DISTINCT over unsorted input. Output order equals input order (first
/// occurrence wins), so it is mode- and block-size-independent.
struct HashDistinctOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    seen: HashSet<Vec<GroupKey>>,
}

impl BlockOperator for HashDistinctOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        loop {
            let Some(mut block) = self.child.next_block()? else { return Ok(None) };
            let mut keep: Vec<u32> = Vec::new();
            let idxs: Vec<u32> = match &block.sel {
                Some(s) => s.clone(),
                None => (0..block.rows.len() as u32).collect(),
            };
            for i in idxs {
                let row = &block.rows[i as usize];
                let key: Vec<GroupKey> = row.iter().map(Datum::group_key).collect();
                if self.seen.insert(key) {
                    keep.push(i);
                }
            }
            self.exec.check_limit(self.seen.len())?;
            if !keep.is_empty() {
                block.sel = Some(keep);
                return Ok(Some(block));
            }
        }
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.seen.len() as u64 + self.child.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers

/// Sort: drains its child, sorts once, then emits block-sized chunks.
struct SortOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    keys: &'x [SortKey],
    buf: Option<Vec<Row>>,
    pos: usize,
}

impl BlockOperator for SortOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.buf.is_none() {
            let mut rows = drain_child(self.exec, self.child.as_mut())?;
            sort_rows(&mut rows, self.keys)?;
            self.buf = Some(rows);
            self.pos = 0;
        }
        let block_rows = self.exec.limits.block_rows;
        Ok(chunk_from(self.buf.as_mut().unwrap(), &mut self.pos, block_rows))
    }

    fn close(&mut self) {
        self.child.close();
        self.buf = None;
    }

    fn resident_rows(&self) -> u64 {
        let buffered = self
            .buf
            .as_ref()
            .map(|b| (b.len() - self.pos) as u64)
            .unwrap_or(0);
        buffered + self.child.resident_rows()
    }
}

/// Hash aggregation: streams its input (only group state is resident),
/// then emits the finished groups in the hash map's iteration order —
/// identical semantics to the oracle, which is equally unordered.
struct HashAggOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    groups: &'x [PhysExpr],
    aggs: &'x [AggSpec],
    out: Option<Vec<Row>>,
    pos: usize,
}

impl BlockOperator for HashAggOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.out.is_none() {
            let mut table: HashMap<Vec<GroupKey>, (Row, Vec<Accumulator>)> = HashMap::new();
            let groups = self.groups;
            let aggs = self.aggs;
            while let Some(block) = self.child.next_block()? {
                block.for_each_row(|row| {
                    let mut key_vals = Vec::with_capacity(groups.len());
                    for g in groups {
                        key_vals.push(g.eval(row)?);
                    }
                    let key: Vec<GroupKey> = key_vals.iter().map(Datum::group_key).collect();
                    let entry = table.entry(key).or_insert_with(|| {
                        (key_vals.clone(), aggs.iter().map(new_acc).collect())
                    });
                    feed_accs(&mut entry.1, aggs, row)
                })?;
                self.exec.check_limit(table.len())?;
                if let Some(st) = self.exec.stats {
                    st.note_resident(table.len() as u64 + self.child.resident_rows());
                }
            }
            let mut out: Vec<Row> = Vec::with_capacity(table.len());
            if groups.is_empty() && table.is_empty() {
                // Scalar aggregate over empty input still yields one row.
                let accs: Vec<Accumulator> = aggs.iter().map(new_acc).collect();
                out.push(finish_group(Vec::new(), &accs));
            } else {
                for (_, (key_vals, accs)) in table {
                    out.push(finish_group(key_vals, &accs));
                }
            }
            self.out = Some(out);
            self.pos = 0;
        }
        let block_rows = self.exec.limits.block_rows;
        Ok(chunk_from(self.out.as_mut().unwrap(), &mut self.pos, block_rows))
    }

    fn close(&mut self) {
        self.child.close();
        self.out = None;
    }

    fn resident_rows(&self) -> u64 {
        let buffered = self
            .out
            .as_ref()
            .map(|b| (b.len() - self.pos) as u64)
            .unwrap_or(0);
        buffered + self.child.resident_rows()
    }
}

/// Group aggregation over sorted input — fully streaming: only the
/// current group's accumulators and the not-yet-emitted finished groups
/// are resident.
struct GroupAggOp<'x, 'a> {
    exec: &'x Executor<'a>,
    child: Box<dyn BlockOperator + 'x>,
    groups: &'x [PhysExpr],
    aggs: &'x [AggSpec],
    current: Option<(Vec<Datum>, Vec<Accumulator>)>,
    pending: Vec<Row>,
    input_done: bool,
    emitted_any: bool,
}

impl BlockOperator for GroupAggOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.child.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let block_rows = self.exec.limits.block_rows.max(1);
        while !self.input_done && self.pending.len() < block_rows {
            match self.child.next_block()? {
                Some(block) => {
                    let groups = self.groups;
                    let aggs = self.aggs;
                    let current = &mut self.current;
                    let pending = &mut self.pending;
                    block.for_each_row(|row| {
                        let mut key_vals = Vec::with_capacity(groups.len());
                        for g in groups {
                            key_vals.push(g.eval(row)?);
                        }
                        let same = current.as_ref().is_some_and(|(k, _)| {
                            k.iter()
                                .zip(&key_vals)
                                .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
                        });
                        if !same {
                            if let Some((k, accs)) = current.take() {
                                pending.push(finish_group(k, &accs));
                            }
                            *current = Some((key_vals, aggs.iter().map(new_acc).collect()));
                        }
                        if let Some((_, accs)) = current.as_mut() {
                            feed_accs(accs, aggs, row)?;
                        }
                        Ok(())
                    })?;
                }
                None => {
                    self.input_done = true;
                    if let Some((k, accs)) = self.current.take() {
                        self.pending.push(finish_group(k, &accs));
                    } else if self.groups.is_empty() && !self.emitted_any && self.pending.is_empty()
                    {
                        let accs: Vec<Accumulator> = self.aggs.iter().map(new_acc).collect();
                        self.pending.push(finish_group(Vec::new(), &accs));
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        self.emitted_any = true;
        Ok(Some(RowBlock::from_rows(std::mem::take(&mut self.pending))))
    }

    fn close(&mut self) {
        self.child.close();
    }

    fn resident_rows(&self) -> u64 {
        self.pending.len() as u64 + self.child.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Joins

/// Drained build side of a hash join: buffered rows, the key → row-index
/// map, and the build-side column count (for left-outer NULL padding).
type BuiltSide = (Vec<Row>, HashMap<GroupKey, Vec<usize>>, usize);

/// Hash join: the build (right) side is a pipeline breaker, the probe
/// (left) side streams. Join output beyond a block is buffered briefly in
/// `pending` and emitted in block-sized chunks.
struct HashJoinOp<'x, 'a> {
    exec: &'x Executor<'a>,
    left: Box<dyn BlockOperator + 'x>,
    right: Box<dyn BlockOperator + 'x>,
    left_key: &'x PhysExpr,
    right_key: &'x PhysExpr,
    residual: Option<&'x PhysExpr>,
    left_outer: bool,
    built: Option<BuiltSide>,
    /// Cumulative joined rows — charged against the cap exactly like the
    /// oracle's `out.len()`.
    emitted: u64,
    pending: VecDeque<Row>,
    left_done: bool,
}

impl BlockOperator for HashJoinOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.built.is_none() {
            let right_rows = drain_child(self.exec, self.right.as_mut())?;
            let right_width = right_rows.first().map(Vec::len).unwrap_or(0);
            let mut table: HashMap<GroupKey, Vec<usize>> = HashMap::new();
            for (i, row) in right_rows.iter().enumerate() {
                let k = self.right_key.eval(row)?;
                if k.is_null() {
                    continue; // NULL never joins
                }
                table.entry(k.group_key()).or_default().push(i);
            }
            self.built = Some((right_rows, table, right_width));
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        while self.pending.len() < block_rows && !self.left_done {
            let Some(block) = self.left.next_block()? else {
                self.left_done = true;
                break;
            };
            let (right_rows, table, right_width) = self.built.as_ref().unwrap();
            let left_key = self.left_key;
            let residual = self.residual;
            let left_outer = self.left_outer;
            let exec = self.exec;
            let emitted = &mut self.emitted;
            let pending = &mut self.pending;
            block.for_each_row(|lrow| {
                let k = left_key.eval(lrow)?;
                let mut matched = false;
                if !k.is_null() {
                    if let Some(idxs) = table.get(&k.group_key()) {
                        for &i in idxs {
                            let mut joined = lrow.clone();
                            joined.extend(right_rows[i].iter().cloned());
                            let keep = match residual {
                                Some(r) => r.eval_bool(&joined)?,
                                None => true,
                            };
                            if keep {
                                matched = true;
                                pending.push_back(joined);
                                *emitted += 1;
                                exec.check_limit(*emitted as usize)?;
                            }
                        }
                    }
                }
                if left_outer && !matched {
                    let mut joined = lrow.clone();
                    joined.extend(std::iter::repeat_n(Datum::Null, *right_width));
                    pending.push_back(joined);
                    *emitted += 1;
                    exec.check_limit(*emitted as usize)?;
                }
                Ok(())
            })?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.built = None;
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        let built = self.built.as_ref().map(|(r, _, _)| r.len() as u64).unwrap_or(0);
        built
            + self.pending.len() as u64
            + self.left.resident_rows()
            + self.right.resident_rows()
    }
}

/// Merge join: both (sorted) sides are pipeline breakers — they drain,
/// then the oracle's merge logic runs once and the result streams out.
struct MergeJoinOp<'x, 'a> {
    exec: &'x Executor<'a>,
    left: Box<dyn BlockOperator + 'x>,
    right: Box<dyn BlockOperator + 'x>,
    left_key: &'x PhysExpr,
    right_key: &'x PhysExpr,
    residual: Option<&'x PhysExpr>,
    out: Option<Vec<Row>>,
    pos: usize,
}

impl BlockOperator for MergeJoinOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.out.is_none() {
            let left_rows = drain_child(self.exec, self.left.as_mut())?;
            let right_rows = drain_child(self.exec, self.right.as_mut())?;
            let joined = self.exec.merge_join_rows(
                &left_rows,
                &right_rows,
                self.left_key,
                self.right_key,
                self.residual,
            )?;
            self.out = Some(joined);
            self.pos = 0;
        }
        let block_rows = self.exec.limits.block_rows;
        Ok(chunk_from(self.out.as_mut().unwrap(), &mut self.pos, block_rows))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.out = None;
    }

    fn resident_rows(&self) -> u64 {
        let buffered = self
            .out
            .as_ref()
            .map(|b| (b.len() - self.pos) as u64)
            .unwrap_or(0);
        buffered + self.left.resident_rows() + self.right.resident_rows()
    }
}

/// Nested-loop join: the inner (right) side is a pipeline breaker, the
/// outer (left) side streams block by block.
struct NestedLoopOp<'x, 'a> {
    exec: &'x Executor<'a>,
    left: Box<dyn BlockOperator + 'x>,
    right: Box<dyn BlockOperator + 'x>,
    predicate: Option<&'x PhysExpr>,
    left_outer: bool,
    right_rows: Option<Vec<Row>>,
    emitted: u64,
    pending: VecDeque<Row>,
    left_done: bool,
}

impl BlockOperator for NestedLoopOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        self.left.open()?;
        self.right.open()
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.right_rows.is_none() {
            self.right_rows = Some(drain_child(self.exec, self.right.as_mut())?);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        while self.pending.len() < block_rows && !self.left_done {
            let Some(block) = self.left.next_block()? else {
                self.left_done = true;
                break;
            };
            let right_rows = self.right_rows.as_ref().unwrap();
            let right_width = right_rows.first().map(Vec::len).unwrap_or(0);
            let predicate = self.predicate;
            let left_outer = self.left_outer;
            let exec = self.exec;
            let emitted = &mut self.emitted;
            let pending = &mut self.pending;
            block.for_each_row(|lrow| {
                let mut matched = false;
                for rrow in right_rows {
                    let mut joined = lrow.clone();
                    joined.extend(rrow.iter().cloned());
                    let keep = match predicate {
                        Some(p) => p.eval_bool(&joined)?,
                        None => true,
                    };
                    if keep {
                        matched = true;
                        pending.push_back(joined);
                        *emitted += 1;
                        exec.check_limit(*emitted as usize)?;
                    }
                }
                if left_outer && !matched {
                    let mut joined = lrow.clone();
                    joined.extend(std::iter::repeat_n(Datum::Null, right_width));
                    pending.push_back(joined);
                    // The oracle does not charge the outer pad row; match it.
                    *emitted += 1;
                }
                Ok(())
            })?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.left.close();
        self.right.close();
        self.right_rows = None;
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        let built = self.right_rows.as_ref().map(|r| r.len() as u64).unwrap_or(0);
        built
            + self.pending.len() as u64
            + self.left.resident_rows()
            + self.right.resident_rows()
    }
}

// ---------------------------------------------------------------------------
// Leaves

struct ValuesOp<'x, 'a> {
    exec: &'x Executor<'a>,
    rows: &'x [Vec<PhysExpr>],
    pos: usize,
}

impl BlockOperator for ValuesOp<'_, '_> {
    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let block_rows = self.exec.limits.block_rows.max(1);
        let end = (self.pos + block_rows).min(self.rows.len());
        let empty: Row = Vec::new();
        let mut out: Vec<Row> = Vec::with_capacity(end - self.pos);
        for exprs in &self.rows[self.pos..end] {
            let row: Row = exprs.iter().map(|e| e.eval(&empty)).collect::<DbResult<_>>()?;
            out.push(row);
        }
        self.pos = end;
        Ok(Some(RowBlock::from_rows(out)))
    }
}

// ---------------------------------------------------------------------------
// Morsel-parallel scan

/// The streaming version of the morsel-parallel scan→filter→project
/// pipeline. Work proceeds in synchronous *waves*: wave `w` dispatches
/// `min(2^w, workers)` consecutive morsels to scoped threads (morsel `i`
/// of the wave is deterministically morsel `base + i`), joins them, and
/// appends their outputs in morsel order — so the stitched stream is
/// byte-identical to the serial scan at any thread count, and a LIMIT
/// that stops pulling skips every wave after the one that satisfied it.
/// The ramp-up keeps tiny LIMITs from paying a full-width wave.
struct ParallelScanOp<'x, 'a> {
    exec: &'x Executor<'a>,
    pipe: ScanPipeline<'x>,
    high: u64,
    morsel_size: u64,
    n_morsels: u64,
    n_workers: usize,
    next_morsel: u64,
    wave: usize,
    budget: AtomicU64,
    pending: VecDeque<Row>,
    input_done: bool,
}

impl<'x, 'a> ParallelScanOp<'x, 'a> {
    /// Same gating as the oracle's `try_parallel_pipeline`: enough
    /// threads, a range-scannable source, and a table big enough to cut.
    fn try_new(
        exec: &'x Executor<'a>,
        pipe: ScanPipeline<'x>,
        high: u64,
    ) -> Option<ParallelScanOp<'x, 'a>> {
        const MIN_MORSEL_ROWS: u64 = 256;
        const MORSELS_PER_WORKER: u64 = 8;
        let threads = exec.limits.exec_threads.max(1);
        if threads <= 1 || high < MIN_MORSEL_ROWS * 2 {
            return None;
        }
        let target_morsels = threads as u64 * MORSELS_PER_WORKER;
        let morsel_size = (high / target_morsels).max(MIN_MORSEL_ROWS);
        let n_morsels = high.div_ceil(morsel_size);
        if n_morsels <= 1 {
            return None;
        }
        Some(ParallelScanOp {
            exec,
            pipe,
            high,
            morsel_size,
            n_morsels,
            n_workers: threads.min(n_morsels as usize),
            next_morsel: 0,
            wave: 1,
            budget: AtomicU64::new(0),
            pending: VecDeque::new(),
            input_done: false,
        })
    }

    fn run_wave(&mut self) -> DbResult<()> {
        let remaining = self.n_morsels - self.next_morsel;
        let k = (self.wave as u64).min(remaining).min(self.n_workers as u64) as usize;
        let base = self.next_morsel;
        let pipe = self.pipe;
        let exec = self.exec;
        let budget = &self.budget;
        let morsel_size = self.morsel_size;
        let high = self.high;
        let max_rows = exec.limits.max_intermediate_rows;
        let stats = exec.stats;

        let mut results: Vec<Result<Vec<Row>, DbError>> = Vec::with_capacity(k);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|i| {
                    let m = base + i as u64;
                    s.spawn(move || -> Result<Vec<Row>, DbError> {
                        let mut ctx = EvalCtx::new();
                        let start = m * morsel_size;
                        let end = high.min(start + morsel_size);
                        let mut rows_seen = 0u64;
                        let mut out: Vec<Row> = Vec::new();
                        if let Some(f) = pipe.scan_filter {
                            f.begin_block();
                        }
                        if let Some(f) = pipe.post_filter {
                            f.begin_block();
                        }
                        if let Some(exprs) = pipe.project {
                            for e in exprs {
                                e.begin_block();
                            }
                        }
                        // Catch panics per morsel: an evaluator bug in one
                        // worker must surface as a clean DbError.
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                exec.source.scan_table_range(
                                    pipe.table,
                                    pipe.needed,
                                    start,
                                    end,
                                    &mut |row| {
                                        rows_seen += 1;
                                        ctx.reset();
                                        let keep = match pipe.scan_filter {
                                            Some(f) => f.eval_bool_ctx(&row, &mut ctx)?,
                                            None => true,
                                        };
                                        if !keep {
                                            return Ok(true);
                                        }
                                        if budget.fetch_add(1, Ordering::Relaxed) + 1 > max_rows
                                        {
                                            return Err(DbError::ResourceExhausted(format!(
                                                "intermediate result exceeded {max_rows} rows"
                                            )));
                                        }
                                        if let Some(p) = pipe.post_filter {
                                            if !p.eval_bool_ctx(&row, &mut ctx)? {
                                                return Ok(true);
                                            }
                                        }
                                        match pipe.project {
                                            Some(exprs) => {
                                                let mut new_row =
                                                    Vec::with_capacity(exprs.len());
                                                for e in exprs {
                                                    new_row.push(e.eval_ctx(&row, &mut ctx)?);
                                                }
                                                out.push(new_row);
                                            }
                                            None => out.push(row),
                                        }
                                        Ok(true)
                                    },
                                )
                            }));
                        if let Some(f) = pipe.scan_filter {
                            f.end_block();
                        }
                        if let Some(f) = pipe.post_filter {
                            f.end_block();
                        }
                        if let Some(exprs) = pipe.project {
                            for e in exprs {
                                e.end_block();
                            }
                        }
                        match result {
                            Ok(Ok(())) => {
                                if let Some(st) = stats {
                                    st.record_morsel(rows_seen);
                                }
                                Ok(out)
                            }
                            Ok(Err(e)) => Err(e),
                            Err(payload) => Err(DbError::Eval(format!(
                                "scan worker panicked: {}",
                                panic_message(payload.as_ref())
                            ))),
                        }
                    })
                })
                .collect();
            for h in handles {
                results.push(match h.join() {
                    Ok(r) => r,
                    Err(payload) => Err(DbError::Eval(format!(
                        "scan worker panicked: {}",
                        panic_message(payload.as_ref())
                    ))),
                });
            }
        });
        if let Some(st) = stats {
            st.morsels_dispatched.fetch_add(k as u64, Ordering::Relaxed);
        }
        // Results are in morsel order; the lowest failing morsel wins,
        // matching the oracle's deterministic error choice.
        for r in results {
            self.pending.extend(r?);
        }
        self.next_morsel += k as u64;
        if self.next_morsel >= self.n_morsels {
            self.input_done = true;
        }
        self.wave = (self.wave * 2).min(self.n_workers);
        Ok(())
    }
}

impl BlockOperator for ParallelScanOp<'_, '_> {
    fn open(&mut self) -> DbResult<()> {
        if let Some(st) = self.exec.stats {
            st.parallel_scans.fetch_add(1, Ordering::Relaxed);
            st.scan_workers.fetch_add(self.n_workers as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn next_block(&mut self) -> DbResult<Option<RowBlock>> {
        let block_rows = self.exec.limits.block_rows.max(1);
        while !self.input_done && self.pending.len() < block_rows {
            self.run_wave()?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let n = self.pending.len().min(block_rows);
        let out: Vec<Row> = self.pending.drain(..n).collect();
        Ok(Some(RowBlock::from_rows(out)))
    }

    fn close(&mut self) {
        self.pending.clear();
    }

    fn resident_rows(&self) -> u64 {
        self.pending.len() as u64
    }
}
