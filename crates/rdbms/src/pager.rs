//! Page storage with a buffer pool.
//!
//! A `Pager` owns all pages of one database, either purely in memory or
//! backed by a file with an LRU buffer pool of configurable capacity. The
//! pool is what lets the experiment harness reproduce the paper's two
//! regimes (§6): datasets smaller than the pool are CPU-bound with warm
//! caches; datasets larger than the pool become I/O-bound.
//!
//! Because modern OS page caches would hide most file latency at our
//! scaled-down sizes, the pager supports an optional *simulated* per-miss
//! latency (`io_delay`), calibrated by the harness to the paper's measured
//! 250–300 MB/s read bandwidth. This substitution is documented in
//! DESIGN.md; correctness never depends on it, only bench realism.

use crate::error::{DbError, DbResult};
use crate::page::{self, PAGE_SIZE};
use crate::wal::Wal;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub type PageId = u64;

/// Counters exposed to benches and EXPLAIN ANALYZE-style reporting.
#[derive(Debug, Default)]
pub struct IoStats {
    pub disk_reads: AtomicU64,
    pub disk_writes: AtomicU64,
    pub cache_hits: AtomicU64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub cache_hits: u64,
}

struct Frame {
    data: Box<[u8]>,
    /// Only mutated under the write lock; readers never look at it.
    dirty: bool,
    /// Dirtied by a statement whose WAL commit hasn't happened yet. Such
    /// frames are pinned against eviction (a *no-steal* policy): the data
    /// file must never see a page image that isn't in the log first.
    uncommitted: bool,
    /// LRU tick of last access. Atomic so shared-lock readers can bump it.
    last_used: AtomicU64,
}

impl Frame {
    fn new(data: Box<[u8]>, dirty: bool, uncommitted: bool, tick: u64) -> Frame {
        Frame { data, dirty, uncommitted, last_used: AtomicU64::new(tick) }
    }
}

struct Inner {
    file: Option<File>,
    /// Frames resident in memory. In memory-mode this holds *all* pages.
    frames: HashMap<PageId, Frame>,
    n_pages: u64,
    /// Max resident frames in file mode; unlimited in memory mode.
    capacity: usize,
}

/// The page manager. Resident-page reads take the pool lock *shared*, so
/// a parallel scan's workers read warm pages concurrently; only faults,
/// writes, and eviction take it exclusively.
pub struct Pager {
    inner: RwLock<Inner>,
    tick: AtomicU64,
    stats: IoStats,
    io_delay: Option<Duration>,
    /// When true, mutations mark frames `uncommitted` until the owning
    /// statement's WAL commit drains them via
    /// [`Pager::take_uncommitted_images`].
    wal_mode: bool,
    /// Under group commit a frame's covering commit record may still be
    /// unsynced when the frame comes up for eviction; write-back forces
    /// the log down first so the data file never runs ahead of it.
    wal_hook: OnceLock<Arc<Wal>>,
}

impl Pager {
    /// All pages live in memory; no eviction, no I/O.
    pub fn in_memory() -> Pager {
        Pager {
            inner: RwLock::new(Inner {
                file: None,
                frames: HashMap::new(),
                n_pages: 0,
                capacity: usize::MAX,
            }),
            tick: AtomicU64::new(0),
            stats: IoStats::default(),
            io_delay: None,
            wal_mode: false,
            wal_hook: OnceLock::new(),
        }
    }

    /// File-backed pager with an LRU pool of `pool_pages` frames.
    pub fn open(path: &Path, pool_pages: usize) -> DbResult<Pager> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            inner: RwLock::new(Inner {
                file: Some(file),
                frames: HashMap::new(),
                n_pages: 0,
                capacity: pool_pages.max(8),
            }),
            tick: AtomicU64::new(0),
            stats: IoStats::default(),
            io_delay: None,
            wal_mode: false,
            wal_hook: OnceLock::new(),
        })
    }

    /// File-backed pager over an **existing** data file (the recovery
    /// path): nothing is truncated, and the first `n_pages` pages of the
    /// file are addressable immediately.
    pub fn open_existing(path: &Path, pool_pages: usize, n_pages: u64) -> DbResult<Pager> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(Pager {
            inner: RwLock::new(Inner {
                file: Some(file),
                frames: HashMap::new(),
                n_pages,
                capacity: pool_pages.max(8),
            }),
            tick: AtomicU64::new(0),
            stats: IoStats::default(),
            io_delay: None,
            wal_mode: false,
            wal_hook: OnceLock::new(),
        })
    }

    /// Add a simulated latency per buffer-pool miss (read or write-back).
    pub fn with_io_delay(mut self, delay: Duration) -> Pager {
        self.io_delay = Some(delay);
        self
    }

    /// Enable WAL discipline: mutated frames are held as `uncommitted`
    /// (never evicted) until drained at the statement's commit point.
    pub fn with_wal_mode(mut self, on: bool) -> Pager {
        self.wal_mode = on;
        self
    }

    /// Attach the log so write-back can force any group-commit backlog to
    /// disk before a page image reaches the data file. Set once, right
    /// after the WAL is opened; a second call is ignored.
    pub fn set_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal_hook.set(wal);
    }

    /// Allocate a fresh, zeroed, page-initialized page.
    pub fn alloc(&self) -> DbResult<PageId> {
        self.alloc_inner(true, self.wal_mode)
    }

    /// Allocate a raw (uninitialized-layout) page for jumbo chains.
    pub fn alloc_raw(&self) -> DbResult<PageId> {
        self.alloc_inner(false, self.wal_mode)
    }

    /// Allocate a raw page *outside* the WAL: used for derived structures
    /// (B-tree leaves) that recovery rebuilds from the heap instead of
    /// replaying, so their churn never bloats the log.
    pub fn alloc_raw_unlogged(&self) -> DbResult<PageId> {
        self.alloc_inner(false, false)
    }

    fn alloc_inner(&self, init: bool, uncommitted: bool) -> DbResult<PageId> {
        let mut inner = self.inner.write();
        let id = inner.n_pages;
        inner.n_pages += 1;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        if init {
            page::init(&mut data);
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.make_room(&mut inner)?;
        inner.frames.insert(id, Frame::new(data, true, uncommitted, tick));
        Ok(id)
    }

    /// Read access to a page. Resident pages are served under the shared
    /// lock (concurrent readers never serialize); only a pool miss
    /// upgrades to the exclusive lock to fault the page in.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> DbResult<R> {
        {
            let inner = self.inner.read();
            // Range check first so the error matches the exclusive path.
            if id >= inner.n_pages {
                return Err(DbError::Io(format!("page {id} out of range")));
            }
            if let Some(frame) = inner.frames.get(&id) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                frame.last_used.store(tick, Ordering::Relaxed);
                return Ok(f(&frame.data));
            }
        }
        let mut inner = self.inner.write();
        self.fault_in(&mut inner, id)?;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let frame = inner.frames.get(&id).expect("faulted in");
        frame.last_used.store(tick, Ordering::Relaxed);
        Ok(f(&frame.data))
    }

    /// Write access to a page; marks it dirty (and, under WAL discipline,
    /// uncommitted until the statement's commit point drains it).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> DbResult<R> {
        self.with_page_mut_inner(id, self.wal_mode, f)
    }

    /// Write access *outside* the WAL, for derived structures (B-tree
    /// leaves) that recovery rebuilds rather than replays.
    pub fn with_page_mut_unlogged<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> DbResult<R> {
        self.with_page_mut_inner(id, false, f)
    }

    fn with_page_mut_inner<R>(
        &self,
        id: PageId,
        uncommitted: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> DbResult<R> {
        let mut inner = self.inner.write();
        self.fault_in(&mut inner, id)?;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let frame = inner.frames.get_mut(&id).expect("faulted in");
        *frame.last_used.get_mut() = tick;
        frame.dirty = true;
        frame.uncommitted |= uncommitted;
        Ok(f(&mut frame.data))
    }

    /// Drain the images of every uncommitted frame (sorted by page id for
    /// deterministic logs) and clear their flags — the statement commit
    /// point. The frames stay dirty and resident; once their images are
    /// in the log they become evictable again.
    pub fn take_uncommitted_images(&self) -> Vec<(PageId, Box<[u8]>)> {
        let mut inner = self.inner.write();
        let mut out: Vec<(PageId, Box<[u8]>)> = Vec::new();
        for (id, fr) in inner.frames.iter_mut() {
            if fr.uncommitted {
                fr.uncommitted = false;
                out.push((*id, fr.data.clone()));
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Whether any frame carries changes not yet drained to a WAL commit
    /// — i.e. an errored statement left partial effects behind.
    pub fn has_uncommitted(&self) -> bool {
        self.inner.read().frames.values().any(|fr| fr.uncommitted)
    }

    pub fn n_pages(&self) -> u64 {
        self.inner.read().n_pages
    }

    /// Total size of the database in bytes (pages × page size).
    pub fn size_bytes(&self) -> u64 {
        self.n_pages() * PAGE_SIZE as u64
    }

    pub fn stats(&self) -> IoSnapshot {
        IoSnapshot {
            disk_reads: self.stats.disk_reads.load(Ordering::Relaxed),
            disk_writes: self.stats.disk_writes.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
        }
    }

    pub fn reset_stats(&self) {
        self.stats.disk_reads.store(0, Ordering::Relaxed);
        self.stats.disk_writes.store(0, Ordering::Relaxed);
        self.stats.cache_hits.store(0, Ordering::Relaxed);
    }

    /// Write back all dirty frames (no-op in memory mode).
    pub fn flush(&self) -> DbResult<()> {
        let mut inner = self.inner.write();
        if inner.file.is_none() {
            return Ok(());
        }
        let ids: Vec<PageId> =
            inner.frames.iter().filter(|(_, fr)| fr.dirty).map(|(id, _)| *id).collect();
        for id in ids {
            self.write_back(&mut inner, id)?;
        }
        if let Some(f) = &mut inner.file {
            f.flush()?;
        }
        Ok(())
    }

    /// Write back all dirty frames and `fsync` the data file — the
    /// checkpoint barrier: after this returns, the log's history before
    /// the checkpoint is no longer needed.
    pub fn flush_and_sync(&self) -> DbResult<()> {
        let mut inner = self.inner.write();
        if inner.file.is_none() {
            return Ok(());
        }
        let ids: Vec<PageId> =
            inner.frames.iter().filter(|(_, fr)| fr.dirty).map(|(id, _)| *id).collect();
        for id in ids {
            self.write_back(&mut inner, id)?;
        }
        if let Some(f) = &mut inner.file {
            f.sync_all()?;
        }
        Ok(())
    }

    /// Drop every clean frame and write back + drop dirty ones: simulates a
    /// cold cache for benchmarking. Uncommitted frames are skipped — the
    /// no-steal pin holds here too: an image whose statement hasn't
    /// committed must never reach the data file ahead of the WAL.
    pub fn evict_all(&self) -> DbResult<()> {
        let mut inner = self.inner.write();
        if inner.file.is_none() {
            return Ok(()); // memory mode: nothing to evict to
        }
        let ids: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, fr)| !fr.uncommitted)
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.write_back(&mut inner, id)?;
            inner.frames.remove(&id);
        }
        Ok(())
    }

    fn fault_in(&self, inner: &mut Inner, id: PageId) -> DbResult<()> {
        if id >= inner.n_pages {
            return Err(DbError::Io(format!("page {id} out of range")));
        }
        if inner.frames.contains_key(&id) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        // miss: read from file
        let Some(file) = &mut inner.file else {
            return Err(DbError::Io(format!("page {id} evicted without backing file")));
        };
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        // Pages past EOF (never written back) read as zero, but that cannot
        // happen: eviction always writes dirty pages and fresh pages are
        // dirty from birth.
        file.read_exact(&mut data)?;
        self.stats.disk_reads.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.io_delay {
            std::thread::sleep(d);
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        self.make_room(inner)?;
        inner.frames.insert(id, Frame::new(data, false, false, tick));
        Ok(())
    }

    fn make_room(&self, inner: &mut Inner) -> DbResult<()> {
        while inner.frames.len() >= inner.capacity {
            // No-steal: uncommitted frames are pinned (their images must
            // reach the WAL before the data file may see them). If every
            // frame is pinned the pool temporarily exceeds capacity; the
            // statement's commit point unpins them all.
            let victim = inner
                .frames
                .iter()
                .filter(|(_, fr)| !fr.uncommitted)
                .min_by_key(|(_, fr)| fr.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id);
            let Some(victim) = victim else { return Ok(()) };
            self.write_back(inner, victim)?;
            inner.frames.remove(&victim);
        }
        Ok(())
    }

    /// Evict LRU frames until the pool is back within capacity — the
    /// counterpart to the no-steal overflow: a statement that dirtied more
    /// pages than the pool holds calls this right after its WAL commit
    /// unpins them.
    pub fn shrink_to_capacity(&self) -> DbResult<()> {
        let mut inner = self.inner.write();
        if inner.file.is_none() {
            return Ok(());
        }
        while inner.frames.len() > inner.capacity {
            let victim = inner
                .frames
                .iter()
                .filter(|(_, fr)| !fr.uncommitted)
                .min_by_key(|(_, fr)| fr.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id);
            let Some(victim) = victim else { return Ok(()) };
            self.write_back(&mut inner, victim)?;
            inner.frames.remove(&victim);
        }
        Ok(())
    }

    fn write_back(&self, inner: &mut Inner, id: PageId) -> DbResult<()> {
        let dirty = inner.frames.get(&id).map(|fr| fr.dirty).unwrap_or(false);
        if !dirty {
            return Ok(());
        }
        // WAL-before-data: the commit covering this image may still sit in
        // the group-commit window; force it down before the page goes out.
        // (No-op when nothing is unsynced, so the common case is free.)
        if let Some(w) = self.wal_hook.get() {
            w.sync()?;
        }
        let data_ptr: Box<[u8]> = inner.frames.get(&id).unwrap().data.clone();
        let Some(file) = &mut inner.file else {
            return Ok(());
        };
        file.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        file.write_all(&data_ptr)?;
        self.stats.disk_writes.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = self.io_delay {
            std::thread::sleep(d);
        }
        if let Some(fr) = inner.frames.get_mut(&id) {
            fr.dirty = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_mode_basics() {
        let p = Pager::in_memory();
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        p.with_page_mut(a, |pg| {
            page::insert(pg, b"data").unwrap();
        })
        .unwrap();
        let got = p.with_page(a, |pg| page::read(pg, 0).map(<[u8]>::to_vec)).unwrap();
        assert_eq!(got, Some(b"data".to_vec()));
        assert!(p.with_page(99, |_| ()).is_err());
    }

    #[test]
    fn file_mode_evicts_and_reloads() {
        let dir = std::env::temp_dir().join(format!("sinew-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let p = Pager::open(&path, 8).unwrap();
        let mut ids = Vec::new();
        for i in 0..64u64 {
            let id = p.alloc().unwrap();
            p.with_page_mut(id, |pg| {
                page::insert(pg, format!("tuple-{i}").as_bytes()).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        // far more pages than capacity: early ones must have been evicted
        let snap = p.stats();
        assert!(snap.disk_writes > 0, "evictions wrote back");
        for (i, id) in ids.iter().enumerate() {
            let got = p.with_page(*id, |pg| page::read(pg, 0).map(<[u8]>::to_vec)).unwrap();
            assert_eq!(got, Some(format!("tuple-{i}").into_bytes()));
        }
        assert!(p.stats().disk_reads > 0, "reload faulted pages in");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_persists_dirty_pages() {
        let dir = std::env::temp_dir().join(format!("sinew-pager-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let p = Pager::open(&path, 128).unwrap();
        let id = p.alloc().unwrap();
        p.with_page_mut(id, |pg| {
            page::insert(pg, b"persist-me").unwrap();
        })
        .unwrap();
        p.flush().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len >= PAGE_SIZE as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_all_honours_no_steal_pin() {
        let dir = std::env::temp_dir().join(format!("sinew-pager-ns-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = Pager::open(&dir.join("t.db"), 64).unwrap().with_wal_mode(true);
        let id = p.alloc().unwrap();
        p.with_page_mut(id, |pg| {
            page::insert(pg, b"pinned").unwrap();
        })
        .unwrap();
        assert!(p.has_uncommitted());
        // The image never reached a WAL commit: eviction must skip it —
        // no write to the data file, frame stays resident.
        p.evict_all().unwrap();
        assert_eq!(p.stats().disk_writes, 0);
        p.with_page(id, |_| ()).unwrap();
        assert_eq!(p.stats().disk_reads, 0, "served from the pinned frame");
        // Draining at the commit point unpins; eviction then writes back.
        let images = p.take_uncommitted_images();
        assert_eq!(images.len(), 1);
        assert!(!p.has_uncommitted());
        p.evict_all().unwrap();
        assert_eq!(p.stats().disk_writes, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_all_simulates_cold_cache() {
        let dir = std::env::temp_dir().join(format!("sinew-pager-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = Pager::open(&dir.join("t.db"), 64).unwrap();
        let id = p.alloc().unwrap();
        p.with_page_mut(id, |pg| {
            page::insert(pg, b"x").unwrap();
        })
        .unwrap();
        p.evict_all().unwrap();
        p.reset_stats();
        p.with_page(id, |_| ()).unwrap();
        assert_eq!(p.stats().disk_reads, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
