//! Scalar function registry — builtins plus user-defined functions.
//!
//! UDF support is the one extensibility hook Sinew needs from its RDBMS:
//! the paper implements serialization and key extraction "through a set of
//! user-defined functions (UDFs) ... which allows Sinew to push down query
//! logic completely into the RDBMS" (§5). Crucially, UDFs are *opaque to the
//! optimizer* — no statistics exist for their outputs — which is the
//! structural reason virtual columns get default selectivity estimates
//! (paper §3.1.1, Table 2).

use crate::datum::{ColType, Datum};
use crate::error::{DbError, DbResult};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A scalar function implementation.
pub trait ScalarFn: Send + Sync {
    fn call(&self, args: &[Datum]) -> DbResult<Datum>;

    /// Borrowed-argument entry point, used by the executor's expression
    /// evaluator: Literal and Column arguments are passed by reference so
    /// hot functions need not pay a clone per row (for extraction UDFs the
    /// first argument is the whole serialized document — cloning it per
    /// call is the single largest avoidable cost of a scan). The default
    /// materializes owned values and delegates to [`ScalarFn::call`];
    /// implementations that only read their arguments should override.
    fn call_ref(&self, args: &[&Datum]) -> DbResult<Datum> {
        let owned: Vec<Datum> = args.iter().map(|d| (*d).clone()).collect();
        self.call(&owned)
    }

    /// Hook called by the streaming executor before a block of rows is
    /// evaluated. Stateful implementations (extraction UDFs with cached
    /// `ExtractionPlan`s) use it to revalidate their cache once per block
    /// instead of once per row; pure functions need not care. Every
    /// `begin_block` is paired with an [`ScalarFn::end_block`] — including
    /// on evaluation error — so implementations may rely on bracketing.
    fn begin_block(&self) {}

    /// Paired with [`ScalarFn::begin_block`] after the block completes.
    fn end_block(&self) {}
}

impl<F> ScalarFn for F
where
    F: Fn(&[Datum]) -> DbResult<Datum> + Send + Sync,
{
    fn call(&self, args: &[Datum]) -> DbResult<Datum> {
        self(args)
    }
}

/// Thread-safe function registry.
pub struct FuncRegistry {
    funcs: RwLock<HashMap<String, Arc<dyn ScalarFn>>>,
    /// Names declared *pure* (deterministic, side-effect free). The
    /// planner only memoizes / common-subexpression-eliminates calls to
    /// pure functions; anything unregistered here is conservatively
    /// treated as effectful.
    pure: RwLock<HashSet<String>>,
}

impl Default for FuncRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl FuncRegistry {
    pub fn new() -> FuncRegistry {
        let reg = FuncRegistry {
            funcs: RwLock::new(HashMap::new()),
            pure: RwLock::new(HashSet::new()),
        };
        reg.install_builtins();
        reg
    }

    pub fn register(&self, name: &str, f: Arc<dyn ScalarFn>) {
        self.funcs.write().insert(name.to_ascii_lowercase(), f);
    }

    /// Register a function and declare it pure (safe to memoize per row).
    pub fn register_pure(&self, name: &str, f: Arc<dyn ScalarFn>) {
        self.register(name, f);
        self.pure.write().insert(name.to_ascii_lowercase());
    }

    /// Is `name` declared pure?
    pub fn is_pure(&self, name: &str) -> bool {
        self.pure.read().contains(&name.to_ascii_lowercase())
    }

    pub fn get(&self, name: &str) -> Option<Arc<dyn ScalarFn>> {
        self.funcs.read().get(&name.to_ascii_lowercase()).cloned()
    }

    fn install_builtins(&self) {
        self.register_pure("coalesce", Arc::new(coalesce));
        self.register_pure("lower", Arc::new(lower));
        self.register_pure("upper", Arc::new(upper));
        self.register_pure("length", Arc::new(length));
        self.register_pure("abs", Arc::new(abs));
        self.register_pure("round", Arc::new(round));
        self.register_pure("array_length", Arc::new(array_length));
        self.register_pure("array_contains", Arc::new(array_contains));
        self.register_pure("array_get", Arc::new(array_get));
    }
}

fn coalesce(args: &[Datum]) -> DbResult<Datum> {
    Ok(args.iter().find(|d| !d.is_null()).cloned().unwrap_or(Datum::Null))
}

fn lower(args: &[Datum]) -> DbResult<Datum> {
    unary_text(args, "lower", |s| s.to_lowercase())
}

fn upper(args: &[Datum]) -> DbResult<Datum> {
    unary_text(args, "upper", |s| s.to_uppercase())
}

fn unary_text(args: &[Datum], name: &str, f: impl Fn(&str) -> String) -> DbResult<Datum> {
    match args {
        [Datum::Null] => Ok(Datum::Null),
        [Datum::Text(s)] => Ok(Datum::Text(f(s))),
        [other] => Ok(Datum::Text(f(&other.display_text()))),
        _ => Err(DbError::Eval(format!("{name} expects 1 argument"))),
    }
}

fn length(args: &[Datum]) -> DbResult<Datum> {
    match args {
        [Datum::Null] => Ok(Datum::Null),
        [Datum::Text(s)] => Ok(Datum::Int(s.chars().count() as i64)),
        [Datum::Bytea(b)] => Ok(Datum::Int(b.len() as i64)),
        [Datum::Array(a)] => Ok(Datum::Int(a.len() as i64)),
        _ => Err(DbError::Eval("length expects 1 string/bytea/array argument".into())),
    }
}

fn abs(args: &[Datum]) -> DbResult<Datum> {
    match args {
        [Datum::Null] => Ok(Datum::Null),
        [Datum::Int(i)] => Ok(Datum::Int(i.abs())),
        [Datum::Float(f)] => Ok(Datum::Float(f.abs())),
        _ => Err(DbError::Eval("abs expects 1 numeric argument".into())),
    }
}

fn round(args: &[Datum]) -> DbResult<Datum> {
    match args {
        [Datum::Null] => Ok(Datum::Null),
        [Datum::Int(i)] => Ok(Datum::Int(*i)),
        [Datum::Float(f)] => Ok(Datum::Float(f.round())),
        _ => Err(DbError::Eval("round expects 1 numeric argument".into())),
    }
}

fn array_length(args: &[Datum]) -> DbResult<Datum> {
    match args {
        [Datum::Null] => Ok(Datum::Null),
        [Datum::Array(a)] => Ok(Datum::Int(a.len() as i64)),
        _ => Err(DbError::Eval("array_length expects 1 array argument".into())),
    }
}

/// `array_contains(arr, elem)` — the array-containment predicate NoBench
/// Q9 needs (paper §6.4); the PG-JSON baseline cannot express this natively
/// (paper §6.7) and falls back to LIKE over the text form.
fn array_contains(args: &[Datum]) -> DbResult<Datum> {
    match args {
        [Datum::Null, _] => Ok(Datum::Null),
        [Datum::Array(a), needle] => Ok(Datum::Bool(
            a.iter().any(|d| d.sql_eq(needle).unwrap_or(false)),
        )),
        _ => Err(DbError::Eval("array_contains expects (array, value)".into())),
    }
}

/// `array_get(arr, idx)` — zero-based element access; NULL out of bounds.
fn array_get(args: &[Datum]) -> DbResult<Datum> {
    match args {
        [Datum::Null, _] => Ok(Datum::Null),
        [Datum::Array(a), Datum::Int(i)] => {
            Ok(usize::try_from(*i).ok().and_then(|i| a.get(i)).cloned().unwrap_or(Datum::Null))
        }
        _ => Err(DbError::Eval("array_get expects (array, int)".into())),
    }
}

/// ColType parse helper shared by extraction UDF implementations.
pub fn coltype_from_text(s: &str) -> Option<ColType> {
    Some(match s {
        "bool" => ColType::Bool,
        "int" => ColType::Int,
        "float" => ColType::Float,
        "text" => ColType::Text,
        "bytea" => ColType::Bytea,
        "array" => ColType::Array,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_picks_first_non_null() {
        let r = FuncRegistry::new();
        let f = r.get("COALESCE").unwrap();
        assert_eq!(
            f.call(&[Datum::Null, Datum::Int(2), Datum::Int(3)]).unwrap(),
            Datum::Int(2)
        );
        assert_eq!(f.call(&[Datum::Null, Datum::Null]).unwrap(), Datum::Null);
        assert_eq!(f.call(&[]).unwrap(), Datum::Null);
    }

    #[test]
    fn array_functions() {
        let r = FuncRegistry::new();
        let arr = Datum::Array(vec![Datum::Int(1), Datum::Text("x".into())]);
        assert_eq!(
            r.get("array_contains").unwrap().call(&[arr.clone(), Datum::Int(1)]).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(
            r.get("array_contains").unwrap().call(&[arr.clone(), Datum::Int(9)]).unwrap(),
            Datum::Bool(false)
        );
        assert_eq!(
            r.get("array_get").unwrap().call(&[arr.clone(), Datum::Int(1)]).unwrap(),
            Datum::Text("x".into())
        );
        assert_eq!(
            r.get("array_get").unwrap().call(&[arr, Datum::Int(5)]).unwrap(),
            Datum::Null
        );
    }

    #[test]
    fn udf_registration_and_case_insensitivity() {
        let r = FuncRegistry::new();
        r.register("My_Udf", Arc::new(|args: &[Datum]| Ok(args[0].clone())));
        assert!(r.get("my_udf").is_some());
        assert!(r.get("MY_UDF").is_some());
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn text_functions() {
        let r = FuncRegistry::new();
        assert_eq!(
            r.get("lower").unwrap().call(&[Datum::Text("AbC".into())]).unwrap(),
            Datum::Text("abc".into())
        );
        assert_eq!(
            r.get("length").unwrap().call(&[Datum::Text("héllo".into())]).unwrap(),
            Datum::Int(5)
        );
    }
}
