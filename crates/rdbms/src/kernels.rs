//! SIMD-width batch kernels for the columnar segment stores.
//!
//! [`crate::columnar`]'s segments keep values FOR-bit-packed (ints),
//! dictionary-coded (low-cardinality strings) or run-length encoded; this
//! module supplies the word-parallel primitives their scan and gather
//! paths run on:
//!
//! * **batched bit-unpacking** ([`unpack64`]) — a 64-value block of a
//!   `bits`-wide packed array always spans exactly `bits` whole words
//!   (64·bits is a multiple of 64), so a block decodes with straight-line
//!   shifts and masks, no per-value bounds or offset arithmetic;
//! * **range compare masks** ([`range_mask64`]) — 64 packed values against
//!   an inclusive `[lo, hi]` code range in one pass, returning a bitmask
//!   that ANDs directly with the segment's live/valid bitmap words. With
//!   the `simd` cargo feature on an AVX2 machine the compare runs on
//!   256-bit vectors; the scalar loop is the fallback and the oracle;
//! * **selection-vector emission** ([`select_packed`]) — whole bitmap
//!   words that are all-dead or all-matching skip per-slot work entirely
//!   (counted as fastpath hits);
//! * **batched gather** ([`gather_codes`]) — offset runs dense enough in
//!   one 64-block decode the block once and index it, instead of paying
//!   the per-value `pack_get` shift dance.
//!
//! `SINEW_SIMD=0` (read fresh per kernel call, like `SINEW_COLUMNAR`)
//! routes every caller back to the PR 6 scalar per-slot loops, which the
//! differential tests use as the oracle. The batched paths are exact — no
//! tolerance, byte-identical output — so the knob is an oracle, not a
//! accuracy trade.

/// Values per batch: one bitmap word's worth, the unit both the unpack and
/// the compare kernels operate on.
pub const LANES: usize = 64;

/// Minimum offsets landing in one 64-block before gather decodes the whole
/// block instead of per-value `pack_get`s. At 8+ hits the block decode
/// (≤ 63 word reads) amortizes below the per-value shift/mask pairs.
pub(crate) const GATHER_BATCH_MIN: usize = 8;

/// Batched kernels enabled? `SINEW_SIMD=0` (or empty) falls back to the
/// scalar per-slot paths. Read fresh on every segment call so tests and
/// benches can flip it at runtime.
pub fn batched_enabled() -> bool {
    std::env::var("SINEW_SIMD").map(|v| !v.is_empty() && v != "0").unwrap_or(true)
}

/// Engagement counters for one kernel invocation, folded up into
/// [`crate::exec::ExecStats`] by the executor.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Value-level decodes/compares the kernel charged (live-valid slots
    /// visited, dictionary entries evaluated, RLE run compares).
    pub decoded: u64,
    /// Values decoded through the 64-wide batched paths.
    pub batched: u64,
    /// Whole 64-slot bitmap words handled by a fast path (all-dead skip,
    /// all-match emit) without per-slot predicate work.
    pub fastpath_words: u64,
    /// Predicates rewritten to a packed dictionary-code range.
    pub dict_rewrites: u64,
    /// RLE runs rejected (or NULL-skipped) with a single run-level compare.
    pub rle_runs_skipped: u64,
}

impl KernelStats {
    pub fn merge(&mut self, o: &KernelStats) {
        self.decoded += o.decoded;
        self.batched += o.batched;
        self.fastpath_words += o.fastpath_words;
        self.dict_rewrites += o.dict_rewrites;
        self.rle_runs_skipped += o.rle_runs_skipped;
    }
}

#[inline]
pub(crate) fn pack_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Read the `i`-th `bits`-wide value from a packed word array.
#[inline]
pub(crate) fn pack_get(words: &[u64], bits: u32, i: usize) -> u64 {
    if bits == 0 {
        return 0;
    }
    let start = i * bits as usize;
    let w = start >> 6;
    let off = (start & 63) as u32;
    let mut v = words[w] >> off;
    if off + bits > 64 {
        v |= words[w + 1] << (64 - off);
    }
    v & pack_mask(bits)
}

/// Append value `v` (already masked to `bits`) at position `i`; positions
/// must be written in order starting from 0.
pub(crate) fn pack_push(words: &mut Vec<u64>, bits: u32, i: usize, v: u64) {
    if bits == 0 {
        return;
    }
    let start = i * bits as usize;
    let w = start >> 6;
    let off = (start & 63) as u32;
    if w == words.len() {
        words.push(0);
    }
    words[w] |= v << off;
    if off + bits > 64 {
        words.push(v >> (64 - off));
    }
}

/// Decode packed block `block` (values `block*64 .. block*64+64`) into
/// `out`. A 64-value block of `bits`-wide values occupies exactly `bits`
/// whole words starting at word `block * bits`, so the loop is pure
/// shift/mask word walking — the batched replacement for 64 `pack_get`s.
#[inline]
pub(crate) fn unpack64(words: &[u64], bits: u32, block: usize, out: &mut [u64; LANES]) {
    if bits == 0 {
        out.fill(0);
        return;
    }
    let src = &words[block * bits as usize..][..bits as usize];
    let mask = pack_mask(bits);
    let mut off = 0u32;
    let mut w = 0usize;
    for o in out.iter_mut() {
        let mut v = src[w] >> off;
        if off + bits > 64 {
            v |= src[w + 1] << (64 - off);
        }
        *o = v & mask;
        off += bits;
        if off >= 64 {
            off -= 64;
            w += 1;
        }
    }
}

/// Lane-wise `lo <= v && v <= hi` over one 64-value batch, as a bitmask
/// (bit i set ⇔ lane i in range). Scalar reference implementation.
#[inline]
fn range_mask64_scalar(vals: &[u64; LANES], lo: u64, hi: u64) -> u64 {
    let mut m = 0u64;
    for (i, &v) in vals.iter().enumerate() {
        m |= ((v >= lo && v <= hi) as u64) << i;
    }
    m
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use super::LANES;
    use std::arch::x86_64::*;

    /// AVX2 range compare: 16 chunks of 4 × 64-bit lanes. AVX2 has no
    /// unsigned 64-bit compare, so lanes and bounds are sign-biased
    /// (XOR 2^63) first: that maps unsigned order onto signed order for
    /// every input, including 64-bit pack widths whose values and bound
    /// clamps reach above 2^63.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn range_mask64(vals: &[u64; LANES], lo: u64, hi: u64) -> u64 {
        let bias = _mm256_set1_epi64x(i64::MIN);
        let vlo = _mm256_set1_epi64x((lo ^ 1u64 << 63) as i64);
        let vhi = _mm256_set1_epi64x((hi ^ 1u64 << 63) as i64);
        let mut m = 0u64;
        for c in 0..LANES / 4 {
            let v = _mm256_loadu_si256(vals.as_ptr().add(c * 4) as *const __m256i);
            let v = _mm256_xor_si256(v, bias);
            let ge = _mm256_or_si256(_mm256_cmpgt_epi64(v, vlo), _mm256_cmpeq_epi64(v, vlo));
            let le = _mm256_or_si256(_mm256_cmpgt_epi64(vhi, v), _mm256_cmpeq_epi64(vhi, v));
            let hit = _mm256_and_si256(ge, le);
            let bits = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u64;
            m |= bits << (c * 4);
        }
        m
    }
}

/// Lane-wise inclusive range compare, dispatching to AVX2 when the `simd`
/// feature is compiled in and the CPU supports it.
#[inline]
pub(crate) fn range_mask64(vals: &[u64; LANES], lo: u64, hi: u64) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { avx2::range_mask64(vals, lo, hi) };
        }
    }
    range_mask64_scalar(vals, lo, hi)
}

/// Batched selection kernel over a packed array: emit ascending slot
/// offsets whose live, valid value lies in the inclusive packed-domain
/// range `[p_lo, p_hi]`. Works a 64-slot bitmap word at a time: all-dead
/// words skip without decoding, decoded words compare as one batch, and
/// the match mask ANDs against `live & valid` before bit-iteration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_packed(
    words: &[u64],
    bits: u32,
    n_slots: usize,
    live: &[u64],
    valid: &[u64],
    p_lo: u64,
    p_hi: u64,
    out: &mut Vec<u32>,
    stats: &mut KernelStats,
) {
    debug_assert!(n_slots.is_multiple_of(LANES), "packed segments are sealed at SEG_ROWS");
    let mut vals = [0u64; LANES];
    for blk in 0..n_slots / LANES {
        let lv = live[blk] & valid[blk];
        if lv == 0 {
            stats.fastpath_words += 1;
            continue;
        }
        unpack64(words, bits, blk, &mut vals);
        stats.batched += LANES as u64;
        stats.decoded += lv.count_ones() as u64;
        let mut m = range_mask64(&vals, p_lo, p_hi) & lv;
        if m == lv {
            // Every live-valid slot matches: pure emission, no slot was
            // individually rejected.
            stats.fastpath_words += 1;
        }
        let base = (blk * LANES) as u32;
        while m != 0 {
            out.push(base + m.trailing_zeros());
            m &= m - 1;
        }
    }
}

/// Batched gather over a packed array: calls `f(result_index, value)` for
/// each ascending offset. Offset runs that land `GATHER_BATCH_MIN`-dense
/// in one 64-block decode the block once via [`unpack64`]; sparse runs pay
/// per-value [`pack_get`]s.
pub(crate) fn gather_codes(
    words: &[u64],
    bits: u32,
    offsets: &[u32],
    stats: &mut KernelStats,
    mut f: impl FnMut(usize, u64),
) {
    let mut vals = [0u64; LANES];
    let mut i = 0usize;
    while i < offsets.len() {
        let blk = offsets[i] as usize / LANES;
        let mut j = i + 1;
        while j < offsets.len() && offsets[j] as usize / LANES == blk {
            j += 1;
        }
        if j - i >= GATHER_BATCH_MIN {
            unpack64(words, bits, blk, &mut vals);
            stats.batched += LANES as u64;
            for (k, &off) in offsets.iter().enumerate().take(j).skip(i) {
                f(k, vals[off as usize % LANES]);
            }
        } else {
            for (k, &off) in offsets.iter().enumerate().take(j).skip(i) {
                f(k, pack_get(words, bits, off as usize));
            }
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn unpack64_matches_pack_get_at_every_width() {
        for bits in 0u32..=63 {
            let n = 256usize;
            let mut words = Vec::new();
            for i in 0..n {
                pack_push(&mut words, bits, i, mix(i as u64) & pack_mask(bits));
            }
            // pack_push only allocates words it touched; pad to the full
            // block span like seal() does implicitly via SEG_ROWS slots.
            words.resize((n / LANES) * bits as usize + 1, 0);
            let mut out = [0u64; LANES];
            for blk in 0..n / LANES {
                unpack64(&words, bits, blk, &mut out);
                for (l, &v) in out.iter().enumerate() {
                    assert_eq!(
                        v,
                        pack_get(&words, bits, blk * LANES + l),
                        "bits={bits} blk={blk} lane={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn range_mask_matches_scalar() {
        let mut vals = [0u64; LANES];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = mix(i as u64) % 1000;
        }
        for (lo, hi) in [(0, u64::MAX), (100, 900), (500, 500), (900, 100), (0, 0)] {
            assert_eq!(
                range_mask64(&vals, lo, hi),
                range_mask64_scalar(&vals, lo, hi),
                "dispatched kernel diverged from scalar at [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn select_packed_matches_per_slot_loop() {
        let bits = 10u32;
        let n = 4096usize;
        let mut words = Vec::new();
        let mut live = vec![u64::MAX; n / 64];
        let mut valid = vec![u64::MAX; n / 64];
        for i in 0..n {
            pack_push(&mut words, bits, i, mix(i as u64) & pack_mask(bits));
            if mix(i as u64 ^ 77).is_multiple_of(5) {
                live[i / 64] &= !(1 << (i % 64));
            }
            if mix(i as u64 ^ 91).is_multiple_of(7) {
                valid[i / 64] &= !(1 << (i % 64));
            }
        }
        // one fully dead word exercises the skip fastpath
        live[3] = 0;
        for (p_lo, p_hi) in [(0u64, 1023u64), (100, 200), (1023, 1023), (800, 10)] {
            let mut got = Vec::new();
            let mut stats = KernelStats::default();
            select_packed(&words, bits, n, &live, &valid, p_lo, p_hi, &mut got, &mut stats);
            let mut want = Vec::new();
            for i in 0..n {
                let lv = live[i / 64] >> (i % 64) & valid[i / 64] >> (i % 64) & 1 != 0;
                let v = pack_get(&words, bits, i);
                if lv && v >= p_lo && v <= p_hi {
                    want.push(i as u32);
                }
            }
            assert_eq!(got, want, "range [{p_lo}, {p_hi}]");
            assert!(stats.batched > 0);
            assert!(stats.fastpath_words > 0);
        }
    }
}
