//! Error type for the embedded RDBMS.

use std::fmt;

/// Any failure raised by the database layer.
///
/// The variants mirror Postgres error classes closely enough for the
/// reproduction: in particular [`DbError::CastError`] is the runtime type
/// error the paper's §6.4 relies on ("Postgres raises an error if it
/// encounters a malformed string representation for a given type"), which is
/// why the PG-JSON baseline cannot complete NoBench Q7.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    Parse(String),
    /// Unknown table, column, or function.
    NotFound(String),
    /// Schema violations: duplicate table, wrong arity, duplicate column.
    Schema(String),
    /// Runtime evaluation failure other than a cast.
    Eval(String),
    /// Failed value cast (e.g. `'twenty'` to int). Aborts the query.
    CastError { value: String, target: &'static str },
    /// Underlying storage failure.
    Io(String),
    /// Resource exhaustion (e.g. simulated disk-space limits for the EAV
    /// baseline's runaway self-joins, paper §6.4/6.5).
    ResourceExhausted(String),
    /// First-writer-wins write-write conflict under MVCC: the statement's
    /// transaction must roll back and retry (DESIGN.md §16).
    Conflict(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NotFound(m) => write!(f, "not found: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::CastError { value, target } => {
                write!(f, "invalid input syntax for type {target}: \"{value}\"")
            }
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
            DbError::Conflict(m) => write!(f, "serialization conflict: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

pub type DbResult<T> = Result<T, DbError>;
