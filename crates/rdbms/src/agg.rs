//! Aggregate functions and accumulators.

use crate::datum::{Datum, GroupKey};
use crate::error::{DbError, DbResult};
use std::collections::HashSet;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggKind {
    pub fn parse(name: &str, star: bool) -> Option<AggKind> {
        Some(match (name.to_ascii_lowercase().as_str(), star) {
            ("count", true) => AggKind::CountStar,
            ("count", false) => AggKind::Count,
            ("sum", false) => AggKind::Sum,
            ("avg", false) => AggKind::Avg,
            ("min", false) => AggKind::Min,
            ("max", false) => AggKind::Max,
            _ => return None,
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            AggKind::CountStar | AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// Is this function name an aggregate? Used by the binder to route calls.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "count" | "sum" | "avg" | "min" | "max"
    )
}

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
pub struct Accumulator {
    kind: AggKind,
    seen: Option<HashSet<GroupKey>>,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    float_mode: bool,
    extreme: Option<Datum>,
}

impl Accumulator {
    pub fn new(kind: AggKind, distinct: bool) -> Accumulator {
        Accumulator {
            kind,
            seen: if distinct { Some(HashSet::new()) } else { None },
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            float_mode: false,
            extreme: None,
        }
    }

    /// Feed one input value (for `COUNT(*)`, feed `Datum::Bool(true)`).
    pub fn update(&mut self, value: &Datum) -> DbResult<()> {
        if self.kind != AggKind::CountStar {
            if value.is_null() {
                return Ok(()); // aggregates skip NULLs
            }
            if let Some(seen) = &mut self.seen {
                if !seen.insert(value.group_key()) {
                    return Ok(());
                }
            }
        }
        match self.kind {
            AggKind::CountStar | AggKind::Count => self.count += 1,
            AggKind::Sum | AggKind::Avg => {
                self.count += 1;
                match value {
                    Datum::Int(i) => {
                        if self.float_mode {
                            self.sum_f += *i as f64;
                        } else {
                            match self.sum_i.checked_add(*i) {
                                Some(s) => self.sum_i = s,
                                None => {
                                    self.float_mode = true;
                                    self.sum_f = self.sum_i as f64 + *i as f64;
                                }
                            }
                        }
                    }
                    Datum::Float(f) => {
                        if !self.float_mode {
                            self.float_mode = true;
                            self.sum_f = self.sum_i as f64;
                        }
                        self.sum_f += f;
                    }
                    other => {
                        return Err(DbError::Eval(format!(
                            "{} over non-numeric value {other}",
                            self.kind.name()
                        )))
                    }
                }
            }
            AggKind::Min | AggKind::Max => {
                let better = match &self.extreme {
                    None => true,
                    Some(cur) => {
                        let ord = value.total_cmp(cur);
                        (self.kind == AggKind::Min && ord == std::cmp::Ordering::Less)
                            || (self.kind == AggKind::Max && ord == std::cmp::Ordering::Greater)
                    }
                };
                if better {
                    self.extreme = Some(value.clone());
                }
            }
        }
        Ok(())
    }

    /// Can this accumulator be folded into another with [`merge`] without
    /// changing the result vs feeding the rows serially? True for counts
    /// and min/max always, and for SUM/AVG while the sum stayed integral
    /// (integer addition is associative; float addition is not, so a
    /// float-mode partial sum must fall back to serial accumulation).
    /// DISTINCT accumulators never merge: `seen` holds canonical keys, and
    /// cross-partial dedup order would be lost.
    pub fn merge_is_exact(&self) -> bool {
        self.seen.is_none()
            && (!matches!(self.kind, AggKind::Sum | AggKind::Avg) || !self.float_mode)
    }

    /// Fold a partial accumulator for a *later* input range into `self`.
    /// Exact (identical to serial `update` over the concatenated input)
    /// whenever both sides report [`merge_is_exact`]; the only inexact
    /// escape is i64 sum overflow at merge time, which promotes to float
    /// exactly like serial overflow does.
    pub fn merge(&mut self, later: &Accumulator) {
        debug_assert_eq!(self.kind, later.kind);
        debug_assert!(self.seen.is_none() && later.seen.is_none());
        match self.kind {
            AggKind::CountStar | AggKind::Count => self.count += later.count,
            AggKind::Sum | AggKind::Avg => {
                self.count += later.count;
                match self.sum_i.checked_add(later.sum_i) {
                    Some(s) => self.sum_i = s,
                    None => {
                        self.float_mode = true;
                        self.sum_f = self.sum_i as f64 + later.sum_i as f64;
                    }
                }
            }
            AggKind::Min | AggKind::Max => {
                if let Some(v) = &later.extreme {
                    // `later` covers rows after `self`'s: a tie keeps
                    // `self`'s value, matching serial first-wins picks.
                    let better = match &self.extreme {
                        None => true,
                        Some(cur) => {
                            let ord = v.total_cmp(cur);
                            (self.kind == AggKind::Min && ord == std::cmp::Ordering::Less)
                                || (self.kind == AggKind::Max
                                    && ord == std::cmp::Ordering::Greater)
                        }
                    };
                    if better {
                        self.extreme = Some(v.clone());
                    }
                }
            }
        }
    }

    /// Final value of the aggregate (SQL semantics: SUM/MIN/MAX over an
    /// empty input yield NULL; COUNT yields 0).
    pub fn finish(&self) -> Datum {
        match self.kind {
            AggKind::CountStar | AggKind::Count => Datum::Int(self.count),
            AggKind::Sum => {
                if self.count == 0 {
                    Datum::Null
                } else if self.float_mode {
                    Datum::Float(self.sum_f)
                } else {
                    Datum::Int(self.sum_i)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Datum::Null
                } else {
                    let total = if self.float_mode { self.sum_f } else { self.sum_i as f64 };
                    Datum::Float(total / self.count as f64)
                }
            }
            AggKind::Min | AggKind::Max => self.extreme.clone().unwrap_or(Datum::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, distinct: bool, vals: &[Datum]) -> Datum {
        let mut acc = Accumulator::new(kind, distinct);
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let vals = [Datum::Int(1), Datum::Null, Datum::Int(2)];
        assert_eq!(run(AggKind::Count, false, &vals), Datum::Int(2));
        let mut star = Accumulator::new(AggKind::CountStar, false);
        for _ in 0..3 {
            star.update(&Datum::Bool(true)).unwrap();
        }
        assert_eq!(star.finish(), Datum::Int(3));
    }

    #[test]
    fn sum_int_then_float_promotes() {
        let vals = [Datum::Int(1), Datum::Float(0.5), Datum::Int(2)];
        assert_eq!(run(AggKind::Sum, false, &vals), Datum::Float(3.5));
        let ints = [Datum::Int(1), Datum::Int(2)];
        assert_eq!(run(AggKind::Sum, false, &ints), Datum::Int(3));
    }

    #[test]
    fn sum_overflow_promotes_to_float() {
        let vals = [Datum::Int(i64::MAX), Datum::Int(i64::MAX)];
        let Datum::Float(f) = run(AggKind::Sum, false, &vals) else { panic!() };
        assert!(f > 1.8e19);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(run(AggKind::Sum, false, &[]), Datum::Null);
        assert_eq!(run(AggKind::Avg, false, &[]), Datum::Null);
        assert_eq!(run(AggKind::Min, false, &[]), Datum::Null);
        assert_eq!(run(AggKind::Count, false, &[]), Datum::Int(0));
    }

    #[test]
    fn distinct_aggregation() {
        let vals = [Datum::Int(1), Datum::Int(1), Datum::Int(2), Datum::Float(2.0)];
        assert_eq!(run(AggKind::Count, true, &vals), Datum::Int(2));
        assert_eq!(run(AggKind::Sum, true, &vals), Datum::Int(3));
    }

    #[test]
    fn min_max_mixed_types_use_total_order() {
        let vals = [Datum::Text("b".into()), Datum::Text("a".into()), Datum::Int(9)];
        assert_eq!(run(AggKind::Min, false, &vals), Datum::Int(9));
        assert_eq!(run(AggKind::Max, false, &vals), Datum::Text("b".into()));
    }

    #[test]
    fn avg_basic() {
        let vals = [Datum::Int(2), Datum::Int(4)];
        assert_eq!(run(AggKind::Avg, false, &vals), Datum::Float(3.0));
    }

    #[test]
    fn merged_partials_match_serial() {
        let vals: Vec<Datum> = (0..100).map(|i| Datum::Int(i * 7 - 50)).collect();
        for kind in [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
            let serial = run(kind, false, &vals);
            let mut left = Accumulator::new(kind, false);
            let mut right = Accumulator::new(kind, false);
            for v in &vals[..37] {
                left.update(v).unwrap();
            }
            for v in &vals[37..] {
                right.update(v).unwrap();
            }
            assert!(left.merge_is_exact() && right.merge_is_exact());
            left.merge(&right);
            assert_eq!(left.finish(), serial, "{kind:?}");
        }
        // float partials refuse exact merge
        let mut f = Accumulator::new(AggKind::Sum, false);
        f.update(&Datum::Float(1.5)).unwrap();
        assert!(!f.merge_is_exact());
        // distinct partials refuse merge
        let d = Accumulator::new(AggKind::Count, true);
        assert!(!d.merge_is_exact());
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggKind::parse("SUM", false), Some(AggKind::Sum));
        assert_eq!(AggKind::parse("count", true), Some(AggKind::CountStar));
        assert_eq!(AggKind::parse("sum", true), None);
        assert_eq!(AggKind::parse("coalesce", false), None);
        assert!(is_aggregate_name("AVG"));
        assert!(!is_aggregate_name("lower"));
    }
}
