//! Columnar segment storage for promoted (physical) columns.
//!
//! Sinew's materializer promotes hot keys into real columns (§4); this
//! module gives those columns a packed, scan-friendly representation so
//! sargable predicates run as vectorized kernels instead of per-row
//! `Datum` decode.  A [`ColumnStore`] holds one column's values as a list
//! of fixed-width row-range *segments* ([`SEG_ROWS`] rowids each):
//!
//! * every segment carries a `live` bitmap (row exists in the heap) and a
//!   `valid` bitmap (value is non-NULL), plus a min/max zone map over the
//!   live non-NULL values;
//! * sealed segments pick the cheapest of four encodings — run-length for
//!   runs, frame-of-reference bit-packed integers, dictionary for
//!   low-cardinality strings, or plain `Datum`s;
//! * the tail segment stays plain and is sealed (encoded) when it fills.
//!
//! The heap remains the source of truth: stores are rebuilt from a heap
//! scan at promotion time and maintained incrementally by every DML path.
//! Kernels use `Datum::total_cmp` bounds — the same superset semantics as
//! the B-tree — so the executor re-applies the full predicate as a
//! residual filter unless the planner proved the bounds exact.

use crate::datum::Datum;
use crate::heap::RowId;
use std::cmp::Ordering;

/// Rowids covered by one segment. Chosen so a segment's working set fits
/// comfortably in L2 while still amortizing per-segment overheads.
pub const SEG_ROWS: usize = 4096;

const BM_WORDS: usize = SEG_ROWS / 64;

#[inline]
fn bm_get(bm: &[u64], i: usize) -> bool {
    bm[i >> 6] >> (i & 63) & 1 != 0
}

#[inline]
fn bm_set(bm: &mut [u64], i: usize, v: bool) {
    if v {
        bm[i >> 6] |= 1u64 << (i & 63);
    } else {
        bm[i >> 6] &= !(1u64 << (i & 63));
    }
}

#[inline]
fn pack_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Read the `i`-th `bits`-wide value from a packed word array.
#[inline]
fn pack_get(words: &[u64], bits: u32, i: usize) -> u64 {
    if bits == 0 {
        return 0;
    }
    let start = i * bits as usize;
    let w = start >> 6;
    let off = (start & 63) as u32;
    let mut v = words[w] >> off;
    if off + bits > 64 {
        v |= words[w + 1] << (64 - off);
    }
    v & pack_mask(bits)
}

/// Append value `v` (already masked to `bits`) at position `i`; positions
/// must be written in order starting from 0.
fn pack_push(words: &mut Vec<u64>, bits: u32, i: usize, v: u64) {
    if bits == 0 {
        return;
    }
    let start = i * bits as usize;
    let w = start >> 6;
    let off = (start & 63) as u32;
    if w == words.len() {
        words.push(0);
    }
    words[w] |= v << off;
    if off + bits > 64 {
        words.push(v >> (64 - off));
    }
}

/// Physical encoding of one sealed segment's values.
enum Enc {
    /// One `Datum` per slot (also the mutable-tail representation).
    Plain(Vec<Datum>),
    /// Frame-of-reference bit-packed integers: slot value = base + packed.
    /// Invalid/dead slots store 0.
    PackedInt { base: i64, bits: u32, words: Vec<u64> },
    /// Dictionary of distinct values sorted by `total_cmp`, with
    /// bit-packed per-slot codes. Invalid/dead slots store code 0.
    Dict { dict: Vec<Datum>, bits: u32, codes: Vec<u64> },
    /// Run-length runs over slot order (dead/NULL slots appear as Null
    /// runs); run lengths sum to the slot count.
    Rle { runs: Vec<(Datum, u32)> },
}

impl Enc {
    fn name(&self) -> &'static str {
        match self {
            Enc::Plain(_) => "plain",
            Enc::PackedInt { .. } => "packed-int",
            Enc::Dict { .. } => "dict",
            Enc::Rle { .. } => "rle",
        }
    }

    /// Approximate encoded payload bytes.
    fn bytes(&self) -> u64 {
        match self {
            Enc::Plain(vals) => vals.iter().map(|d| d.width() as u64).sum(),
            Enc::PackedInt { words, .. } => 16 + words.len() as u64 * 8,
            Enc::Dict { dict, codes, .. } => {
                dict.iter().map(|d| d.width() as u64).sum::<u64>() + codes.len() as u64 * 8
            }
            Enc::Rle { runs } => runs.iter().map(|(d, _)| d.width() as u64 + 4).sum(),
        }
    }
}

struct Segment {
    /// Slots appended so far (== SEG_ROWS once sealed).
    n_slots: usize,
    live: Vec<u64>,
    valid: Vec<u64>,
    enc: Enc,
    /// Zone map over live, non-NULL values (total_cmp order). Kept as a
    /// superset on delete, so pruning stays conservative without
    /// re-encoding.
    min: Option<Datum>,
    max: Option<Datum>,
    sealed: bool,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            n_slots: 0,
            live: vec![0; BM_WORDS],
            valid: vec![0; BM_WORDS],
            enc: Enc::Plain(Vec::new()),
            min: None,
            max: None,
            sealed: false,
        }
    }

    fn widen_zone(&mut self, d: &Datum) {
        if d.is_null() {
            return;
        }
        match &self.min {
            Some(m) if m.total_cmp(d) != Ordering::Greater => {}
            _ => self.min = Some(d.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(d) != Ordering::Less => {}
            _ => self.max = Some(d.clone()),
        }
    }

    fn recompute_zone(&mut self, plain: &[Datum]) {
        self.min = None;
        self.max = None;
        for (i, d) in plain.iter().enumerate() {
            if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                let cur_min = self.min.take();
                self.min = match cur_min {
                    Some(m) if m.total_cmp(d) != Ordering::Greater => Some(m),
                    _ => Some(d.clone()),
                };
                let cur_max = self.max.take();
                self.max = match cur_max {
                    Some(m) if m.total_cmp(d) != Ordering::Less => Some(m),
                    _ => Some(d.clone()),
                };
            }
        }
    }

    /// Decode the segment back to one `Datum` per slot.
    fn to_plain(&self) -> Vec<Datum> {
        match &self.enc {
            Enc::Plain(vals) => vals.clone(),
            Enc::PackedInt { base, bits, words } => (0..self.n_slots)
                .map(|i| {
                    if bm_get(&self.valid, i) {
                        Datum::Int(base.wrapping_add(pack_get(words, *bits, i) as i64))
                    } else {
                        Datum::Null
                    }
                })
                .collect(),
            Enc::Dict { dict, bits, codes } => (0..self.n_slots)
                .map(|i| {
                    if bm_get(&self.valid, i) {
                        dict[pack_get(codes, *bits, i) as usize].clone()
                    } else {
                        Datum::Null
                    }
                })
                .collect(),
            Enc::Rle { runs } => {
                let mut out = Vec::with_capacity(self.n_slots);
                for (d, n) in runs {
                    for _ in 0..*n {
                        out.push(d.clone());
                    }
                }
                out
            }
        }
    }

    /// Pick the cheapest encoding for a full segment and install it.
    fn seal(&mut self) {
        let plain = match &self.enc {
            Enc::Plain(v) => v,
            _ => return, // already encoded
        };
        debug_assert_eq!(plain.len(), self.n_slots);
        // Count runs (dead slots participate as their stored Null).
        let mut runs = 1usize;
        for w in plain.windows(2) {
            if w[0].total_cmp(&w[1]) != Ordering::Equal {
                runs += 1;
            }
        }
        if runs * 8 <= self.n_slots {
            let mut rle: Vec<(Datum, u32)> = Vec::with_capacity(runs);
            for (i, d) in plain.iter().enumerate() {
                let norm = if bm_get(&self.valid, i) { d.clone() } else { Datum::Null };
                match rle.last_mut() {
                    Some((last, n)) if last.total_cmp(&norm) == Ordering::Equal => *n += 1,
                    _ => rle.push((norm, 1)),
                }
            }
            self.enc = Enc::Rle { runs: rle };
            self.sealed = true;
            return;
        }
        let n_valid = (0..self.n_slots).filter(|&i| bm_get(&self.valid, i)).count();
        // All-integer values: frame-of-reference bit packing.
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut all_int = true;
        for (i, d) in plain.iter().enumerate() {
            if !bm_get(&self.valid, i) {
                continue;
            }
            match d {
                Datum::Int(v) => {
                    lo = lo.min(*v);
                    hi = hi.max(*v);
                }
                _ => {
                    all_int = false;
                    break;
                }
            }
        }
        if all_int && n_valid > 0 {
            let range = (hi as i128) - (lo as i128);
            let bits = 128 - (range as u128).leading_zeros();
            if bits < 64 {
                let mut words = Vec::new();
                for (i, d) in plain.iter().enumerate() {
                    let v = match d {
                        Datum::Int(v) if bm_get(&self.valid, i) => {
                            (*v as i128 - lo as i128) as u64
                        }
                        _ => 0,
                    };
                    pack_push(&mut words, bits, i, v);
                }
                self.enc = Enc::PackedInt { base: lo, bits, words };
                self.sealed = true;
                return;
            }
        }
        // Low-cardinality strings: dictionary + packed codes.
        let all_text = plain
            .iter()
            .enumerate()
            .all(|(i, d)| !bm_get(&self.valid, i) || matches!(d, Datum::Text(_)));
        if all_text && n_valid > 0 {
            let mut dict: Vec<Datum> = plain
                .iter()
                .enumerate()
                .filter(|(i, _)| bm_get(&self.valid, *i))
                .map(|(_, d)| d.clone())
                .collect();
            dict.sort_by(|a, b| a.total_cmp(b));
            dict.dedup_by(|a, b| a.total_cmp(b) == Ordering::Equal);
            if dict.len() <= 256 && dict.len() * 2 <= n_valid {
                let bits = usize::BITS - (dict.len() - 1).max(1).leading_zeros();
                let mut codes = Vec::new();
                for (i, d) in plain.iter().enumerate() {
                    let code = if bm_get(&self.valid, i) {
                        dict.binary_search_by(|probe| probe.total_cmp(d)).unwrap_or(0) as u64
                    } else {
                        0
                    };
                    pack_push(&mut codes, bits, i, code);
                }
                self.enc = Enc::Dict { dict, bits, codes };
                self.sealed = true;
                return;
            }
        }
        self.sealed = true; // plain stays plain
    }

    /// True when the zone map proves no live value can fall in the bound
    /// range (total_cmp semantics).
    fn zone_prunes(
        &self,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // No live non-NULL values at all: a bounded kernel matches nothing.
            return lo.is_some() || hi.is_some();
        };
        if let Some(h) = hi {
            match h.total_cmp(min) {
                Ordering::Less => return true,
                Ordering::Equal if !hi_inc => return true,
                _ => {}
            }
        }
        if let Some(l) = lo {
            match l.total_cmp(max) {
                Ordering::Greater => return true,
                Ordering::Equal if !lo_inc => return true,
                _ => {}
            }
        }
        false
    }

    /// Emit slot offsets of live, non-NULL values inside the bound range
    /// (ascending). Returns the number of value-level decodes performed —
    /// the vectorized kernels touch far fewer than one per slot.
    fn select(
        &self,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        out: &mut Vec<u32>,
    ) -> u64 {
        let in_range = |d: &Datum| -> bool {
            if let Some(l) = lo {
                match d.total_cmp(l) {
                    Ordering::Less => return false,
                    Ordering::Equal if !lo_inc => return false,
                    _ => {}
                }
            }
            if let Some(h) = hi {
                match d.total_cmp(h) {
                    Ordering::Greater => return false,
                    Ordering::Equal if !hi_inc => return false,
                    _ => {}
                }
            }
            true
        };
        match &self.enc {
            Enc::Plain(vals) => {
                let mut decoded = 0u64;
                for (i, d) in vals.iter().enumerate() {
                    if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                        decoded += 1;
                        if in_range(d) {
                            out.push(i as u32);
                        }
                    }
                }
                decoded
            }
            Enc::PackedInt { base, bits, words } => {
                // Int-vs-Float comparisons in total_cmp go through f64, so
                // the exact integer translation below is only valid inside
                // the f64-exact range (|x| <= 2^53). Outside it — or for
                // non-finite bounds — fall back to per-slot total_cmp so
                // `exact_bounds` (residual-skip) stays correct.
                let float_bound_unsafe = {
                    let dom_lo = *base as i128;
                    let dom_hi = *base as i128 + pack_mask(*bits) as i128;
                    let exact = |d: Option<&Datum>| match d {
                        Some(Datum::Float(f)) => f.is_finite() && f.abs() <= 9.0e15,
                        _ => true,
                    };
                    let any_float = matches!(lo, Some(Datum::Float(_)))
                        || matches!(hi, Some(Datum::Float(_)));
                    any_float
                        && !(exact(lo)
                            && exact(hi)
                            && dom_lo >= -(1i128 << 53)
                            && dom_hi <= 1i128 << 53)
                };
                if float_bound_unsafe {
                    let mut decoded = 0u64;
                    for i in 0..self.n_slots {
                        if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                            decoded += 1;
                            let d =
                                Datum::Int(base.wrapping_add(pack_get(words, *bits, i) as i64));
                            if in_range(&d) {
                                out.push(i as u32);
                            }
                        }
                    }
                    return decoded;
                }
                // Translate each bound into an inclusive integer bound
                // once, then the inner loop is integer compares on packed
                // words. In total_cmp order ints sit numerically among
                // floats, above Null/Bool, below Text/Bytea/Array — so a
                // non-numeric bound covers all ints or none.
                enum IntBound {
                    At(i128),
                    AllPass,
                    NonePass,
                }
                // Smallest integer satisfying the lower bound.
                let lo_b = match lo {
                    None => IntBound::AllPass,
                    Some(Datum::Int(v)) => {
                        IntBound::At(*v as i128 + if lo_inc { 0 } else { 1 })
                    }
                    Some(Datum::Float(f)) => {
                        if f.is_nan() || *f == f64::INFINITY {
                            IntBound::NonePass // bound above every int
                        } else if *f == f64::NEG_INFINITY {
                            IntBound::AllPass
                        } else if f.fract() == 0.0 {
                            IntBound::At(*f as i128 + if lo_inc { 0 } else { 1 })
                        } else {
                            IntBound::At(f.ceil() as i128)
                        }
                    }
                    Some(Datum::Text(_) | Datum::Bytea(_) | Datum::Array(_)) => {
                        IntBound::NonePass
                    }
                    Some(_) => IntBound::AllPass, // Null/Bool rank below ints
                };
                // Largest integer satisfying the upper bound.
                let hi_b = match hi {
                    None => IntBound::AllPass,
                    Some(Datum::Int(v)) => {
                        IntBound::At(*v as i128 - if hi_inc { 0 } else { 1 })
                    }
                    Some(Datum::Float(f)) => {
                        if f.is_nan() || *f == f64::INFINITY {
                            IntBound::AllPass
                        } else if *f == f64::NEG_INFINITY {
                            IntBound::NonePass // bound below every int
                        } else if f.fract() == 0.0 {
                            IntBound::At(*f as i128 - if hi_inc { 0 } else { 1 })
                        } else {
                            IntBound::At(f.floor() as i128)
                        }
                    }
                    Some(Datum::Text(_) | Datum::Bytea(_) | Datum::Array(_)) => {
                        IntBound::AllPass // text ranks above every int
                    }
                    Some(_) => IntBound::NonePass, // Null/Bool rank below ints
                };
                let full = pack_mask(*bits) as i128;
                let p_lo = match lo_b {
                    IntBound::NonePass => return 0,
                    IntBound::AllPass => 0i128,
                    IntBound::At(v) => (v - *base as i128).max(0),
                };
                let p_hi = match hi_b {
                    IntBound::NonePass => return 0,
                    IntBound::AllPass => full,
                    IntBound::At(v) => (v - *base as i128).min(full),
                };
                if p_lo > p_hi {
                    return 0;
                }
                let (p_lo, p_hi) = (p_lo as u64, p_hi as u64);
                let mut decoded = 0u64;
                for i in 0..self.n_slots {
                    if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                        decoded += 1;
                        let v = pack_get(words, *bits, i);
                        if v >= p_lo && v <= p_hi {
                            out.push(i as u32);
                        }
                    }
                }
                decoded
            }
            Enc::Dict { dict, bits, codes } => {
                // Dictionary is total_cmp-sorted: qualifying codes form a
                // contiguous range, found once, then the slot loop is a
                // pair of integer compares per code.
                let c_lo = match lo {
                    None => 0usize,
                    Some(l) => dict.partition_point(|d| {
                        matches!(d.total_cmp(l), Ordering::Less)
                            || (!lo_inc && d.total_cmp(l) == Ordering::Equal)
                    }),
                };
                let c_hi = match hi {
                    None => dict.len(),
                    Some(h) => dict.partition_point(|d| {
                        matches!(d.total_cmp(h), Ordering::Less)
                            || (hi_inc && d.total_cmp(h) == Ordering::Equal)
                    }),
                };
                if c_lo >= c_hi {
                    return dict.len() as u64;
                }
                let (c_lo, c_hi) = (c_lo as u64, (c_hi - 1) as u64);
                for i in 0..self.n_slots {
                    if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                        let c = pack_get(codes, *bits, i);
                        if c >= c_lo && c <= c_hi {
                            out.push(i as u32);
                        }
                    }
                }
                dict.len() as u64
            }
            Enc::Rle { runs } => {
                // One compare per run, then bitmap-filtered slot emission.
                let mut start = 0usize;
                for (d, n) in runs {
                    let end = start + *n as usize;
                    if !d.is_null() && in_range(d) {
                        for i in start..end {
                            if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                                out.push(i as u32);
                            }
                        }
                    }
                    start = end;
                }
                runs.len() as u64
            }
        }
    }

    /// All live slot offsets (NULL values included) — the unbounded scan.
    fn live_slots(&self, out: &mut Vec<u32>) {
        for i in 0..self.n_slots {
            if bm_get(&self.live, i) {
                out.push(i as u32);
            }
        }
    }

    /// Materialize values at ascending `offsets` into `out` (Null for
    /// slots whose value is NULL). One pass regardless of encoding.
    fn gather(&self, offsets: &[u32], out: &mut Vec<Datum>) {
        match &self.enc {
            Enc::Plain(vals) => {
                for &i in offsets {
                    let i = i as usize;
                    if bm_get(&self.valid, i) {
                        out.push(vals[i].clone());
                    } else {
                        out.push(Datum::Null);
                    }
                }
            }
            Enc::PackedInt { base, bits, words } => {
                for &i in offsets {
                    let i = i as usize;
                    if bm_get(&self.valid, i) {
                        out.push(Datum::Int(base.wrapping_add(pack_get(words, *bits, i) as i64)));
                    } else {
                        out.push(Datum::Null);
                    }
                }
            }
            Enc::Dict { dict, bits, codes } => {
                for &i in offsets {
                    let i = i as usize;
                    if bm_get(&self.valid, i) {
                        out.push(dict[pack_get(codes, *bits, i) as usize].clone());
                    } else {
                        out.push(Datum::Null);
                    }
                }
            }
            Enc::Rle { runs } => {
                let mut run = 0usize;
                let mut run_start = 0usize;
                let mut run_end = runs.first().map(|(_, n)| *n as usize).unwrap_or(0);
                for &i in offsets {
                    let i = i as usize;
                    while i >= run_end {
                        run += 1;
                        run_start = run_end;
                        run_end = run_start + runs[run].1 as usize;
                    }
                    let _ = run_start;
                    if bm_get(&self.valid, i) {
                        out.push(runs[run].0.clone());
                    } else {
                        out.push(Datum::Null);
                    }
                }
            }
        }
    }
}

/// Per-column segment store. Rowid `r` lives in segment `r / SEG_ROWS`
/// at slot `r % SEG_ROWS`; heap rowids are dense and append-only, so the
/// tail segment is the only mutable one in the common case.
pub struct ColumnStore {
    column: String,
    segments: Vec<Segment>,
}

/// Observability summary of one column store (for storage_report).
#[derive(Debug, Clone)]
pub struct ColumnarInfo {
    pub column: String,
    pub segments: u64,
    pub encoded_bytes: u64,
    pub raw_bytes: u64,
    /// Segment counts per encoding, e.g. `"packed-int:3 plain:1"`.
    pub encodings: String,
}

impl ColumnStore {
    pub fn new(column: &str) -> ColumnStore {
        ColumnStore { column: column.to_string(), segments: Vec::new() }
    }

    pub fn column(&self) -> &str {
        &self.column
    }

    pub fn n_segments(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Rowids covered so far (dense from 0).
    fn coverage(&self) -> u64 {
        match self.segments.last() {
            None => 0,
            Some(tail) => ((self.segments.len() - 1) * SEG_ROWS + tail.n_slots) as u64,
        }
    }

    fn push_slot(&mut self, value: Datum, live: bool) {
        if self.segments.last().map(|s| s.n_slots >= SEG_ROWS).unwrap_or(true) {
            if let Some(tail) = self.segments.last_mut() {
                tail.seal();
            }
            self.segments.push(Segment::new());
        }
        let seg = self.segments.last_mut().unwrap();
        let slot = seg.n_slots;
        let valid = live && !value.is_null();
        bm_set(&mut seg.live, slot, live);
        bm_set(&mut seg.valid, slot, valid);
        if valid {
            seg.widen_zone(&value);
        }
        match &mut seg.enc {
            Enc::Plain(vals) => vals.push(value),
            _ => unreachable!("tail segment is always plain"),
        }
        seg.n_slots += 1;
    }

    /// Record a freshly inserted row. Rowids arrive in increasing order
    /// (the heap allocates densely); gaps — rowids never seen because the
    /// store was built mid-stream — are filled as dead slots.
    pub fn append(&mut self, rowid: RowId, value: Datum) {
        while self.coverage() < rowid {
            self.push_slot(Datum::Null, false);
        }
        if self.coverage() == rowid {
            self.push_slot(value, true);
        } else {
            // Re-insert into an already covered rowid (shouldn't happen
            // with a dense heap, but stay correct): treat as update.
            self.set(rowid, value);
        }
    }

    /// Update the value of an existing row.
    pub fn set(&mut self, rowid: RowId, value: Datum) {
        if rowid >= self.coverage() {
            self.append(rowid, value);
            return;
        }
        let seg_no = rowid as usize / SEG_ROWS;
        let slot = rowid as usize % SEG_ROWS;
        let seg = &mut self.segments[seg_no];
        let mut plain = seg.to_plain();
        bm_set(&mut seg.live, slot, true);
        bm_set(&mut seg.valid, slot, !value.is_null());
        plain[slot] = value;
        seg.recompute_zone(&plain);
        let was_sealed = seg.sealed;
        seg.sealed = false;
        seg.enc = Enc::Plain(plain);
        if was_sealed {
            seg.seal();
        }
    }

    /// Mark a row dead. Values stay in place; the zone map is left as a
    /// (conservative) superset, so no re-encode is needed.
    pub fn delete(&mut self, rowid: RowId) {
        if rowid >= self.coverage() {
            return;
        }
        let seg_no = rowid as usize / SEG_ROWS;
        let slot = rowid as usize % SEG_ROWS;
        let seg = &mut self.segments[seg_no];
        bm_set(&mut seg.live, slot, false);
        bm_set(&mut seg.valid, slot, false);
    }

    /// Zone-map test for one segment against a total_cmp bound range.
    pub fn zone_prunes(
        &self,
        seg: u64,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> bool {
        self.segments[seg as usize].zone_prunes(lo, lo_inc, hi, hi_inc)
    }

    /// Vectorized bound kernel over one segment: ascending slot offsets of
    /// live non-NULL values inside the range. Returns decode count.
    pub fn select_segment(
        &self,
        seg: u64,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        out: &mut Vec<u32>,
    ) -> u64 {
        self.segments[seg as usize].select(lo, lo_inc, hi, hi_inc, out)
    }

    /// All live slots of one segment (unbounded scan path).
    pub fn live_slots(&self, seg: u64, out: &mut Vec<u32>) {
        self.segments[seg as usize].live_slots(out);
    }

    /// Materialize this column's values at the given segment offsets.
    pub fn gather(&self, seg: u64, offsets: &[u32], out: &mut Vec<Datum>) {
        self.segments[seg as usize].gather(offsets, out);
    }

    pub fn info(&self) -> ColumnarInfo {
        let mut encoded = 0u64;
        let mut raw = 0u64;
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for seg in &self.segments {
            encoded += seg.enc.bytes() + 2 * BM_WORDS as u64 * 8;
            let plain = seg.to_plain();
            for (i, d) in plain.iter().enumerate() {
                if bm_get(&seg.live, i) {
                    raw += d.width() as u64;
                }
            }
            let name = seg.enc.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        let encodings = counts
            .iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        ColumnarInfo {
            column: self.column.clone(),
            segments: self.segments.len() as u64,
            encoded_bytes: encoded,
            raw_bytes: raw,
            encodings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_select(
        vals: &[(Datum, bool)], // (value, live)
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, (d, live)) in vals.iter().enumerate() {
            if !*live || d.is_null() {
                continue;
            }
            let mut ok = true;
            if let Some(l) = lo {
                match d.total_cmp(l) {
                    Ordering::Less => ok = false,
                    Ordering::Equal if !lo_inc => ok = false,
                    _ => {}
                }
            }
            if let Some(h) = hi {
                match d.total_cmp(h) {
                    Ordering::Greater => ok = false,
                    Ordering::Equal if !hi_inc => ok = false,
                    _ => {}
                }
            }
            if ok {
                out.push(i as u32);
            }
        }
        out
    }

    fn store_select(
        store: &ColumnStore,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for seg in 0..store.n_segments() {
            let mut offs = Vec::new();
            if !store.zone_prunes(seg, lo, lo_inc, hi, hi_inc) {
                store.select_segment(seg, lo, lo_inc, hi, hi_inc, &mut offs);
            }
            out.extend(offs.iter().map(|&o| seg as u32 * SEG_ROWS as u32 + o));
        }
        out
    }

    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn packed_int_roundtrip_and_select() {
        let mut store = ColumnStore::new("a");
        let mut vals = Vec::new();
        for i in 0..(SEG_ROWS as u64 * 2 + 100) {
            let v = (mix(i) % 1000) as i64 + 500;
            store.append(i, Datum::Int(v));
            vals.push((Datum::Int(v), true));
        }
        // first two segments sealed as packed-int
        assert!(store.info().encodings.contains("packed-int"));
        for (lo, li, hi, hi_i) in [
            (Some(Datum::Int(700)), true, Some(Datum::Int(900)), true),
            (Some(Datum::Int(700)), false, None, true),
            (None, true, Some(Datum::Float(750.5)), true),
            (Some(Datum::Float(649.5)), true, Some(Datum::Int(651)), false),
        ] {
            let got = store_select(&store, lo.as_ref(), li, hi.as_ref(), hi_i);
            let want = naive_select(&vals, lo.as_ref(), li, hi.as_ref(), hi_i);
            assert_eq!(got, want, "bounds {lo:?} {li} {hi:?} {hi_i}");
        }
        // gather round-trips
        let offs: Vec<u32> = (0..64).collect();
        let mut out = Vec::new();
        store.gather(0, &offs, &mut out);
        for (o, d) in offs.iter().zip(&out) {
            assert_eq!(*d, vals[*o as usize].0);
        }
    }

    #[test]
    fn dict_and_rle_roundtrip() {
        let mut dict_store = ColumnStore::new("c");
        let mut rle_store = ColumnStore::new("r");
        let cats = ["alpha", "beta", "gamma", "delta"];
        let mut dict_vals = Vec::new();
        for i in 0..(SEG_ROWS as u64 + 10) {
            let d = Datum::Text(cats[(mix(i) % 19 % 4) as usize].to_string());
            dict_store.append(i, d.clone());
            dict_vals.push((d, true));
            rle_store.append(i, Datum::Int((i / 2048) as i64));
        }
        assert!(dict_store.info().encodings.contains("dict"));
        assert!(rle_store.info().encodings.contains("rle"));
        let lo = Datum::Text("beta".into());
        let got = store_select(&dict_store, Some(&lo), true, Some(&lo), true);
        let want = naive_select(&dict_vals, Some(&lo), true, Some(&lo), true);
        assert_eq!(got, want);
        // RLE gather
        let offs: Vec<u32> = vec![0, 1, 2047, 2048, 4095];
        let mut out = Vec::new();
        rle_store.gather(0, &offs, &mut out);
        assert_eq!(
            out,
            vec![
                Datum::Int(0),
                Datum::Int(0),
                Datum::Int(0),
                Datum::Int(1),
                Datum::Int(1)
            ]
        );
    }

    #[test]
    fn zone_maps_prune_disjoint_segments() {
        let mut store = ColumnStore::new("a");
        for i in 0..(SEG_ROWS as u64 * 3) {
            store.append(i, Datum::Int(i as i64));
        }
        let lo = Datum::Int(SEG_ROWS as i64 * 2 + 5);
        let mut pruned = 0;
        for seg in 0..store.n_segments() {
            if store.zone_prunes(seg, Some(&lo), true, None, true) {
                pruned += 1;
            }
        }
        assert_eq!(pruned, 2);
    }

    #[test]
    fn dml_maintenance_updates_and_deletes() {
        let mut store = ColumnStore::new("a");
        for i in 0..(SEG_ROWS as u64 + 50) {
            store.append(i, Datum::Int(i as i64 % 100));
        }
        // update inside the sealed segment widens its zone map
        store.set(10, Datum::Int(100_000));
        let hit = store_select(&store, Some(&Datum::Int(100_000)), true, None, true);
        assert_eq!(hit, vec![10]);
        // delete removes the row from kernels
        store.delete(10);
        let hit = store_select(&store, Some(&Datum::Int(100_000)), true, None, true);
        assert!(hit.is_empty());
        // NULL update: excluded from bounded kernels, present in live_slots
        store.set(20, Datum::Null);
        let hit = store_select(&store, Some(&Datum::Int(20)), true, Some(&Datum::Int(20)), true);
        assert!(!hit.contains(&20));
        let mut live = Vec::new();
        store.live_slots(0, &mut live);
        assert!(live.contains(&20));
        assert!(!live.contains(&10));
        // gaps appended as dead slots
        let mut store2 = ColumnStore::new("g");
        store2.append(5, Datum::Int(7));
        let mut live2 = Vec::new();
        store2.live_slots(0, &mut live2);
        assert_eq!(live2, vec![5]);
    }

    #[test]
    fn mixed_type_segments_stay_plain_and_correct() {
        let mut store = ColumnStore::new("m");
        let mut vals = Vec::new();
        for i in 0..(SEG_ROWS as u64 + 7) {
            let d = match mix(i) % 4 {
                0 => Datum::Int(i as i64),
                1 => Datum::Float(i as f64 / 3.0),
                2 => Datum::Text(format!("s{}", mix(i) % 50)),
                _ => Datum::Null,
            };
            store.append(i, d.clone());
            vals.push((d, true));
        }
        let lo = Datum::Int(1000);
        let hi = Datum::Text("s3".into());
        let got = store_select(&store, Some(&lo), true, Some(&hi), false);
        let want = naive_select(&vals, Some(&lo), true, Some(&hi), false);
        assert_eq!(got, want);
    }
}
