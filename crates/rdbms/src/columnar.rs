//! Columnar segment storage for promoted (physical) columns.
//!
//! Sinew's materializer promotes hot keys into real columns (§4); this
//! module gives those columns a packed, scan-friendly representation so
//! sargable predicates run as vectorized kernels instead of per-row
//! `Datum` decode.  A [`ColumnStore`] holds one column's values as a list
//! of fixed-width row-range *segments* ([`SEG_ROWS`] rowids each):
//!
//! * every segment carries a `live` bitmap (row exists in the heap) and a
//!   `valid` bitmap (value is non-NULL), plus a min/max zone map over the
//!   live non-NULL values;
//! * sealed segments pick the cheapest of four encodings — run-length for
//!   runs, frame-of-reference bit-packed integers, dictionary for
//!   low-cardinality strings, or plain `Datum`s;
//! * the tail segment stays plain and is sealed (encoded) when it fills.
//!
//! The heap remains the source of truth: stores are rebuilt from a heap
//! scan at promotion time and maintained incrementally by every DML path.
//! Kernels use `Datum::key_cmp` bounds — SQL comparison where it is
//! defined, total-order fallback across types — so kernel output is a
//! superset of the SQL match set and the executor re-applies the full
//! predicate as a residual filter unless the planner proved the bounds
//! exact (or the per-segment exactness proof of
//! [`ColumnStore::segment_value_class`] holds).
//!
//! The word-parallel batch primitives live in [`crate::kernels`]; the
//! scalar per-slot loops kept here double as the `SINEW_SIMD=0` oracle.

use crate::datum::Datum;
use crate::heap::RowId;
use crate::kernels::{self, pack_get, pack_mask, pack_push, KernelStats, LANES};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Rowids covered by one segment. Chosen so a segment's working set fits
/// comfortably in L2 while still amortizing per-segment overheads.
pub const SEG_ROWS: usize = 4096;

const BM_WORDS: usize = SEG_ROWS / 64;

#[inline]
fn bm_get(bm: &[u64], i: usize) -> bool {
    bm[i >> 6] >> (i & 63) & 1 != 0
}

#[inline]
fn bm_set(bm: &mut [u64], i: usize, v: bool) {
    if v {
        bm[i >> 6] |= 1u64 << (i & 63);
    } else {
        bm[i >> 6] &= !(1u64 << (i & 63));
    }
}

/// Physical encoding of one sealed segment's values.
enum Enc {
    /// One `Datum` per slot (also the mutable-tail representation).
    Plain(Vec<Datum>),
    /// Frame-of-reference bit-packed integers: slot value = base + packed.
    /// Invalid/dead slots store 0.
    PackedInt { base: i64, bits: u32, words: Vec<u64> },
    /// Dictionary of distinct values sorted by `total_cmp`, with
    /// bit-packed per-slot codes. Invalid/dead slots store code 0.
    Dict { dict: Vec<Datum>, bits: u32, codes: Vec<u64> },
    /// Run-length runs over slot order (dead/NULL slots appear as Null
    /// runs); run lengths sum to the slot count.
    Rle { runs: Vec<(Datum, u32)> },
}

impl Enc {
    fn name(&self) -> &'static str {
        match self {
            Enc::Plain(_) => "plain",
            Enc::PackedInt { .. } => "packed-int",
            Enc::Dict { .. } => "dict",
            Enc::Rle { .. } => "rle",
        }
    }

    /// Approximate encoded payload bytes.
    fn bytes(&self) -> u64 {
        match self {
            Enc::Plain(vals) => vals.iter().map(|d| d.width() as u64).sum(),
            Enc::PackedInt { words, .. } => 16 + words.len() as u64 * 8,
            Enc::Dict { dict, codes, .. } => {
                dict.iter().map(|d| d.width() as u64).sum::<u64>() + codes.len() as u64 * 8
            }
            Enc::Rle { runs } => runs.iter().map(|(d, _)| d.width() as u64 + 4).sum(),
        }
    }
}

struct Segment {
    /// Slots appended so far (== SEG_ROWS once sealed).
    n_slots: usize,
    live: Vec<u64>,
    valid: Vec<u64>,
    enc: Enc,
    /// Zone map over live, non-NULL values (total_cmp order). Deletes
    /// leave it a conservative superset until enough of the segment dies
    /// to trigger a re-seal (see `reseal_at`).
    min: Option<Datum>,
    max: Option<Datum>,
    sealed: bool,
    /// Live-count threshold below which a delete re-seals the segment
    /// (re-encoding and recomputing the zone map over the survivors).
    /// Set to half the live count at seal time, so the O(SEG_ROWS)
    /// re-encode amortizes to O(1) per delete.
    reseal_at: usize,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            n_slots: 0,
            live: vec![0; BM_WORDS],
            valid: vec![0; BM_WORDS],
            enc: Enc::Plain(Vec::new()),
            min: None,
            max: None,
            sealed: false,
            reseal_at: 0,
        }
    }

    fn live_count(&self) -> usize {
        self.live.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn widen_zone(&mut self, d: &Datum) {
        if d.is_null() {
            return;
        }
        match &self.min {
            Some(m) if m.total_cmp(d) != Ordering::Greater => {}
            _ => self.min = Some(d.clone()),
        }
        match &self.max {
            Some(m) if m.total_cmp(d) != Ordering::Less => {}
            _ => self.max = Some(d.clone()),
        }
    }

    fn recompute_zone(&mut self, plain: &[Datum]) {
        self.min = None;
        self.max = None;
        for (i, d) in plain.iter().enumerate() {
            if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                let cur_min = self.min.take();
                self.min = match cur_min {
                    Some(m) if m.total_cmp(d) != Ordering::Greater => Some(m),
                    _ => Some(d.clone()),
                };
                let cur_max = self.max.take();
                self.max = match cur_max {
                    Some(m) if m.total_cmp(d) != Ordering::Less => Some(m),
                    _ => Some(d.clone()),
                };
            }
        }
    }

    /// Decode the segment back to one `Datum` per slot.
    fn to_plain(&self) -> Vec<Datum> {
        match &self.enc {
            Enc::Plain(vals) => vals.clone(),
            Enc::PackedInt { base, bits, words } => (0..self.n_slots)
                .map(|i| {
                    if bm_get(&self.valid, i) {
                        Datum::Int(base.wrapping_add(pack_get(words, *bits, i) as i64))
                    } else {
                        Datum::Null
                    }
                })
                .collect(),
            Enc::Dict { dict, bits, codes } => (0..self.n_slots)
                .map(|i| {
                    if bm_get(&self.valid, i) {
                        dict[pack_get(codes, *bits, i) as usize].clone()
                    } else {
                        Datum::Null
                    }
                })
                .collect(),
            Enc::Rle { runs } => {
                let mut out = Vec::with_capacity(self.n_slots);
                for (d, n) in runs {
                    for _ in 0..*n {
                        out.push(d.clone());
                    }
                }
                out
            }
        }
    }

    /// Pick the cheapest encoding for a full segment and install it.
    fn seal(&mut self) {
        let plain = match &self.enc {
            Enc::Plain(v) => v,
            _ => return, // already encoded
        };
        debug_assert_eq!(plain.len(), self.n_slots);
        self.reseal_at = self.live_count() / 2;
        // Count runs (dead slots participate as their stored Null). Two
        // values merge into one run only when they are the same variant
        // AND the same bits: `==` alone would merge `-0.0` with `0.0`
        // (losing the sign bit) but not catch `Null == Null`; `total_cmp`
        // alone would merge `Int(5)` with `Float(5.0)` and gather would
        // then resurrect the wrong variant.
        let same = |a: &Datum, b: &Datum| a == b && a.total_cmp(b) == Ordering::Equal;
        let mut runs = 1usize;
        for w in plain.windows(2) {
            if !same(&w[0], &w[1]) {
                runs += 1;
            }
        }
        if runs * 8 <= self.n_slots {
            let mut rle: Vec<(Datum, u32)> = Vec::with_capacity(runs);
            for (i, d) in plain.iter().enumerate() {
                let norm = if bm_get(&self.valid, i) { d.clone() } else { Datum::Null };
                match rle.last_mut() {
                    Some((last, n)) if same(last, &norm) => *n += 1,
                    _ => rle.push((norm, 1)),
                }
            }
            self.enc = Enc::Rle { runs: rle };
            self.sealed = true;
            return;
        }
        let n_valid = (0..self.n_slots).filter(|&i| bm_get(&self.valid, i)).count();
        // All-integer values: frame-of-reference bit packing.
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut all_int = true;
        for (i, d) in plain.iter().enumerate() {
            if !bm_get(&self.valid, i) {
                continue;
            }
            match d {
                Datum::Int(v) => {
                    lo = lo.min(*v);
                    hi = hi.max(*v);
                }
                _ => {
                    all_int = false;
                    break;
                }
            }
        }
        if all_int && n_valid > 0 {
            let range = (hi as i128) - (lo as i128);
            let bits = 128 - (range as u128).leading_zeros();
            if bits < 64 {
                let mut words = Vec::new();
                for (i, d) in plain.iter().enumerate() {
                    let v = match d {
                        Datum::Int(v) if bm_get(&self.valid, i) => {
                            (*v as i128 - lo as i128) as u64
                        }
                        _ => 0,
                    };
                    pack_push(&mut words, bits, i, v);
                }
                self.enc = Enc::PackedInt { base: lo, bits, words };
                self.sealed = true;
                return;
            }
        }
        // Low-cardinality strings: dictionary + packed codes.
        let all_text = plain
            .iter()
            .enumerate()
            .all(|(i, d)| !bm_get(&self.valid, i) || matches!(d, Datum::Text(_)));
        if all_text && n_valid > 0 {
            let mut dict: Vec<Datum> = plain
                .iter()
                .enumerate()
                .filter(|(i, _)| bm_get(&self.valid, *i))
                .map(|(_, d)| d.clone())
                .collect();
            dict.sort_by(|a, b| a.total_cmp(b));
            dict.dedup_by(|a, b| a.total_cmp(b) == Ordering::Equal);
            if dict.len() <= 256 && dict.len() * 2 <= n_valid {
                let bits = usize::BITS - (dict.len() - 1).max(1).leading_zeros();
                let mut codes = Vec::new();
                for (i, d) in plain.iter().enumerate() {
                    let code = if bm_get(&self.valid, i) {
                        dict.binary_search_by(|probe| probe.total_cmp(d)).unwrap_or(0) as u64
                    } else {
                        0
                    };
                    pack_push(&mut codes, bits, i, code);
                }
                self.enc = Enc::Dict { dict, bits, codes };
                self.sealed = true;
                return;
            }
        }
        self.sealed = true; // plain stays plain
    }

    /// True when the zone map proves no live value can fall in the bound
    /// range (`key_cmp` semantics — min/max are maintained in total_cmp
    /// order, which differs from key order only on `-0.0`/`0.0`/`Int(0)`
    /// ties; those are `key_cmp`-Equal, so the pruning test stays safe).
    fn zone_prunes(
        &self,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // No live non-NULL values at all: a bounded kernel matches nothing.
            return lo.is_some() || hi.is_some();
        };
        if let Some(h) = hi {
            match h.key_cmp(min) {
                Ordering::Less => return true,
                Ordering::Equal if !hi_inc => return true,
                _ => {}
            }
        }
        if let Some(l) = lo {
            match l.key_cmp(max) {
                Ordering::Greater => return true,
                Ordering::Equal if !lo_inc => return true,
                _ => {}
            }
        }
        false
    }

    /// Emit slot offsets of live, non-NULL values inside the bound range
    /// (ascending), under `key_cmp` semantics. Kernel engagement is
    /// charged to `stats`; the batched paths touch far fewer than one
    /// decode per slot. `SINEW_SIMD=0` routes to the scalar per-slot
    /// loops, which produce byte-identical output (the differential
    /// oracle).
    fn select(
        &self,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        out: &mut Vec<u32>,
        stats: &mut KernelStats,
    ) {
        let batched = kernels::batched_enabled();
        let in_range = |d: &Datum| -> bool {
            if let Some(l) = lo {
                match d.key_cmp(l) {
                    Ordering::Less => return false,
                    Ordering::Equal if !lo_inc => return false,
                    _ => {}
                }
            }
            if let Some(h) = hi {
                match d.key_cmp(h) {
                    Ordering::Greater => return false,
                    Ordering::Equal if !hi_inc => return false,
                    _ => {}
                }
            }
            true
        };
        match &self.enc {
            Enc::Plain(vals) => {
                if batched {
                    // Walk live&valid a bitmap word at a time so all-dead
                    // words (common after heavy deletes) skip in O(1).
                    for blk in 0..self.n_slots.div_ceil(LANES) {
                        let mut lv = self.live[blk] & self.valid[blk];
                        let tail = self.n_slots - blk * LANES;
                        if tail < LANES {
                            lv &= (1u64 << tail) - 1;
                        }
                        if lv == 0 {
                            stats.fastpath_words += 1;
                            continue;
                        }
                        while lv != 0 {
                            let i = blk * LANES + lv.trailing_zeros() as usize;
                            lv &= lv - 1;
                            stats.decoded += 1;
                            if in_range(&vals[i]) {
                                out.push(i as u32);
                            }
                        }
                    }
                } else {
                    for (i, d) in vals.iter().enumerate() {
                        if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                            stats.decoded += 1;
                            if in_range(d) {
                                out.push(i as u32);
                            }
                        }
                    }
                }
            }
            Enc::PackedInt { base, bits, words } => {
                // Translate each bound into an inclusive integer bound
                // once, then the inner loop is integer compares on packed
                // words. In key_cmp order ints sit numerically among
                // floats (exactly — `cmp_int_f64` is precise at every
                // magnitude), above Null/Bool, below Text/Bytea/Array — so
                // every bound maps to an integer cut or to all/none.
                enum IntBound {
                    At(i128),
                    AllPass,
                    NonePass,
                }
                // 2^63 as f64 (exact). Floats at or beyond ±2^63 compare
                // strictly outside every i64, and must not reach the
                // `as i128` casts below: those saturate, and the
                // subsequent `v - base` could then overflow i128.
                const F64_I64_SPAN: f64 = 9_223_372_036_854_775_808.0;
                // Smallest integer satisfying the lower bound.
                let lo_b = match lo {
                    None => IntBound::AllPass,
                    Some(Datum::Int(v)) => {
                        IntBound::At(*v as i128 + if lo_inc { 0 } else { 1 })
                    }
                    Some(Datum::Float(f)) => {
                        if f.is_nan() {
                            // key_cmp falls back to total order for NaN:
                            // negative NaN sits below every number,
                            // positive NaN above.
                            if f.is_sign_negative() {
                                IntBound::AllPass
                            } else {
                                IntBound::NonePass
                            }
                        } else if *f >= F64_I64_SPAN {
                            IntBound::NonePass // bound above every i64
                        } else if *f < -F64_I64_SPAN {
                            IntBound::AllPass
                        } else if f.fract() == 0.0 {
                            IntBound::At(*f as i128 + if lo_inc { 0 } else { 1 })
                        } else {
                            IntBound::At(f.ceil() as i128)
                        }
                    }
                    Some(Datum::Text(_) | Datum::Bytea(_) | Datum::Array(_)) => {
                        IntBound::NonePass
                    }
                    Some(_) => IntBound::AllPass, // Null/Bool rank below ints
                };
                // Largest integer satisfying the upper bound.
                let hi_b = match hi {
                    None => IntBound::AllPass,
                    Some(Datum::Int(v)) => {
                        IntBound::At(*v as i128 - if hi_inc { 0 } else { 1 })
                    }
                    Some(Datum::Float(f)) => {
                        if f.is_nan() {
                            if f.is_sign_negative() {
                                IntBound::NonePass
                            } else {
                                IntBound::AllPass
                            }
                        } else if *f >= F64_I64_SPAN {
                            IntBound::AllPass
                        } else if *f < -F64_I64_SPAN {
                            IntBound::NonePass // bound below every i64
                        } else if f.fract() == 0.0 {
                            IntBound::At(*f as i128 - if hi_inc { 0 } else { 1 })
                        } else {
                            IntBound::At(f.floor() as i128)
                        }
                    }
                    Some(Datum::Text(_) | Datum::Bytea(_) | Datum::Array(_)) => {
                        IntBound::AllPass // text ranks above every int
                    }
                    Some(_) => IntBound::NonePass, // Null/Bool rank below ints
                };
                let full = pack_mask(*bits) as i128;
                let p_lo = match lo_b {
                    IntBound::NonePass => return,
                    IntBound::AllPass => 0i128,
                    IntBound::At(v) => (v - *base as i128).max(0),
                };
                let p_hi = match hi_b {
                    IntBound::NonePass => return,
                    IntBound::AllPass => full,
                    IntBound::At(v) => (v - *base as i128).min(full),
                };
                if p_lo > p_hi {
                    return;
                }
                let (p_lo, p_hi) = (p_lo as u64, p_hi as u64);
                if batched {
                    kernels::select_packed(
                        words,
                        *bits,
                        self.n_slots,
                        &self.live,
                        &self.valid,
                        p_lo,
                        p_hi,
                        out,
                        stats,
                    );
                } else {
                    for i in 0..self.n_slots {
                        if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                            stats.decoded += 1;
                            let v = pack_get(words, *bits, i);
                            if v >= p_lo && v <= p_hi {
                                out.push(i as u32);
                            }
                        }
                    }
                }
            }
            Enc::Dict { dict, bits, codes } => {
                // Predicate rewriting: the dictionary is total_cmp-sorted
                // (key-order for the all-text dictionaries seal() builds),
                // so the predicate evaluates once against the dictionary
                // into a contiguous code range and the slot scan never
                // materializes a Datum.
                stats.dict_rewrites += 1;
                stats.decoded += dict.len() as u64;
                let c_lo = match lo {
                    None => 0usize,
                    Some(l) => dict.partition_point(|d| {
                        matches!(d.key_cmp(l), Ordering::Less)
                            || (!lo_inc && d.key_cmp(l) == Ordering::Equal)
                    }),
                };
                let c_hi = match hi {
                    None => dict.len(),
                    Some(h) => dict.partition_point(|d| {
                        matches!(d.key_cmp(h), Ordering::Less)
                            || (hi_inc && d.key_cmp(h) == Ordering::Equal)
                    }),
                };
                if c_lo >= c_hi {
                    return;
                }
                let (c_lo, c_hi) = (c_lo as u64, (c_hi - 1) as u64);
                if batched {
                    kernels::select_packed(
                        codes,
                        *bits,
                        self.n_slots,
                        &self.live,
                        &self.valid,
                        c_lo,
                        c_hi,
                        out,
                        stats,
                    );
                } else {
                    for i in 0..self.n_slots {
                        if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                            let c = pack_get(codes, *bits, i);
                            if c >= c_lo && c <= c_hi {
                                out.push(i as u32);
                            }
                        }
                    }
                }
            }
            Enc::Rle { runs } => {
                // Run-level evaluation: one predicate compare per run;
                // rejected (or NULL) runs skip all their slots in O(1),
                // matching runs emit via bitmap words.
                let mut start = 0usize;
                for (d, n) in runs {
                    let end = start + *n as usize;
                    stats.decoded += 1;
                    if d.is_null() || !in_range(d) {
                        stats.rle_runs_skipped += 1;
                        start = end;
                        continue;
                    }
                    if batched {
                        let mut blk = start / LANES;
                        while blk * LANES < end {
                            let word_base = blk * LANES;
                            let mut m = self.live[blk] & self.valid[blk];
                            if word_base < start {
                                m &= u64::MAX << (start - word_base);
                            }
                            if end - word_base < LANES {
                                m &= (1u64 << (end - word_base)) - 1;
                            }
                            if m == u64::MAX {
                                // Whole word live, valid and in-run: pure
                                // emission with no per-slot masking.
                                stats.fastpath_words += 1;
                            }
                            while m != 0 {
                                out.push((word_base + m.trailing_zeros() as usize) as u32);
                                m &= m - 1;
                            }
                            blk += 1;
                        }
                    } else {
                        for i in start..end {
                            if bm_get(&self.live, i) && bm_get(&self.valid, i) {
                                out.push(i as u32);
                            }
                        }
                    }
                    start = end;
                }
            }
        }
    }

    /// All live slot offsets (NULL values included) — the unbounded scan.
    /// Word-at-a-time: all-dead bitmap words skip without slot iteration.
    fn live_slots(&self, out: &mut Vec<u32>) {
        for blk in 0..self.n_slots.div_ceil(LANES) {
            let mut m = self.live[blk];
            let tail = self.n_slots - blk * LANES;
            if tail < LANES {
                m &= (1u64 << tail) - 1;
            }
            let base = (blk * LANES) as u32;
            while m != 0 {
                out.push(base + m.trailing_zeros());
                m &= m - 1;
            }
        }
    }

    /// Materialize values at ascending `offsets` into `out` (Null for
    /// slots whose value is NULL). One pass regardless of encoding; packed
    /// encodings decode dense offset runs a 64-block at a time.
    fn gather(&self, offsets: &[u32], out: &mut Vec<Datum>, stats: &mut KernelStats) {
        let batched = kernels::batched_enabled();
        match &self.enc {
            Enc::Plain(vals) => {
                for &i in offsets {
                    let i = i as usize;
                    if bm_get(&self.valid, i) {
                        out.push(vals[i].clone());
                    } else {
                        out.push(Datum::Null);
                    }
                }
            }
            Enc::PackedInt { base, bits, words } => {
                if batched {
                    out.reserve(offsets.len());
                    kernels::gather_codes(words, *bits, offsets, stats, |k, v| {
                        let i = offsets[k] as usize;
                        out.push(if bm_get(&self.valid, i) {
                            Datum::Int(base.wrapping_add(v as i64))
                        } else {
                            Datum::Null
                        });
                    });
                } else {
                    for &i in offsets {
                        let i = i as usize;
                        if bm_get(&self.valid, i) {
                            out.push(Datum::Int(
                                base.wrapping_add(pack_get(words, *bits, i) as i64),
                            ));
                        } else {
                            out.push(Datum::Null);
                        }
                    }
                }
            }
            Enc::Dict { dict, bits, codes } => {
                if batched {
                    out.reserve(offsets.len());
                    kernels::gather_codes(codes, *bits, offsets, stats, |k, c| {
                        let i = offsets[k] as usize;
                        out.push(if bm_get(&self.valid, i) {
                            dict[c as usize].clone()
                        } else {
                            Datum::Null
                        });
                    });
                } else {
                    for &i in offsets {
                        let i = i as usize;
                        if bm_get(&self.valid, i) {
                            out.push(dict[pack_get(codes, *bits, i) as usize].clone());
                        } else {
                            out.push(Datum::Null);
                        }
                    }
                }
            }
            Enc::Rle { runs } => {
                let mut run = 0usize;
                let mut run_end = runs.first().map(|(_, n)| *n as usize).unwrap_or(0);
                for &i in offsets {
                    let i = i as usize;
                    while i >= run_end {
                        run += 1;
                        run_end += runs[run].1 as usize;
                    }
                    if bm_get(&self.valid, i) {
                        out.push(runs[run].0.clone());
                    } else {
                        out.push(Datum::Null);
                    }
                }
            }
        }
    }
}

/// Per-column segment store. Rowid `r` lives in segment `r / SEG_ROWS`
/// at slot `r % SEG_ROWS`; heap rowids are dense and append-only, so the
/// tail segment is the only mutable one in the common case.
pub struct ColumnStore {
    column: String,
    segments: Vec<Segment>,
    /// MVCC creation timestamps, per segment per slot (absent / 0 = visible
    /// to every snapshot). Only Retain-mode inserts tag; eager writes leave
    /// no trace, so serial workloads never allocate these.
    tags: HashMap<u64, Vec<u64>>,
    /// Deferred Retain-mode mutations: the store keeps showing the old
    /// value/liveness to registered snapshots; vacuum applies an op once
    /// the horizon passes its timestamp. While any op is pending, readers
    /// at or past its timestamp (including the latest-committed view) fall
    /// back to the heap — see [`ColumnStore::usable_for`].
    pending: Vec<PendingOp>,
    max_tag_ts: u64,
    /// Readers older than this cannot use the store at all (it was rebuilt
    /// from a heap scan that already includes younger versions).
    floor: u64,
}

struct PendingOp {
    ts: u64,
    rowid: RowId,
    op: PendingKind,
}

enum PendingKind {
    Set(Datum),
    Delete,
}

/// Observability summary of one column store (for storage_report).
#[derive(Debug, Clone)]
pub struct ColumnarInfo {
    pub column: String,
    pub segments: u64,
    pub encoded_bytes: u64,
    pub raw_bytes: u64,
    /// Segment counts per encoding, e.g. `"packed-int:3 plain:1"`.
    pub encodings: String,
}

impl ColumnStore {
    pub fn new(column: &str) -> ColumnStore {
        ColumnStore {
            column: column.to_string(),
            segments: Vec::new(),
            tags: HashMap::new(),
            pending: Vec::new(),
            max_tag_ts: 0,
            floor: 0,
        }
    }

    // ---- MVCC maintenance ----

    /// Stamp the store's visibility floor after a rebuild: the heap scan
    /// that produced it reflects commits up to (at least) `ts`, so older
    /// snapshots must not read it.
    pub fn set_floor(&mut self, ts: u64) {
        self.floor = ts;
    }

    /// May a reader with this read timestamp use the store? False when the
    /// store was rebuilt past the reader, or when a deferred mutation the
    /// reader should observe has not been applied yet (the caller then
    /// falls back to the heap scan path).
    pub fn usable_for(&self, read_ts: u64) -> bool {
        read_ts >= self.floor && self.pending.iter().all(|p| read_ts < p.ts)
    }

    /// Retain-mode insert: append and tag the slot with its creation
    /// timestamp so older snapshots filter it out of kernel output.
    pub fn append_tagged(&mut self, rowid: RowId, value: Datum, ts: u64) {
        self.append(rowid, value);
        let seg = rowid as usize / SEG_ROWS;
        let slot = rowid as usize % SEG_ROWS;
        let tags = self.tags.entry(seg as u64).or_default();
        if tags.len() <= slot {
            tags.resize(slot + 1, 0);
        }
        tags[slot] = ts;
        self.max_tag_ts = self.max_tag_ts.max(ts);
    }

    /// Defer an update until the snapshot horizon passes `ts`.
    pub fn pending_set(&mut self, rowid: RowId, value: Datum, ts: u64) {
        self.pending.push(PendingOp { ts, rowid, op: PendingKind::Set(value) });
    }

    /// Defer a delete until the snapshot horizon passes `ts`.
    pub fn pending_delete(&mut self, rowid: RowId, ts: u64) {
        self.pending.push(PendingOp { ts, rowid, op: PendingKind::Delete });
    }

    /// Drop slot offsets whose creation timestamp is after the reader's
    /// snapshot. Kernel emission is a superset filtered here, so sealed
    /// segment payloads stay immutable under concurrent inserts.
    pub fn filter_visible(&self, seg: u64, read_ts: u64, offs: &mut Vec<u32>) {
        if read_ts >= self.max_tag_ts {
            return;
        }
        let Some(tags) = self.tags.get(&seg) else {
            return;
        };
        offs.retain(|&o| tags.get(o as usize).is_none_or(|&t| t <= read_ts));
    }

    /// Apply deferred mutations whose timestamp has passed the snapshot
    /// horizon (`None` = no live snapshot, everything applies) and drop
    /// tags nobody can still be below. Returns the ops applied.
    pub fn vacuum(&mut self, horizon: Option<u64>) -> u64 {
        let ready = |ts: u64| horizon.is_none_or(|h| ts <= h);
        let mut applied = 0u64;
        if self.pending.iter().any(|p| ready(p.ts)) {
            let mut apply = Vec::new();
            let mut keep = Vec::new();
            for p in self.pending.drain(..) {
                if ready(p.ts) {
                    apply.push(p);
                } else {
                    keep.push(p);
                }
            }
            self.pending = keep;
            // Same-row ops must land in commit order.
            apply.sort_by_key(|p| p.ts);
            applied = apply.len() as u64;
            for p in apply {
                match p.op {
                    PendingKind::Set(v) => self.set(p.rowid, v),
                    PendingKind::Delete => self.delete(p.rowid),
                }
            }
        }
        if !self.tags.is_empty() && horizon.is_none_or(|h| h >= self.max_tag_ts) {
            self.tags.clear();
            self.max_tag_ts = 0;
        }
        applied
    }

    /// No pending mutations and no visibility tags — vacuum has nothing
    /// to do here (the cheap pre-check before taking a write lock).
    pub fn mvcc_clean(&self) -> bool {
        self.pending.is_empty() && self.tags.is_empty()
    }

    pub fn column(&self) -> &str {
        &self.column
    }

    pub fn n_segments(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Rowids covered so far (dense from 0).
    fn coverage(&self) -> u64 {
        match self.segments.last() {
            None => 0,
            Some(tail) => ((self.segments.len() - 1) * SEG_ROWS + tail.n_slots) as u64,
        }
    }

    fn push_slot(&mut self, value: Datum, live: bool) {
        if self.segments.last().map(|s| s.n_slots >= SEG_ROWS).unwrap_or(true) {
            if let Some(tail) = self.segments.last_mut() {
                tail.seal();
            }
            self.segments.push(Segment::new());
        }
        let seg = self.segments.last_mut().unwrap();
        let slot = seg.n_slots;
        let valid = live && !value.is_null();
        bm_set(&mut seg.live, slot, live);
        bm_set(&mut seg.valid, slot, valid);
        if valid {
            seg.widen_zone(&value);
        }
        match &mut seg.enc {
            Enc::Plain(vals) => vals.push(value),
            _ => unreachable!("tail segment is always plain"),
        }
        seg.n_slots += 1;
    }

    /// Record a freshly inserted row. Rowids arrive in increasing order
    /// (the heap allocates densely); gaps — rowids never seen because the
    /// store was built mid-stream — are filled as dead slots.
    pub fn append(&mut self, rowid: RowId, value: Datum) {
        while self.coverage() < rowid {
            self.push_slot(Datum::Null, false);
        }
        if self.coverage() == rowid {
            self.push_slot(value, true);
        } else {
            // Re-insert into an already covered rowid (shouldn't happen
            // with a dense heap, but stay correct): treat as update.
            self.set(rowid, value);
        }
    }

    /// Update the value of an existing row.
    pub fn set(&mut self, rowid: RowId, value: Datum) {
        if rowid >= self.coverage() {
            self.append(rowid, value);
            return;
        }
        let seg_no = rowid as usize / SEG_ROWS;
        let slot = rowid as usize % SEG_ROWS;
        let seg = &mut self.segments[seg_no];
        let mut plain = seg.to_plain();
        bm_set(&mut seg.live, slot, true);
        bm_set(&mut seg.valid, slot, !value.is_null());
        plain[slot] = value;
        seg.recompute_zone(&plain);
        let was_sealed = seg.sealed;
        seg.sealed = false;
        seg.enc = Enc::Plain(plain);
        if was_sealed {
            seg.seal();
        }
    }

    /// Mark a row dead. Values stay in place and the zone map is left as
    /// a (conservative) superset — until the sealed segment's live count
    /// halves, at which point the segment re-seals: the zone map is
    /// recomputed over the survivors (deletes only shrink the value set,
    /// so stale zones prune poorly) and the encoding re-picked.
    pub fn delete(&mut self, rowid: RowId) {
        if rowid >= self.coverage() {
            return;
        }
        let seg_no = rowid as usize / SEG_ROWS;
        let slot = rowid as usize % SEG_ROWS;
        let seg = &mut self.segments[seg_no];
        bm_set(&mut seg.live, slot, false);
        bm_set(&mut seg.valid, slot, false);
        if seg.sealed && seg.live_count() < seg.reseal_at {
            let plain = seg.to_plain();
            seg.recompute_zone(&plain);
            seg.enc = Enc::Plain(plain);
            seg.sealed = false;
            seg.seal();
        }
    }

    /// Zone-map test for one segment against a `key_cmp` bound range.
    pub fn zone_prunes(
        &self,
        seg: u64,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> bool {
        self.segments[seg as usize].zone_prunes(lo, lo_inc, hi, hi_inc)
    }

    /// Vectorized bound kernel over one segment: ascending slot offsets of
    /// live non-NULL values inside the range (`key_cmp` semantics).
    /// Returns the kernel engagement counters for this call.
    pub fn select_segment(
        &self,
        seg: u64,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        out: &mut Vec<u32>,
    ) -> KernelStats {
        let mut stats = KernelStats::default();
        self.segments[seg as usize].select(lo, lo_inc, hi, hi_inc, out, &mut stats);
        stats
    }

    /// All live slots of one segment (unbounded scan path).
    pub fn live_slots(&self, seg: u64, out: &mut Vec<u32>) {
        self.segments[seg as usize].live_slots(out);
    }

    /// Materialize this column's values at the given segment offsets.
    pub fn gather(&self, seg: u64, offsets: &[u32], out: &mut Vec<Datum>, stats: &mut KernelStats) {
        self.segments[seg as usize].gather(offsets, out, stats);
    }

    /// Exactness class shared by every live non-NULL value of one segment,
    /// proved by its zone map: when `min` and `max` land in the same
    /// [`Datum::exactness_class`], every value between them in total order
    /// is in that class too (a value of another class sitting between two
    /// same-class endpoints would contradict the class ordering; a NaN in
    /// the segment would itself be the min or max and has no class). For
    /// such segments, kernel emission under `key_cmp` with bounds of the
    /// same class equals the SQL match set exactly, so the executor can
    /// skip the residual filter even when the planner couldn't prove
    /// exactness globally.
    pub fn segment_value_class(&self, seg: u64) -> Option<u8> {
        let s = &self.segments[seg as usize];
        match (&s.min, &s.max) {
            (Some(mn), Some(mx)) => match (mn.exactness_class(), mx.exactness_class()) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
            _ => None,
        }
    }

    pub fn info(&self) -> ColumnarInfo {
        let mut encoded = 0u64;
        let mut raw = 0u64;
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for seg in &self.segments {
            encoded += seg.enc.bytes() + 2 * BM_WORDS as u64 * 8;
            let plain = seg.to_plain();
            for (i, d) in plain.iter().enumerate() {
                if bm_get(&seg.live, i) {
                    raw += d.width() as u64;
                }
            }
            let name = seg.enc.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        let encodings = counts
            .iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        ColumnarInfo {
            column: self.column.clone(),
            segments: self.segments.len() as u64,
            encoded_bytes: encoded,
            raw_bytes: raw,
            encodings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes SINEW_SIMD mutation within this module; the knob is
    /// process-global and read fresh per kernel call.
    static SIMD_ENV: Mutex<()> = Mutex::new(());

    fn with_simd<R>(mode: &str, f: impl FnOnce() -> R) -> R {
        let _g = SIMD_ENV.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::env::var("SINEW_SIMD").ok();
        std::env::set_var("SINEW_SIMD", mode);
        let r = f();
        match prev {
            Some(v) => std::env::set_var("SINEW_SIMD", v),
            None => std::env::remove_var("SINEW_SIMD"),
        }
        r
    }

    fn naive_select(
        vals: &[(Datum, bool)], // (value, live)
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for (i, (d, live)) in vals.iter().enumerate() {
            if !*live || d.is_null() {
                continue;
            }
            let mut ok = true;
            if let Some(l) = lo {
                match d.key_cmp(l) {
                    Ordering::Less => ok = false,
                    Ordering::Equal if !lo_inc => ok = false,
                    _ => {}
                }
            }
            if let Some(h) = hi {
                match d.key_cmp(h) {
                    Ordering::Greater => ok = false,
                    Ordering::Equal if !hi_inc => ok = false,
                    _ => {}
                }
            }
            if ok {
                out.push(i as u32);
            }
        }
        out
    }

    fn store_select_raw(
        store: &ColumnStore,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for seg in 0..store.n_segments() {
            let mut offs = Vec::new();
            if !store.zone_prunes(seg, lo, lo_inc, hi, hi_inc) {
                store.select_segment(seg, lo, lo_inc, hi, hi_inc, &mut offs);
            }
            out.extend(offs.iter().map(|&o| seg as u32 * SEG_ROWS as u32 + o));
        }
        out
    }

    /// Run the kernel under both SINEW_SIMD settings, assert they agree,
    /// and return the (shared) result.
    fn store_select(
        store: &ColumnStore,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
    ) -> Vec<u32> {
        let scalar = with_simd("0", || store_select_raw(store, lo, lo_inc, hi, hi_inc));
        let batched = with_simd("1", || store_select_raw(store, lo, lo_inc, hi, hi_inc));
        assert_eq!(scalar, batched, "scalar and batched kernels diverged");
        batched
    }

    fn mix(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[test]
    fn packed_int_roundtrip_and_select() {
        let mut store = ColumnStore::new("a");
        let mut vals = Vec::new();
        for i in 0..(SEG_ROWS as u64 * 2 + 100) {
            let v = (mix(i) % 1000) as i64 + 500;
            store.append(i, Datum::Int(v));
            vals.push((Datum::Int(v), true));
        }
        // first two segments sealed as packed-int
        assert!(store.info().encodings.contains("packed-int"));
        for (lo, li, hi, hi_i) in [
            (Some(Datum::Int(700)), true, Some(Datum::Int(900)), true),
            (Some(Datum::Int(700)), false, None, true),
            (None, true, Some(Datum::Float(750.5)), true),
            (Some(Datum::Float(649.5)), true, Some(Datum::Int(651)), false),
        ] {
            let got = store_select(&store, lo.as_ref(), li, hi.as_ref(), hi_i);
            let want = naive_select(&vals, lo.as_ref(), li, hi.as_ref(), hi_i);
            assert_eq!(got, want, "bounds {lo:?} {li} {hi:?} {hi_i}");
        }
        // gather round-trips identically under both kernel modes
        let offs: Vec<u32> = (0..64).collect();
        for mode in ["0", "1"] {
            let mut out = Vec::new();
            let mut st = KernelStats::default();
            with_simd(mode, || store.gather(0, &offs, &mut out, &mut st));
            for (o, d) in offs.iter().zip(&out) {
                assert_eq!(*d, vals[*o as usize].0);
            }
            assert_eq!(st.batched > 0, mode == "1", "dense gather should batch iff enabled");
        }
    }

    #[test]
    fn dict_and_rle_roundtrip() {
        let mut dict_store = ColumnStore::new("c");
        let mut rle_store = ColumnStore::new("r");
        let cats = ["alpha", "beta", "gamma", "delta"];
        let mut dict_vals = Vec::new();
        for i in 0..(SEG_ROWS as u64 + 10) {
            let d = Datum::Text(cats[(mix(i) % 19 % 4) as usize].to_string());
            dict_store.append(i, d.clone());
            dict_vals.push((d, true));
            rle_store.append(i, Datum::Int((i / 2048) as i64));
        }
        assert!(dict_store.info().encodings.contains("dict"));
        assert!(rle_store.info().encodings.contains("rle"));
        let lo = Datum::Text("beta".into());
        let got = store_select(&dict_store, Some(&lo), true, Some(&lo), true);
        let want = naive_select(&dict_vals, Some(&lo), true, Some(&lo), true);
        assert_eq!(got, want);
        // RLE gather
        let offs: Vec<u32> = vec![0, 1, 2047, 2048, 4095];
        let mut out = Vec::new();
        rle_store.gather(0, &offs, &mut out, &mut KernelStats::default());
        assert_eq!(
            out,
            vec![
                Datum::Int(0),
                Datum::Int(0),
                Datum::Int(0),
                Datum::Int(1),
                Datum::Int(1)
            ]
        );
    }

    #[test]
    fn zone_maps_prune_disjoint_segments() {
        let mut store = ColumnStore::new("a");
        for i in 0..(SEG_ROWS as u64 * 3) {
            store.append(i, Datum::Int(i as i64));
        }
        let lo = Datum::Int(SEG_ROWS as i64 * 2 + 5);
        let mut pruned = 0;
        for seg in 0..store.n_segments() {
            if store.zone_prunes(seg, Some(&lo), true, None, true) {
                pruned += 1;
            }
        }
        assert_eq!(pruned, 2);
    }

    #[test]
    fn dml_maintenance_updates_and_deletes() {
        let mut store = ColumnStore::new("a");
        for i in 0..(SEG_ROWS as u64 + 50) {
            store.append(i, Datum::Int(i as i64 % 100));
        }
        // update inside the sealed segment widens its zone map
        store.set(10, Datum::Int(100_000));
        let hit = store_select(&store, Some(&Datum::Int(100_000)), true, None, true);
        assert_eq!(hit, vec![10]);
        // delete removes the row from kernels
        store.delete(10);
        let hit = store_select(&store, Some(&Datum::Int(100_000)), true, None, true);
        assert!(hit.is_empty());
        // NULL update: excluded from bounded kernels, present in live_slots
        store.set(20, Datum::Null);
        let hit = store_select(&store, Some(&Datum::Int(20)), true, Some(&Datum::Int(20)), true);
        assert!(!hit.contains(&20));
        let mut live = Vec::new();
        store.live_slots(0, &mut live);
        assert!(live.contains(&20));
        assert!(!live.contains(&10));
        // gaps appended as dead slots
        let mut store2 = ColumnStore::new("g");
        store2.append(5, Datum::Int(7));
        let mut live2 = Vec::new();
        store2.live_slots(0, &mut live2);
        assert_eq!(live2, vec![5]);
    }

    #[test]
    fn mixed_type_segments_stay_plain_and_correct() {
        let mut store = ColumnStore::new("m");
        let mut vals = Vec::new();
        for i in 0..(SEG_ROWS as u64 + 7) {
            let d = match mix(i) % 4 {
                0 => Datum::Int(i as i64),
                1 => Datum::Float(i as f64 / 3.0),
                2 => Datum::Text(format!("s{}", mix(i) % 50)),
                _ => Datum::Null,
            };
            store.append(i, d.clone());
            vals.push((d, true));
        }
        let lo = Datum::Int(1000);
        let hi = Datum::Text("s3".into());
        let got = store_select(&store, Some(&lo), true, Some(&hi), false);
        let want = naive_select(&vals, Some(&lo), true, Some(&hi), false);
        assert_eq!(got, want);
    }

    #[test]
    fn delete_reseal_tightens_zone_and_prunes() {
        let mut store = ColumnStore::new("a");
        // 100 outlier rows stretch the zone; the rest sit under 50.
        for i in 0..(SEG_ROWS as u64 + 10) {
            let v = if i < 100 { 1_000_000 + i as i64 } else { i as i64 % 50 };
            store.append(i, Datum::Int(v));
        }
        let probe = Datum::Int(500_000);
        assert!(!store.zone_prunes(0, Some(&probe), true, None, true));
        // Killing the outliers alone leaves the stale (superset) zone.
        for i in 0..100u64 {
            store.delete(i);
        }
        assert!(
            !store.zone_prunes(0, Some(&probe), true, None, true),
            "zone must stay a conservative superset before the re-seal threshold"
        );
        // Dropping below half the sealed live count triggers the re-seal:
        // zone recomputed over survivors (all < 50), probe now prunes.
        for i in 100..(SEG_ROWS as u64 * 3 / 5) {
            store.delete(i);
        }
        assert!(
            store.zone_prunes(0, Some(&probe), true, None, true),
            "re-seal must tighten the zone map over the survivors"
        );
        // Survivors still select correctly after the re-encode.
        let vals: Vec<(Datum, bool)> = (0..(SEG_ROWS as u64 + 10))
            .map(|i| {
                let v = if i < 100 { 1_000_000 + i as i64 } else { i as i64 % 50 };
                (Datum::Int(v), i >= SEG_ROWS as u64 * 3 / 5)
            })
            .collect();
        let got = store_select(&store, Some(&Datum::Int(10)), true, Some(&Datum::Int(20)), true);
        let want = naive_select(&vals, Some(&Datum::Int(10)), true, Some(&Datum::Int(20)), true);
        assert_eq!(got, want);
    }

    #[test]
    fn kernel_counters_engage_per_encoding() {
        // Packed-int: batched decode + all-dead word skip.
        let mut packed = ColumnStore::new("p");
        for i in 0..(SEG_ROWS as u64 + 10) {
            packed.append(i, Datum::Int((mix(i) % 1000) as i64));
        }
        for i in 128..192u64 {
            packed.delete(i); // one fully dead bitmap word
        }
        with_simd("1", || {
            let mut offs = Vec::new();
            let st = packed.select_segment(
                0,
                Some(&Datum::Int(100)),
                true,
                Some(&Datum::Int(900)),
                true,
                &mut offs,
            );
            assert!(st.batched > 0, "packed select must use the 64-wide path");
            assert!(st.fastpath_words > 0, "dead word must be skipped wholesale");
            let mut out = Vec::new();
            let mut gst = KernelStats::default();
            packed.gather(0, &offs, &mut out, &mut gst);
            assert!(gst.batched > 0, "dense gather must decode whole blocks");
        });
        with_simd("0", || {
            let mut offs = Vec::new();
            let st = packed.select_segment(
                0,
                Some(&Datum::Int(100)),
                true,
                Some(&Datum::Int(900)),
                true,
                &mut offs,
            );
            assert_eq!(st.batched, 0, "SINEW_SIMD=0 must stay on the scalar path");
        });
        // Dict: predicate rewritten to a code range.
        let mut dict = ColumnStore::new("d");
        let cats = ["alpha", "beta", "gamma", "delta"];
        for i in 0..(SEG_ROWS as u64 + 10) {
            dict.append(i, Datum::Text(cats[(mix(i) % 4) as usize].into()));
        }
        let b = Datum::Text("beta".into());
        let mut offs = Vec::new();
        let st = dict.select_segment(0, Some(&b), true, Some(&b), true, &mut offs);
        assert_eq!(st.dict_rewrites, 1);
        // Rle: non-matching runs skipped at run level.
        let mut rle = ColumnStore::new("r");
        for i in 0..(SEG_ROWS as u64 + 10) {
            rle.append(i, Datum::Int((i / 1024) as i64));
        }
        let mut offs = Vec::new();
        let st =
            rle.select_segment(0, Some(&Datum::Int(2)), true, Some(&Datum::Int(2)), true, &mut offs);
        assert!(st.rle_runs_skipped >= 3, "rejected runs must skip without slot work");
        assert_eq!(offs.len(), 1024);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(48))]
        #[test]
        fn proptest_kernels_match_naive_both_modes(
            seed in proptest::arbitrary::any::<u64>(),
            shape in 0u8..6,
            lo_pick in 0usize..20,
            hi_pick in 0usize..20,
            lo_inc in proptest::arbitrary::any::<bool>(),
            hi_inc in proptest::arbitrary::any::<bool>(),
            churn in 0u8..3,
        ) {
            let cats = ["alpha", "beta", "gamma", "delta"];
            let mk = |i: u64| -> Datum {
                let r = mix(seed ^ i);
                match shape {
                    0 => Datum::Int((r % 1000) as i64 - 500), // packed (zero-straddling)
                    1 => Datum::Int(r as i64),                // too wide: stays plain
                    2 => Datum::Text(cats[(r % 4) as usize].into()), // dict
                    3 => Datum::Int((i / 512) as i64),        // rle
                    4 => match r % 5 {
                        // mixed: plain with NULLs, ±0.0 ties, text
                        0 => Datum::Null,
                        1 => Datum::Int((r % 100) as i64 - 50),
                        2 => Datum::Float((r % 800) as f64 / 8.0 - 50.0),
                        3 => Datum::Float(-0.0),
                        _ => Datum::Text(format!("s{}", r % 7)),
                    },
                    _ => Datum::Float((r % 2000) as f64 / 16.0 - 60.0), // plain floats
                }
            };
            let n = SEG_ROWS as u64 + 1 + mix(seed ^ 0xbeef) % 300;
            let mut vals: Vec<(Datum, bool)> = Vec::new();
            let mut store = ColumnStore::new("x");
            for i in 0..n {
                let d = mk(i);
                store.append(i, d.clone());
                vals.push((d, true));
            }
            if churn > 0 {
                for i in 0..n {
                    let r = mix(seed ^ 0xdead ^ i);
                    if r.is_multiple_of(4) {
                        store.delete(i);
                        vals[i as usize].1 = false;
                    } else if churn > 1 && r.is_multiple_of(17) {
                        let nv = Datum::Int((r % 50) as i64);
                        store.set(i, nv.clone());
                        vals[i as usize].0 = nv;
                    }
                }
            }
            // Bound pool stresses the translation edges: ±0.0/Int(0) ties,
            // floats beyond the i64 span, signed NaNs, infinities, extreme
            // ints, cross-type bounds.
            let pool: [Datum; 19] = [
                Datum::Int(0), Datum::Float(0.0), Datum::Float(-0.0),
                Datum::Int(5), Datum::Float(4.5), Datum::Float(-250.25),
                Datum::Float(-1.0e300), Datum::Float(1.0e300),
                Datum::Float(f64::NAN), Datum::Float(-f64::NAN),
                Datum::Float(f64::INFINITY), Datum::Float(f64::NEG_INFINITY),
                Datum::Int(i64::MIN), Datum::Int(i64::MAX),
                Datum::Text("beta".into()), Datum::Text("s3".into()),
                Datum::Null, Datum::Bool(true), Datum::Int(300),
            ];
            let lo = if lo_pick == 0 { None } else { Some(pool[lo_pick - 1].clone()) };
            let hi = if hi_pick == 0 { None } else { Some(pool[hi_pick - 1].clone()) };
            // store_select asserts scalar == batched internally.
            let got = store_select(&store, lo.as_ref(), lo_inc, hi.as_ref(), hi_inc);
            let want = naive_select(&vals, lo.as_ref(), lo_inc, hi.as_ref(), hi_inc);
            proptest::prop_assert_eq!(&got, &want);
            // Gather differential: selected offsets must round-trip the
            // stored value exactly (variant- and bit-faithful) both ways.
            let seg0: Vec<u32> = got.iter().copied().filter(|&o| (o as usize) < SEG_ROWS).collect();
            for mode in ["0", "1"] {
                let mut out = Vec::new();
                let mut st = KernelStats::default();
                with_simd(mode, || store.gather(0, &seg0, &mut out, &mut st));
                for (o, d) in seg0.iter().zip(&out) {
                    proptest::prop_assert_eq!(d, &vals[*o as usize].0);
                }
            }
        }
    }
}
