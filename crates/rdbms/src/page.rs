//! Slotted 8 KiB pages.
//!
//! Classic layout: a fixed header, a slot directory growing downward from
//! the header, and tuple data growing upward from the end of the page.
//!
//! ```text
//! [u16 nslots][u16 lower][u16 upper][u16 flags]  (8-byte header)
//! [slot 0: u16 off, u16 len][slot 1]...            lower = end of slots
//! ... free space ...
//! ...tuple data...                                  upper = start of data
//! ```
//!
//! `len == 0` marks a dead slot (deleted tuple). Pages are manipulated in
//! place on borrowed byte buffers owned by the buffer pool.

pub const PAGE_SIZE: usize = 8192;
const HEADER: usize = 8;
const SLOT: usize = 4;

/// Maximum tuple payload a fresh page can host; larger tuples go to a
/// jumbo chain (see `heap.rs`).
pub const MAX_INLINE_TUPLE: usize = PAGE_SIZE - HEADER - SLOT;

fn get_u16(page: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([page[at], page[at + 1]])
}

fn put_u16(page: &mut [u8], at: usize, v: u16) {
    page[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

/// Initialize an empty page in `buf`.
pub fn init(buf: &mut [u8]) {
    debug_assert_eq!(buf.len(), PAGE_SIZE);
    buf[..HEADER].fill(0);
    put_u16(buf, 0, 0); // nslots
    put_u16(buf, 2, HEADER as u16); // lower
    put_u16(buf, 4, PAGE_SIZE as u16); // upper
}

pub fn nslots(page: &[u8]) -> usize {
    get_u16(page, 0) as usize
}

/// Free bytes available for one more tuple (accounting for its slot entry).
pub fn free_space(page: &[u8]) -> usize {
    let lower = get_u16(page, 2) as usize;
    let upper = get_u16(page, 4) as usize;
    (upper - lower).saturating_sub(SLOT)
}

/// Insert a tuple; returns the slot number, or `None` if it doesn't fit.
pub fn insert(page: &mut [u8], data: &[u8]) -> Option<u16> {
    if data.len() > free_space(page) {
        return None;
    }
    let n = get_u16(page, 0);
    let lower = get_u16(page, 2) as usize;
    let upper = get_u16(page, 4) as usize;
    let new_upper = upper - data.len();
    page[new_upper..upper].copy_from_slice(data);
    put_u16(page, lower, new_upper as u16);
    put_u16(page, lower + 2, data.len() as u16);
    put_u16(page, 0, n + 1);
    put_u16(page, 2, (lower + SLOT) as u16);
    put_u16(page, 4, new_upper as u16);
    Some(n)
}

/// Read a live tuple's bytes. `None` for dead or out-of-range slots.
pub fn read(page: &[u8], slot: u16) -> Option<&[u8]> {
    if (slot as usize) >= nslots(page) {
        return None;
    }
    let at = HEADER + slot as usize * SLOT;
    let off = get_u16(page, at) as usize;
    let len = get_u16(page, at + 2) as usize;
    if len == 0 {
        return None;
    }
    Some(&page[off..off + len])
}

/// Mark a slot dead. The space is reclaimed only by `compact`.
pub fn delete(page: &mut [u8], slot: u16) -> bool {
    if (slot as usize) >= nslots(page) {
        return false;
    }
    let at = HEADER + slot as usize * SLOT;
    if get_u16(page, at + 2) == 0 {
        return false;
    }
    put_u16(page, at + 2, 0);
    true
}

/// Overwrite a live tuple in place — only allowed at identical length
/// (the heap relocates on size change).
pub fn overwrite(page: &mut [u8], slot: u16, data: &[u8]) -> bool {
    if (slot as usize) >= nslots(page) {
        return false;
    }
    let at = HEADER + slot as usize * SLOT;
    let off = get_u16(page, at) as usize;
    let len = get_u16(page, at + 2) as usize;
    if len != data.len() || len == 0 {
        return false;
    }
    page[off..off + len].copy_from_slice(data);
    true
}

/// Live payload bytes (for fill-factor accounting).
pub fn live_bytes(page: &[u8]) -> usize {
    (0..nslots(page) as u16)
        .filter_map(|s| read(page, s))
        .map(|t| t.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf);
        buf
    }

    #[test]
    fn insert_read_delete() {
        let mut p = fresh();
        let s0 = insert(&mut p, b"hello").unwrap();
        let s1 = insert(&mut p, b"world!").unwrap();
        assert_eq!(read(&p, s0), Some(&b"hello"[..]));
        assert_eq!(read(&p, s1), Some(&b"world!"[..]));
        assert!(delete(&mut p, s0));
        assert_eq!(read(&p, s0), None);
        assert!(!delete(&mut p, s0), "double delete");
        assert_eq!(read(&p, s1), Some(&b"world!"[..]));
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = fresh();
        let tuple = vec![0xAB; 1000];
        let mut count = 0;
        while insert(&mut p, &tuple).is_some() {
            count += 1;
        }
        // 8184 usable / 1004 per tuple = 8 tuples
        assert_eq!(count, 8);
        assert!(free_space(&p) < 1000);
        // a small one still fits
        assert!(insert(&mut p, b"x").is_some());
    }

    #[test]
    fn max_inline_tuple_fits_exactly() {
        let mut p = fresh();
        let tuple = vec![1u8; MAX_INLINE_TUPLE];
        assert!(insert(&mut p, &tuple).is_some());
        assert_eq!(free_space(&p), 0);
        let mut p2 = fresh();
        let too_big = vec![1u8; MAX_INLINE_TUPLE + 1];
        assert!(insert(&mut p2, &too_big).is_none());
    }

    #[test]
    fn overwrite_same_size_only() {
        let mut p = fresh();
        let s = insert(&mut p, b"abcde").unwrap();
        assert!(overwrite(&mut p, s, b"vwxyz"));
        assert_eq!(read(&p, s), Some(&b"vwxyz"[..]));
        assert!(!overwrite(&mut p, s, b"toolong"));
        delete(&mut p, s);
        assert!(!overwrite(&mut p, s, b"abcde"), "dead slot");
    }

    #[test]
    fn live_bytes_tracks_deletes() {
        let mut p = fresh();
        insert(&mut p, b"aaaa").unwrap();
        let s = insert(&mut p, b"bb").unwrap();
        assert_eq!(live_bytes(&p), 6);
        delete(&mut p, s);
        assert_eq!(live_bytes(&p), 4);
    }
}
