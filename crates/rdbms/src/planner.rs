//! Query planner: binding, predicate classification, cost-based join
//! ordering, and physical operator selection.
//!
//! The operator-choice policies mirror Postgres closely enough to reproduce
//! the paper's Table 2:
//!
//! * DISTINCT → hashed (`HashAggregate`) when the estimated distinct set
//!   fits `work_mem`, else `Sort` + `Unique`;
//! * GROUP BY → `HashAggregate` vs `Sort` + `GroupAggregate` by the same
//!   memory rule;
//! * joins → cheapest of hash join (with a batching penalty when the build
//!   side exceeds `work_mem`), merge join (sorting both inputs), and nested
//!   loop; join *order* by dynamic programming over left-deep trees.
//!
//! Estimates for anything behind a UDF call use the fixed defaults in
//! [`crate::selectivity::Defaults`] — the mechanism that makes virtual
//! columns plan worse than physical ones.


use crate::datum::Datum;
use crate::error::{DbError, DbResult};
use crate::expr::{bind, PhysExpr, Scope};
use crate::func::FuncRegistry;
use crate::agg::AggKind;
use crate::plan::{AggSpec, Plan, SortKey};
use crate::schema::TableSchema;
use crate::selectivity::{Defaults, SelContext};
use crate::stats::TableStats;
use sinew_sql::{BinaryOp, Expr, Select, SelectItem, SortOrder};
use std::collections::HashMap;

// Cost constants (Postgres defaults).
const SEQ_PAGE_COST: f64 = 1.0;
/// Non-sequential page fetch (index-scan heap visits): Postgres's 4.0.
const RANDOM_PAGE_COST: f64 = 4.0;
const CPU_TUPLE_COST: f64 = 0.01;
const CPU_OPERATOR_COST: f64 = 0.0025;
/// Per-entry hash table overhead in bytes.
const HASH_OVERHEAD: f64 = 48.0;

/// Table metadata the planner needs.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub schema: TableSchema,
    pub n_rows: f64,
    pub n_pages: f64,
}

/// Read-only view of the catalog, implemented by `Database`.
pub trait CatalogView {
    fn table_meta(&self, name: &str) -> DbResult<TableMeta>;
    fn table_stats(&self, name: &str) -> Option<TableStats>;
    /// Live columns of `name` with a secondary index, candidates for an
    /// index-scan access path. Default: none.
    fn indexed_columns(&self, name: &str) -> Vec<String> {
        let _ = name;
        Vec::new()
    }
    /// Live columns of `name` backed by a columnar segment store,
    /// candidates for the columnar access path. Default: none.
    fn columnar_columns(&self, name: &str) -> Vec<String> {
        let _ = name;
        Vec::new()
    }
}

#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Memory budget for hash tables and sorts, bytes (Postgres work_mem).
    pub work_mem: usize,
    pub defaults: Defaults,
    /// Sampled distinct-value counts per reservoir key, from the Sinew
    /// analyzer: gives `extract_key(data, k) = const` predicates a real
    /// equality selectivity instead of the opaque-UDF default.
    pub key_ndistinct: HashMap<String, f64>,
    /// Partial join orders kept per round when ordering joins wider than
    /// the 10-relation DP horizon. Width 1 degenerates to the purely
    /// greedy fallback; wider beams trade `O(width · n²)` planning work
    /// for routing around locally-attractive joins that explode later.
    pub join_beam_width: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            work_mem: 4 * 1024 * 1024,
            defaults: Defaults::default(),
            key_ndistinct: HashMap::new(),
            join_beam_width: 8,
        }
    }
}

/// A planned query: physical plan + output column names.
pub struct PlannedQuery {
    pub plan: Plan,
    pub columns: Vec<String>,
    /// Estimated cost of the join-order root this plan was built on
    /// (0 for single-relation and constant queries) — lets tests and
    /// tooling compare orderings without re-deriving costs from EXPLAIN.
    pub cost: f64,
}

pub struct Planner<'a> {
    pub catalog: &'a dyn CatalogView,
    pub funcs: &'a FuncRegistry,
    pub config: PlannerConfig,
}

/// A candidate subplan during join ordering.
#[derive(Clone)]
struct Candidate {
    plan: Plan,
    scope: Scope,
    /// For each scope slot: originating (table, column), if it is a plain
    /// stored column (drives statistics lookups through joins).
    origins: Vec<Option<(String, String)>>,
    cost: f64,
    rows: f64,
    width: f64,
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a dyn CatalogView, funcs: &'a FuncRegistry) -> Planner<'a> {
        Planner { catalog, funcs, config: PlannerConfig::default() }
    }

    pub fn with_config(mut self, config: PlannerConfig) -> Planner<'a> {
        self.config = config;
        self
    }

    pub fn plan_select(&self, sel: &Select) -> DbResult<PlannedQuery> {
        // SELECT without FROM: constant row.
        if sel.from.is_empty() {
            return self.plan_constant_select(sel);
        }

        // ---- 1. Base relations ----
        let mut rels = Vec::new();
        let mut bindings = Vec::new();
        for tref in &sel.from {
            bindings.push(tref.binding().to_string());
            rels.push(tref.clone());
        }
        for j in &sel.joins {
            if j.kind != sinew_sql::JoinKind::Inner {
                return self.plan_left_join(sel); // separate simple path
            }
            bindings.push(j.table.binding().to_string());
            rels.push(j.table.clone());
        }
        {
            let mut seen = std::collections::HashSet::new();
            for b in &bindings {
                if !seen.insert(b.clone()) {
                    return Err(DbError::Schema(format!("duplicate table binding {b}")));
                }
            }
        }
        // Hard cap comes from the u32 relation bitmasks below; within it,
        // `order_joins` picks exhaustive DP or greedy by relation count.
        if rels.len() > 31 {
            return Err(DbError::Eval("too many relations in join (max 31)".into()));
        }

        // ---- 2. Predicate pool ----
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(w) = &sel.filter {
            conjuncts.extend(w.conjuncts().into_iter().cloned());
        }
        for j in &sel.joins {
            conjuncts.extend(j.on.conjuncts().into_iter().cloned());
        }

        // Classify: which relations does each conjunct touch?
        let base_cands: Vec<Candidate> = rels
            .iter()
            .map(|tref| self.base_candidate(&tref.table, tref.binding(), &[], None))
            .collect::<DbResult<_>>()?;
        let relset_of = |e: &Expr| -> DbResult<u32> {
            let mut mask = 0u32;
            for (q, c) in e.columns() {
                let idx = self.find_binding(&bindings, &base_cands, q.as_deref(), &c)?;
                mask |= 1 << idx;
            }
            Ok(mask)
        };

        let mut single: Vec<Vec<Expr>> = vec![Vec::new(); rels.len()];
        let mut multi: Vec<(u32, Expr)> = Vec::new();
        for c in conjuncts {
            let mask = relset_of(&c)?;
            if mask.count_ones() <= 1 {
                let idx = if mask == 0 { 0 } else { mask.trailing_zeros() as usize };
                single[idx].push(c);
            } else {
                multi.push((mask, c));
            }
        }

        // ---- 3. Rebuild base candidates with pushed filters and
        // projection push-down ----
        let needed = self.collect_needed(sel, &bindings, &base_cands)?;
        let base_cands: Vec<Candidate> = rels
            .iter()
            .enumerate()
            .map(|(i, tref)| {
                self.base_candidate(
                    &tref.table,
                    tref.binding(),
                    &single[i],
                    needed.as_ref().map(|n| &n[i]),
                )
            })
            .collect::<DbResult<_>>()?;

        // ---- 4. Join ordering (DP over left-deep trees) ----
        let joined = self.order_joins(base_cands, &multi)?;

        // ---- 5. Aggregation / grouping ----
        self.finish_select(sel, joined)
    }

    /// The live column names each relation must decode, or `None` when a
    /// wildcard makes every column needed.
    fn collect_needed(
        &self,
        sel: &Select,
        bindings: &[String],
        cands: &[Candidate],
    ) -> DbResult<Option<Vec<std::collections::HashSet<String>>>> {
        let mut sets = vec![std::collections::HashSet::new(); bindings.len()];
        let mut exprs: Vec<&Expr> = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => return Ok(None),
                SelectItem::Expr { expr, .. } => exprs.push(expr),
            }
        }
        if let Some(f) = &sel.filter {
            exprs.push(f);
        }
        for j in &sel.joins {
            exprs.push(&j.on);
        }
        exprs.extend(sel.group_by.iter());
        if let Some(h) = &sel.having {
            exprs.push(h);
        }
        for o in &sel.order_by {
            exprs.push(&o.expr);
        }
        for e in exprs {
            for (q, c) in e.columns() {
                // Unresolvable references may be output aliases (ORDER BY
                // dage) — skip them; real errors surface during binding.
                if let Ok(idx) = self.find_binding(bindings, cands, q.as_deref(), &c) {
                    sets[idx].insert(c);
                }
            }
        }
        Ok(Some(sets))
    }

    fn plan_constant_select(&self, sel: &Select) -> DbResult<PlannedQuery> {
        let scope = Scope::default();
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    return Err(DbError::Schema("SELECT * requires FROM".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(bind(expr, &scope, self.funcs)?);
                    names.push(alias.clone().unwrap_or_else(|| item_name(expr)));
                }
            }
        }
        let mut plan = Plan::Values { rows: vec![exprs] };
        if let Some(f) = &sel.filter {
            let pred = bind(f, &scope, self.funcs)?;
            plan = Plan::Filter { input: Box::new(plan), predicate: pred, est_rows: 1.0 };
        }
        Ok(PlannedQuery { plan, columns: names, cost: 0.0 })
    }

    /// Simplified path for LEFT JOIN queries: FROM order is kept, hash
    /// left-outer joins, no reordering (Postgres also constrains outer-join
    /// reordering heavily).
    fn plan_left_join(&self, sel: &Select) -> DbResult<PlannedQuery> {
        if sel.from.len() != 1 {
            return Err(DbError::Eval(
                "LEFT JOIN supports a single FROM table with JOIN chains".into(),
            ));
        }
        let mut cand =
            self.base_candidate(&sel.from[0].table, sel.from[0].binding(), &[], None)?;
        for j in &sel.joins {
            // Push ON conjuncts that reference only the joined table down
            // into its scan (Postgres does the same): LEFT JOIN semantics
            // allow it because such predicates only gate *matching*, and a
            // right row failing them could never match anyway.
            let probe = self.base_candidate(&j.table.table, j.table.binding(), &[], None)?;
            let on_parts: Vec<Expr> = j.on.conjuncts().into_iter().cloned().collect();
            let mut pushed: Vec<Expr> = Vec::new();
            let mut rest: Vec<Expr> = Vec::new();
            for part in on_parts {
                let only_right = part
                    .columns()
                    .iter()
                    .all(|(q, c)| probe.scope.resolve(q.as_deref(), c).is_ok())
                    && !part.columns().is_empty();
                if only_right && !matches!(&part, Expr::Binary { op: BinaryOp::Eq, left, right }
                    if left.columns().len() + right.columns().len() > 1)
                {
                    pushed.push(part);
                } else {
                    rest.push(part);
                }
            }
            let right = self.base_candidate(&j.table.table, j.table.binding(), &pushed, None)?;
            let joined_scope = cand.scope.join(&right.scope);
            // Find a usable equi key in the remaining ON conjuncts.
            let mut key: Option<(PhysExpr, PhysExpr)> = None;
            let mut residual = Vec::new();
            for part in rest {
                if key.is_none() {
                    if let Expr::Binary { op: BinaryOp::Eq, left, right: r } = &part {
                        let lb = bind(left, &cand.scope, self.funcs);
                        let rb = bind(r, &right.scope, self.funcs);
                        if let (Ok(lk), Ok(rk)) = (lb, rb) {
                            key = Some((lk, rk));
                            continue;
                        }
                        let lb2 = bind(r, &cand.scope, self.funcs);
                        let rb2 = bind(left, &right.scope, self.funcs);
                        if let (Ok(lk), Ok(rk)) = (lb2, rb2) {
                            key = Some((lk, rk));
                            continue;
                        }
                    }
                }
                residual.push(bind(&part, &joined_scope, self.funcs)?);
            }
            let rows = cand.rows.max(right.rows);
            let plan = match key {
                Some((lk, rk)) => Plan::HashJoin {
                    left: Box::new(cand.plan),
                    right: Box::new(right.plan),
                    left_key: lk,
                    right_key: rk,
                    residual: conjoin_phys(residual),
                    left_outer: true,
                    est_rows: rows,
                },
                None => Plan::NestedLoop {
                    left: Box::new(cand.plan),
                    right: Box::new(right.plan),
                    predicate: conjoin_phys(residual),
                    left_outer: true,
                    est_rows: rows,
                },
            };
            let mut origins = cand.origins;
            origins.extend(right.origins);
            cand = Candidate {
                plan,
                scope: joined_scope,
                origins,
                cost: cand.cost + right.cost + rows * CPU_TUPLE_COST,
                rows,
                width: cand.width + right.width,
            };
        }
        if let Some(w) = &sel.filter {
            let pred = bind(w, &cand.scope, self.funcs)?;
            let rows = (cand.rows * 0.5).max(1.0);
            cand = Candidate {
                plan: Plan::Filter { input: Box::new(cand.plan), predicate: pred, est_rows: rows },
                rows,
                ..cand
            };
        }
        self.finish_select(sel, cand)
    }

    fn find_binding(
        &self,
        bindings: &[String],
        cands: &[Candidate],
        qualifier: Option<&str>,
        column: &str,
    ) -> DbResult<usize> {
        if let Some(q) = qualifier {
            return bindings
                .iter()
                .position(|b| b == q)
                .ok_or_else(|| DbError::NotFound(format!("table {q}")));
        }
        let mut found = None;
        for (i, c) in cands.iter().enumerate() {
            if c.scope.cols.iter().any(|(_, n)| n == column) {
                if found.is_some() {
                    return Err(DbError::Schema(format!("column {column} is ambiguous")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| DbError::NotFound(format!("column {column}")))
    }

    /// Build a scan candidate for one base relation with pushed filters.
    /// `needed` restricts which live columns the scan decodes (projection
    /// push-down); `None` decodes everything.
    fn base_candidate(
        &self,
        table: &str,
        binding: &str,
        filters: &[Expr],
        needed: Option<&std::collections::HashSet<String>>,
    ) -> DbResult<Candidate> {
        let meta = self.catalog.table_meta(table)?;
        let stats = self.catalog.table_stats(table);
        let mut scope = Scope::default();
        let mut origins = Vec::new();
        let mut col_names = Vec::new();
        for (_, col) in meta.schema.live_columns() {
            scope.push(Some(binding), &col.name);
            origins.push(Some((table.to_string(), col.name.clone())));
            col_names.push(Some(col.name.clone()));
        }
        scope.push(Some(binding), "_rowid");
        origins.push(None);
        col_names.push(None);

        let bound: Vec<PhysExpr> = filters
            .iter()
            .map(|f| bind(f, &scope, self.funcs))
            .collect::<DbResult<_>>()?;
        let sel_ctx = SelContext {
            stats: stats.as_ref(),
            col_names: col_names.clone(),
            input_rows: meta.n_rows,
            defaults: self.config.defaults,
            key_ndistinct: Some(&self.config.key_ndistinct),
        };
        let filter = conjoin_phys(bound.clone());
        // estimate over the whole conjunction at once: same-column range
        // pairs must not multiply as if independent
        let sel = filter.as_ref().map(|p| sel_ctx.selectivity(p)).unwrap_or(1.0);
        let rows = (meta.n_rows * sel).max(1.0);
        let cost = meta.n_pages * SEQ_PAGE_COST
            + meta.n_rows * CPU_TUPLE_COST
            + meta.n_rows * bound.len() as f64 * CPU_OPERATOR_COST;
        let width: f64 = stats
            .as_ref()
            .map(|s| s.columns.values().map(|c| c.avg_width).sum::<f64>())
            .filter(|w| *w > 0.0)
            .unwrap_or(100.0);
        let needed_vec = needed.map(|set| {
            let mut v: Vec<String> = set.iter().cloned().collect();
            v.sort();
            v
        });

        // ---- access-path selection: seq scan vs. secondary index ----
        // A sargable conjunct (col <op> literal on an indexed column)
        // contributes key bounds; the winning index's cost is a B-tree
        // descent plus one random heap fetch per matching row. The full
        // predicate stays on the plan as a residual filter, so the index
        // path returns exactly the seq scan's rows.
        let mut plan_cost = cost;
        let mut plan = Plan::SeqScan {
            table: table.to_string(),
            binding: binding.to_string(),
            filter: filter.clone(),
            needed: needed_vec.clone(),
            est_rows: rows,
        };
        // Sargable bounds per stored column, shared by the index-scan,
        // index-only, and columnar access paths below. Alongside the
        // intersected bound we track whether every contributing clause's
        // literals sit in one exactness class (`uniform`): a clause whose
        // literal is class-less (NaN) or of a different class than the
        // others can reject rows the merged bound range admits — e.g.
        // `a > 'x' AND a > 5`: tighten keeps the text bound, but the
        // dropped numeric clause fails every text row — so such columns
        // must never be marked exact.
        #[derive(Default)]
        struct ColSarg {
            b: IdxBound,
            clauses: Vec<PhysExpr>,
            class: Option<u8>,
            uniform: bool,
        }
        let mut per_col: HashMap<usize, ColSarg> = HashMap::new();
        if !force_scan() {
            for f in &bound {
                let Some((slot, lo, lo_inc, hi, hi_inc)) = sargable(f) else { continue };
                if !matches!(col_names.get(slot), Some(Some(_))) {
                    continue;
                }
                let cls = match (exactness_class(lo.as_ref()), exactness_class(hi.as_ref())) {
                    (Some(a), Some(c)) if a == c => Some(a),
                    (Some(a), None) if hi.is_none() => Some(a),
                    (None, Some(c)) if lo.is_none() => Some(c),
                    _ => None,
                };
                let e = per_col.entry(slot).or_default();
                if e.clauses.is_empty() {
                    e.class = cls;
                    e.uniform = true;
                }
                e.uniform = e.uniform && cls.is_some() && cls == e.class;
                e.b.tighten(lo, lo_inc, hi, hi_inc);
                e.clauses.push(f.clone());
            }
        }
        // each column's match fraction is the joint selectivity of its own
        // sargable conjuncts (range pairs included)
        let col_bounds: Vec<(usize, IdxBound, f64, usize, bool)> = per_col
            .into_iter()
            .map(|(slot, cs)| {
                let n_clauses = cs.clauses.len();
                let s =
                    conjoin_phys(cs.clauses).map(|p| sel_ctx.selectivity(&p)).unwrap_or(1.0);
                (slot, cs.b, s, n_clauses, cs.uniform)
            })
            .collect();
        // Exact when a column's sargable clauses are the entire predicate,
        // every clause literal shares one type class, AND both merged
        // bounds land in that class: then the key range equals the SQL
        // match set and the residual filter can reject nothing, so a
        // LIMIT may cap the probe.
        let exact_for = |b: &IdxBound, n_clauses: usize, uniform: bool| {
            uniform
                && n_clauses == bound.len()
                && match (exactness_class(b.lo.as_ref()), exactness_class(b.hi.as_ref())) {
                    (Some(a), Some(c)) => a == c,
                    _ => false,
                }
        };
        let best_for = |eligible: &dyn Fn(&str) -> bool| {
            col_bounds
                .iter()
                .filter(|(slot, ..)| matches!(&col_names[*slot], Some(n) if eligible(n)))
                .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        };

        let indexed =
            if force_scan() { Vec::new() } else { self.catalog.indexed_columns(table) };
        if let Some((slot, b, bound_sel, n_clauses, uniform)) =
            best_for(&|n| indexed.iter().any(|c| c == n))
        {
            let matched = (meta.n_rows * bound_sel).max(1.0);
            let index_cost = meta.n_rows.max(2.0).log2() * CPU_OPERATOR_COST
                + matched.min(meta.n_pages.max(1.0)) * RANDOM_PAGE_COST
                + matched * CPU_TUPLE_COST
                + matched * bound.len() as f64 * CPU_OPERATOR_COST;
            if index_cost < plan_cost {
                let column = col_names[*slot].clone().unwrap();
                plan = Plan::IndexScan {
                    table: table.to_string(),
                    binding: binding.to_string(),
                    column,
                    lo: b.lo.clone(),
                    lo_inc: b.lo_inc,
                    hi: b.hi.clone(),
                    hi_inc: b.hi_inc,
                    filter: filter.clone(),
                    needed: needed_vec.clone(),
                    est_rows: rows,
                    exact_bounds: exact_for(b, *n_clauses, *uniform),
                };
                plan_cost = index_cost;
            }
        }

        let columnar_on = !force_scan() && columnar_enabled();

        // ---- covering index-only scan: the B-tree's (key, rowid) entries
        // answer the query without any heap page fetch. Requires a sargable
        // bound on the key: index entries omit NULL keys, and the bound
        // rejects those same rows on the heap path, keeping both paths
        // row-identical.
        if columnar_on {
            if let Some(nv) = &needed_vec {
                for (slot, b, bound_sel, n_clauses, uniform) in &col_bounds {
                    let Some(Some(name)) = col_names.get(*slot) else { continue };
                    if !indexed.iter().any(|c| c == name)
                        || !nv.iter().all(|n| n == name || n == "_rowid")
                        || (b.lo.is_none() && b.hi.is_none())
                    {
                        continue;
                    }
                    let matched = (meta.n_rows * bound_sel).max(1.0);
                    // no RANDOM_PAGE_COST term: the probe never leaves the
                    // B-tree
                    let io_cost = meta.n_rows.max(2.0).log2() * CPU_OPERATOR_COST
                        + matched * CPU_TUPLE_COST
                        + matched * bound.len() as f64 * CPU_OPERATOR_COST;
                    if io_cost < plan_cost {
                        plan = Plan::IndexOnlyScan {
                            table: table.to_string(),
                            binding: binding.to_string(),
                            column: name.clone(),
                            lo: b.lo.clone(),
                            lo_inc: b.lo_inc,
                            hi: b.hi.clone(),
                            hi_inc: b.hi_inc,
                            filter: filter.clone(),
                            needed: needed_vec.clone(),
                            est_rows: rows,
                            exact_bounds: exact_for(b, *n_clauses, *uniform),
                        };
                        plan_cost = io_cost;
                    }
                }
            }
        }

        // ---- columnar scan: every referenced column has a segment store,
        // so the scan decodes only those columns (a fraction of the heap's
        // page footprint) and pushes the best sargable bound into the
        // vectorized kernels, with zone maps skipping whole segments.
        if columnar_on {
            if let Some(nv) = &needed_vec {
                let stored = self.catalog.columnar_columns(table);
                if !stored.is_empty()
                    && nv.iter().all(|n| n == "_rowid" || stored.iter().any(|c| c == n))
                {
                    let n_live = meta.schema.live_columns().count().max(1) as f64;
                    let frac = (nv.len() as f64 / n_live).clamp(1.0 / n_live, 1.0);
                    let best = best_for(&|n| stored.iter().any(|c| c == n));
                    // zone-map pruning discounts the page term by the bound
                    // selectivity, floored so a scan never looks free
                    let prune = best.map(|(_, _, s, _, _)| s.max(0.1)).unwrap_or(1.0);
                    let col_cost = meta.n_pages * SEQ_PAGE_COST * frac * 0.25 * prune
                        + meta.n_rows * CPU_TUPLE_COST * 0.25
                        + rows * CPU_TUPLE_COST
                        + meta.n_rows * bound.len() as f64 * CPU_OPERATOR_COST * 0.25;
                    if col_cost < plan_cost {
                        let exact_bounds = match best {
                            Some((_, b, _, n_clauses, uniform)) => {
                                exact_for(b, *n_clauses, *uniform)
                            }
                            None => bound.is_empty(),
                        };
                        // The predicate is fully covered by same-class
                        // bound literals even when the merged endpoints
                        // couldn't prove exactness (one-sided ranges):
                        // segments whose zone map pins the stored values
                        // to that class may skip the residual per segment.
                        let bounds_cover_filter = match best {
                            Some((_, _, _, n_clauses, uniform)) => {
                                *uniform && *n_clauses == bound.len()
                            }
                            None => bound.is_empty(),
                        };
                        let (column, lo, lo_inc, hi, hi_inc) = match best {
                            Some((slot, b, _, _, _)) => (
                                col_names[*slot].clone(),
                                b.lo.clone(),
                                b.lo_inc,
                                b.hi.clone(),
                                b.hi_inc,
                            ),
                            None => (None, None, true, None, true),
                        };
                        plan = Plan::ColumnarScan {
                            table: table.to_string(),
                            binding: binding.to_string(),
                            column,
                            lo,
                            lo_inc,
                            hi,
                            hi_inc,
                            filter,
                            needed: needed_vec,
                            est_rows: rows,
                            exact_bounds,
                            bounds_cover_filter,
                        };
                        plan_cost = col_cost;
                    }
                }
            }
        }
        Ok(Candidate { plan, scope, origins, cost: plan_cost, rows, width })
    }

    fn ndistinct_of(&self, cand: &Candidate, e: &PhysExpr) -> f64 {
        if let PhysExpr::Column(i) = e {
            if let Some(Some((table, col))) = cand.origins.get(*i) {
                if let Some(stats) = self.catalog.table_stats(table) {
                    if let Some(cs) = stats.columns.get(col) {
                        return cs.n_distinct;
                    }
                }
            }
        }
        self.config.defaults.opaque_ndistinct
    }

    fn width_of(&self, cand: &Candidate, e: &PhysExpr) -> f64 {
        if let PhysExpr::Column(i) = e {
            if let Some(Some((table, col))) = cand.origins.get(*i) {
                if let Some(stats) = self.catalog.table_stats(table) {
                    if let Some(cs) = stats.columns.get(col) {
                        return cs.avg_width.max(1.0);
                    }
                }
            }
        }
        32.0
    }

    /// Join ordering over left-deep trees: exhaustive dynamic programming
    /// up to 10 relations, bounded beam search beyond (the DP is
    /// O(2^n · n), and pre-PR 9 anything wider simply errored out);
    /// `join_beam_width: 1` selects the purely greedy fallback.
    fn order_joins(
        &self,
        base: Vec<Candidate>,
        multi: &[(u32, Expr)],
    ) -> DbResult<Candidate> {
        let n = base.len();
        if n == 1 {
            return Ok(base.into_iter().next().unwrap());
        }
        if n > 10 {
            return if self.config.join_beam_width <= 1 {
                self.order_joins_greedy(base, multi)
            } else {
                self.order_joins_beam(base, multi)
            };
        }
        let full: u32 = (1 << n) - 1;
        let mut best: HashMap<u32, Candidate> = HashMap::new();
        for (i, c) in base.iter().enumerate() {
            best.insert(1 << i, c.clone());
        }
        // masks in increasing popcount order
        let mut masks: Vec<u32> = (1..=full).filter(|m| m.count_ones() >= 1).collect();
        masks.sort_by_key(|m| m.count_ones());
        for mask in masks {
            if mask.count_ones() < 1 || !best.contains_key(&mask) {
                continue;
            }
            let left = best.get(&mask).unwrap().clone();
            for (j, right) in base.iter().enumerate() {
                let bit = 1 << j;
                if mask & bit != 0 {
                    continue;
                }
                let new_mask = mask | bit;
                // conjuncts that become evaluable exactly now
                let now: Vec<&Expr> = multi
                    .iter()
                    .filter(|(m, _)| m & new_mask == *m && m & bit != 0)
                    .map(|(_, e)| e)
                    .collect();
                // Prefer connected joins; allow cross join only if no
                // conjunct connects this pair (cost will punish it).
                let cand = self.make_join(&left, right, &now)?;
                match best.get(&new_mask) {
                    Some(prev) if prev.cost <= cand.cost => {}
                    _ => {
                        best.insert(new_mask, cand);
                    }
                }
            }
        }
        best.remove(&full)
            .ok_or_else(|| DbError::Eval("join ordering failed to cover all relations".into()))
    }

    /// Greedy left-deep ordering for wide joins (> 10 relations): start
    /// from the smallest base relation, then repeatedly extend with the
    /// cheapest next join, preferring *connected* extensions (ones that
    /// make at least one join conjunct evaluable) over cross joins, and
    /// the lowest relation index on cost ties. O(n²) `make_join` calls —
    /// no optimality guarantee, but an 11-to-31-table chain now plans
    /// instead of erroring.
    fn order_joins_greedy(
        &self,
        base: Vec<Candidate>,
        multi: &[(u32, Expr)],
    ) -> DbResult<Candidate> {
        let n = base.len();
        let start = (0..n)
            .min_by(|&a, &b| {
                base[a]
                    .rows
                    .total_cmp(&base[b].rows)
                    .then(base[a].cost.total_cmp(&base[b].cost))
            })
            .expect("at least two relations");
        let mut mask: u32 = 1 << start;
        let full: u32 = (1 << n) - 1;
        let mut current = base[start].clone();
        while mask != full {
            let mut pick: Option<(usize, Candidate, bool)> = None;
            for (j, right) in base.iter().enumerate() {
                let bit = 1u32 << j;
                if mask & bit != 0 {
                    continue;
                }
                let new_mask = mask | bit;
                let now: Vec<&Expr> = multi
                    .iter()
                    .filter(|(m, _)| m & new_mask == *m && m & bit != 0)
                    .map(|(_, e)| e)
                    .collect();
                let connected = !now.is_empty();
                let cand = self.make_join(&current, right, &now)?;
                let better = match &pick {
                    None => true,
                    Some((_, prev, prev_connected)) => {
                        (connected && !prev_connected)
                            || (connected == *prev_connected && cand.cost < prev.cost)
                    }
                };
                if better {
                    pick = Some((j, cand, connected));
                }
            }
            let (j, cand, _) = pick.expect("some relation is still unjoined");
            mask |= 1 << j;
            current = cand;
        }
        Ok(current)
    }

    /// Bounded beam search over left-deep trees for wide joins (> 10
    /// relations): the greedy fallback generalized to carry the
    /// `join_beam_width` cheapest partial orders per round instead of one,
    /// so a join that looks cheap now but explodes the intermediate later
    /// can be routed around. Extensions that make a join conjunct
    /// evaluable are preferred per partial order (cross joins only when
    /// nothing connects), matching the greedy policy. O(width · n²)
    /// `make_join` calls.
    fn order_joins_beam(
        &self,
        base: Vec<Candidate>,
        multi: &[(u32, Expr)],
    ) -> DbResult<Candidate> {
        let n = base.len();
        let width = self.config.join_beam_width;
        let full: u32 = (1 << n) - 1;
        // Seed with every relation as its own partial order; the first
        // truncation keeps the `width` smallest starts (same criterion as
        // the greedy start, kept plural).
        let mut beam: Vec<(u32, Candidate)> =
            base.iter().enumerate().map(|(i, c)| (1 << i, c.clone())).collect();
        beam.sort_by(|(_, a), (_, b)| {
            a.rows.total_cmp(&b.rows).then(a.cost.total_cmp(&b.cost))
        });
        beam.truncate(width);
        for _round in 1..n {
            let mut next: Vec<(u32, Candidate)> = Vec::new();
            for (mask, left) in &beam {
                let mut connected_exts: Vec<(u32, Candidate)> = Vec::new();
                let mut cross_exts: Vec<(u32, Candidate)> = Vec::new();
                for (j, right) in base.iter().enumerate() {
                    let bit = 1u32 << j;
                    if mask & bit != 0 {
                        continue;
                    }
                    let new_mask = mask | bit;
                    let now: Vec<&Expr> = multi
                        .iter()
                        .filter(|(m, _)| m & new_mask == *m && m & bit != 0)
                        .map(|(_, e)| e)
                        .collect();
                    let cand = self.make_join(left, right, &now)?;
                    if now.is_empty() {
                        cross_exts.push((new_mask, cand));
                    } else {
                        connected_exts.push((new_mask, cand));
                    }
                }
                next.extend(if connected_exts.is_empty() {
                    cross_exts
                } else {
                    connected_exts
                });
            }
            // Same cover, keep the cheaper order; then keep the `width`
            // cheapest covers overall.
            next.sort_by(|(ma, a), (mb, b)| {
                ma.cmp(mb).then(a.cost.total_cmp(&b.cost))
            });
            next.dedup_by_key(|(m, _)| *m);
            next.sort_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost));
            next.truncate(width);
            beam = next;
        }
        beam.into_iter()
            .find(|(m, _)| *m == full)
            .map(|(_, c)| c)
            .ok_or_else(|| DbError::Eval("join ordering failed to cover all relations".into()))
    }

    fn make_join(
        &self,
        left: &Candidate,
        right: &Candidate,
        conjuncts: &[&Expr],
    ) -> DbResult<Candidate> {
        let joined_scope = left.scope.join(&right.scope);
        let mut key: Option<(PhysExpr, PhysExpr)> = None;
        let mut residual = Vec::new();
        for part in conjuncts {
            if key.is_none() {
                if let Expr::Binary { op: BinaryOp::Eq, left: l, right: r } = part {
                    if let (Ok(lk), Ok(rk)) =
                        (bind(l, &left.scope, self.funcs), bind(r, &right.scope, self.funcs))
                    {
                        key = Some((lk, rk));
                        continue;
                    }
                    if let (Ok(lk), Ok(rk)) =
                        (bind(r, &left.scope, self.funcs), bind(l, &right.scope, self.funcs))
                    {
                        key = Some((lk, rk));
                        continue;
                    }
                }
            }
            residual.push(bind(part, &joined_scope, self.funcs)?);
        }

        let mut origins = left.origins.clone();
        origins.extend(right.origins.iter().cloned());
        let width = left.width + right.width;

        let cand = match key {
            Some((lk, rk)) => {
                let nd_l = self.ndistinct_of(left, &lk);
                let nd_r = self.ndistinct_of(right, &rk);
                let join_sel = 1.0 / nd_l.max(nd_r).max(1.0);
                let mut rows = (left.rows * right.rows * join_sel).max(1.0);
                // residual predicates: generic 0.5 each
                rows = (rows * 0.5f64.powi(residual.len() as i32)).max(1.0);

                // hash join: build on the smaller input
                let (build, probe) = if right.rows <= left.rows {
                    (right, left)
                } else {
                    (left, right)
                };
                let build_bytes = build.rows * (self.width_of(build, &rk).max(8.0) + HASH_OVERHEAD);
                let batches = (build_bytes / self.config.work_mem as f64).max(1.0).ceil();
                let hash_cost = left.cost
                    + right.cost
                    + build.rows * (CPU_OPERATOR_COST * 2.0 + CPU_TUPLE_COST)
                    + probe.rows * CPU_OPERATOR_COST * 2.0
                    + rows * CPU_TUPLE_COST
                    + (batches - 1.0) * (build.rows + probe.rows) * CPU_TUPLE_COST * 2.0;

                // merge join: sort both inputs then merge
                let merge_cost = left.cost
                    + right.cost
                    + sort_cost(left.rows)
                    + sort_cost(right.rows)
                    + (left.rows + right.rows) * CPU_OPERATOR_COST * 2.0
                    + rows * CPU_TUPLE_COST;

                if hash_cost <= merge_cost {
                    Candidate {
                        plan: Plan::HashJoin {
                            left: Box::new(left.plan.clone()),
                            right: Box::new(right.plan.clone()),
                            left_key: lk,
                            right_key: rk,
                            residual: conjoin_phys(residual),
                            left_outer: false,
                            est_rows: rows,
                        },
                        scope: joined_scope,
                        origins,
                        cost: hash_cost,
                        rows,
                        width,
                    }
                } else {
                    let lsorted = Plan::Sort {
                        input: Box::new(left.plan.clone()),
                        keys: vec![SortKey { expr: lk.clone(), desc: false }],
                        est_rows: left.rows,
                    };
                    let rsorted = Plan::Sort {
                        input: Box::new(right.plan.clone()),
                        keys: vec![SortKey { expr: rk.clone(), desc: false }],
                        est_rows: right.rows,
                    };
                    Candidate {
                        plan: Plan::MergeJoin {
                            left: Box::new(lsorted),
                            right: Box::new(rsorted),
                            left_key: lk,
                            right_key: rk,
                            residual: conjoin_phys(residual),
                            est_rows: rows,
                        },
                        scope: joined_scope,
                        origins,
                        cost: merge_cost,
                        rows,
                        width,
                    }
                }
            }
            None => {
                // cross join / non-equi predicate: nested loop
                let sel = 0.5f64.powi(residual.len().max(1) as i32);
                let rows = (left.rows * right.rows * sel).max(1.0);
                let cost = left.cost
                    + right.cost
                    + left.rows * right.rows * (CPU_OPERATOR_COST + CPU_TUPLE_COST);
                Candidate {
                    plan: Plan::NestedLoop {
                        left: Box::new(left.plan.clone()),
                        right: Box::new(right.plan.clone()),
                        predicate: conjoin_phys(residual),
                        left_outer: false,
                        est_rows: rows,
                    },
                    scope: joined_scope,
                    origins,
                    cost,
                    rows,
                    width,
                }
            }
        };
        Ok(cand)
    }

    /// Everything after the join tree: aggregation, HAVING, projection,
    /// DISTINCT, ORDER BY, LIMIT.
    fn finish_select(&self, sel: &Select, mut cand: Candidate) -> DbResult<PlannedQuery> {
        let cost = cand.cost;
        // ---- aggregate extraction ----
        let mut agg_calls: Vec<(AggKind, bool, Option<Expr>)> = Vec::new();
        let mut items: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, (q, name)) in cand.scope.cols.iter().enumerate() {
                        if name == "_rowid" {
                            continue;
                        }
                        let _ = i;
                        items.push((
                            Expr::Column { table: q.clone(), column: name.clone() },
                            Some(name.clone()),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    items.push((expr.clone(), alias.clone()));
                }
            }
        }
        let mut rewritten_items: Vec<(Expr, Option<String>)> = items
            .iter()
            .map(|(e, a)| (extract_aggs(e, &mut agg_calls), a.clone()))
            .collect();
        let rewritten_having = sel.having.as_ref().map(|h| extract_aggs(h, &mut agg_calls));
        let mut rewritten_order: Vec<Expr> =
            sel.order_by.iter().map(|o| extract_aggs(&o.expr, &mut agg_calls)).collect();

        let has_group = !sel.group_by.is_empty() || !agg_calls.is_empty();
        if has_group {
            // Bind group exprs against the join scope.
            let group_phys: Vec<PhysExpr> = sel
                .group_by
                .iter()
                .map(|g| bind(g, &cand.scope, self.funcs))
                .collect::<DbResult<_>>()?;
            let aggs: Vec<AggSpec> = agg_calls
                .iter()
                .map(|(kind, distinct, arg)| {
                    Ok(AggSpec {
                        kind: *kind,
                        distinct: *distinct,
                        arg: arg
                            .as_ref()
                            .map(|a| bind(a, &cand.scope, self.funcs))
                            .transpose()?,
                    })
                })
                .collect::<DbResult<_>>()?;

            // Estimated groups: product of per-key distinct counts.
            let mut est_groups = 1.0f64;
            for g in &group_phys {
                est_groups *= self.ndistinct_of(&cand, g);
            }
            est_groups = est_groups.min(cand.rows).max(1.0);
            let group_width: f64 =
                group_phys.iter().map(|g| self.width_of(&cand, g)).sum::<f64>() + 16.0;

            // Post-aggregation scope: group columns then aggregate outputs.
            let mut post_scope = Scope::default();
            let mut post_origins = Vec::new();
            for (i, g) in sel.group_by.iter().enumerate() {
                match g {
                    Expr::Column { table, column } => {
                        post_scope.push(table.as_deref(), column);
                    }
                    other => post_scope.push(None, &format!("__grp{i}__{other}")),
                }
                if let PhysExpr::Column(ci) = &group_phys[i] {
                    post_origins.push(cand.origins.get(*ci).cloned().flatten());
                } else {
                    post_origins.push(None);
                }
            }
            for i in 0..aggs.len() {
                post_scope.push(None, &format!("__agg{i}"));
                post_origins.push(None);
            }
            // Replace non-column group-by expressions inside items, HAVING,
            // and ORDER BY with references to the aggregate output.
            for (i, g) in sel.group_by.iter().enumerate() {
                if matches!(g, Expr::Column { .. }) {
                    continue;
                }
                let name = format!("__grp{i}__{g}");
                for (e, _) in rewritten_items.iter_mut() {
                    replace_subtree(e, g, &name);
                }
                for e in rewritten_order.iter_mut() {
                    replace_subtree(e, g, &name);
                }
            }
            let mut having_bound = None;
            if let Some(mut h) = rewritten_having {
                for (i, g) in sel.group_by.iter().enumerate() {
                    if !matches!(g, Expr::Column { .. }) {
                        replace_subtree(&mut h, g, &format!("__grp{i}__{g}"));
                    }
                }
                having_bound = Some(bind(&h, &post_scope, self.funcs)?);
            }

            // Operator choice: the Table 2 decision point.
            let hash_bytes = est_groups * (group_width + HASH_OVERHEAD);
            let use_hash = group_phys.is_empty() || hash_bytes <= self.config.work_mem as f64;
            let input_rows = cand.rows;
            let plan = if use_hash {
                Plan::HashAggregate {
                    input: Box::new(cand.plan),
                    groups: group_phys,
                    aggs,
                    est_rows: est_groups,
                }
            } else {
                let sort = Plan::Sort {
                    input: Box::new(cand.plan),
                    keys: group_phys
                        .iter()
                        .map(|g| SortKey { expr: g.clone(), desc: false })
                        .collect(),
                    est_rows: input_rows,
                };
                Plan::GroupAggregate {
                    input: Box::new(sort),
                    groups: group_phys,
                    aggs,
                    est_rows: est_groups,
                }
            };
            let cost = cand.cost
                + if use_hash {
                    input_rows * CPU_OPERATOR_COST * 2.0
                } else {
                    sort_cost(input_rows) + input_rows * CPU_OPERATOR_COST
                };
            cand = Candidate {
                plan,
                scope: post_scope,
                origins: post_origins,
                cost,
                rows: est_groups,
                width: group_width + aggs_width(agg_calls.len()),
            };
            if let Some(h) = having_bound {
                let rows = (cand.rows * 0.5).max(1.0);
                cand = Candidate {
                    plan: Plan::Filter {
                        input: Box::new(cand.plan),
                        predicate: h,
                        est_rows: rows,
                    },
                    rows,
                    ..cand
                };
            }
        }

        // ---- projection ----
        let mut out_exprs = Vec::new();
        let mut out_names = Vec::new();
        for (e, alias) in &rewritten_items {
            out_exprs.push(bind(e, &cand.scope, self.funcs)?);
            out_names.push(alias.clone().unwrap_or_else(|| item_name(e)));
        }
        // Distinct estimate for the projected output (pre-projection stats).
        let mut est_distinct = 1.0f64;
        let mut out_width = 0.0;
        for e in &out_exprs {
            est_distinct *= self.ndistinct_of(&cand, e);
            out_width += self.width_of(&cand, e);
        }
        est_distinct = est_distinct.min(cand.rows).max(1.0);

        let mut out_scope = Scope::default();
        for n in &out_names {
            out_scope.push(None, n);
        }

        // ---- ORDER BY keys (may reference hidden columns) ----
        let mut sort_keys_out: Vec<SortKey> = Vec::new();
        let mut hidden = 0usize;
        for (o, oexpr) in sel.order_by.iter().zip(rewritten_order.drain(..)) {
            let desc = o.order == SortOrder::Desc;
            match bind(&oexpr, &out_scope, self.funcs) {
                Ok(e) => sort_keys_out.push(SortKey { expr: e, desc }),
                Err(_) => {
                    // Hidden sort column computed before projection.
                    let e = bind(&oexpr, &cand.scope, self.funcs)?;
                    out_exprs.push(e);
                    let name = format!("__sort{hidden}");
                    out_scope.push(None, &name);
                    hidden += 1;
                    sort_keys_out.push(SortKey {
                        expr: PhysExpr::Column(out_exprs.len() - 1),
                        desc,
                    });
                }
            }
        }

        let project_rows = cand.rows;
        let mut plan = Plan::Project {
            input: Box::new(cand.plan),
            exprs: out_exprs,
            est_rows: project_rows,
        };

        // ---- DISTINCT ----
        if sel.distinct {
            let bytes = est_distinct * (out_width.max(8.0) + HASH_OVERHEAD);
            if bytes <= self.config.work_mem as f64 {
                plan = Plan::HashDistinct { input: Box::new(plan), est_rows: est_distinct };
            } else {
                let n_out = out_names.len() + hidden;
                let keys = (0..n_out)
                    .map(|i| SortKey { expr: PhysExpr::Column(i), desc: false })
                    .collect();
                plan = Plan::Sort { input: Box::new(plan), keys, est_rows: project_rows };
                plan = Plan::Unique { input: Box::new(plan), est_rows: est_distinct };
            }
        }

        // ---- ORDER BY ----
        if !sort_keys_out.is_empty() {
            let rows = plan.est_rows();
            plan = Plan::Sort { input: Box::new(plan), keys: sort_keys_out, est_rows: rows };
        }

        // strip hidden sort columns
        if hidden > 0 {
            let rows = plan.est_rows();
            let exprs = (0..out_names.len()).map(PhysExpr::Column).collect();
            plan = Plan::Project { input: Box::new(plan), exprs, est_rows: rows };
        }

        // ---- LIMIT ----
        if let Some(n) = sel.limit {
            plan = Plan::Limit { input: Box::new(plan), n };
        }

        memoize_scan_pipelines(&mut plan, self.funcs);

        Ok(PlannedQuery { plan, columns: out_names, cost })
    }

    /// Plan the scan side of UPDATE/DELETE: scan with bound filter; the
    /// `_rowid` is the last scan output column.
    pub fn plan_modify_scan(
        &self,
        table: &str,
        filter: Option<&Expr>,
    ) -> DbResult<(Plan, Scope)> {
        let filters: Vec<Expr> = filter.map(|f| vec![f.clone()]).unwrap_or_default();
        let cand = self.base_candidate(table, table, &filters, None)?;
        let mut plan = cand.plan;
        memoize_scan_pipelines(&mut plan, self.funcs);
        Ok((plan, cand.scope))
    }
}

// ---- Scan-pipeline common-subexpression elimination ----
//
// After the plan is assembled, repeated *pure* function-call subtrees inside
// a scan pipeline (scan filter, post-scan filter, projection list) are
// wrapped in [`PhysExpr::Memo`] nodes so each distinct subtree evaluates at
// most once per row. This is what makes the rewriter's fused extraction
// profitable: the k outputs `array_get(extract_keys(data, ...), i)` share
// one `extract_keys` evaluation — one document decode per row instead of k.
//
// Slot numbers are assigned per pipeline in first-encounter order; the
// executor resets its `EvalCtx` between rows. Calls not declared pure in
// the [`FuncRegistry`] are never memoized.

fn memoize_scan_pipelines(plan: &mut Plan, funcs: &FuncRegistry) {
    if let Some(mut exprs) = pipeline_exprs_mut(plan) {
        apply_cse(&mut exprs, funcs);
        return; // the pipeline bottoms out at its SeqScan
    }
    match plan {
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::HashAggregate { input, .. }
        | Plan::GroupAggregate { input, .. }
        | Plan::Unique { input, .. }
        | Plan::HashDistinct { input, .. }
        | Plan::Limit { input, .. } => memoize_scan_pipelines(input, funcs),
        Plan::HashJoin { left, right, .. }
        | Plan::MergeJoin { left, right, .. }
        | Plan::NestedLoop { left, right, .. } => {
            memoize_scan_pipelines(left, funcs);
            memoize_scan_pipelines(right, funcs);
        }
        Plan::SeqScan { .. }
        | Plan::IndexScan { .. }
        | Plan::ColumnarScan { .. }
        | Plan::IndexOnlyScan { .. }
        | Plan::Values { .. } => {}
    }
}

/// Mutable references to every expression of the scan pipeline rooted at
/// `plan`, or `None` if `plan` does not root one. The recognized shapes
/// mirror the executor's parallel-pipeline detection: `SeqScan`,
/// `Filter(SeqScan)`, `Project(SeqScan)`, `Project(Filter(SeqScan))`.
fn pipeline_exprs_mut(plan: &mut Plan) -> Option<Vec<&mut PhysExpr>> {
    match plan {
        Plan::SeqScan { filter, .. }
        | Plan::IndexScan { filter, .. }
        | Plan::ColumnarScan { filter, .. }
        | Plan::IndexOnlyScan { filter, .. } => Some(filter.iter_mut().collect()),
        Plan::Filter { input, predicate, .. } => match input.as_mut() {
            Plan::SeqScan { filter, .. }
            | Plan::IndexScan { filter, .. }
            | Plan::ColumnarScan { filter, .. }
            | Plan::IndexOnlyScan { filter, .. } => {
                let mut v: Vec<&mut PhysExpr> = filter.iter_mut().collect();
                v.push(predicate);
                Some(v)
            }
            _ => None,
        },
        Plan::Project { input, exprs, .. } => {
            let mut v: Vec<&mut PhysExpr> = Vec::new();
            match input.as_mut() {
                Plan::SeqScan { filter, .. }
                | Plan::IndexScan { filter, .. }
                | Plan::ColumnarScan { filter, .. }
                | Plan::IndexOnlyScan { filter, .. } => v.extend(filter.iter_mut()),
                Plan::Filter { input: finput, predicate, .. } => match finput.as_mut() {
                    Plan::SeqScan { filter, .. }
                    | Plan::IndexScan { filter, .. }
                    | Plan::ColumnarScan { filter, .. }
                    | Plan::IndexOnlyScan { filter, .. } => {
                        v.extend(filter.iter_mut());
                        v.push(predicate);
                    }
                    _ => return None,
                },
                _ => return None,
            }
            v.extend(exprs.iter_mut());
            Some(v)
        }
        _ => None,
    }
}

fn apply_cse(exprs: &mut [&mut PhysExpr], funcs: &FuncRegistry) {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for e in exprs.iter() {
        count_pure_calls(e, funcs, &mut counts);
    }
    if !counts.values().any(|&c| c >= 2) {
        return;
    }
    let mut slots: HashMap<String, usize> = HashMap::new();
    for e in exprs.iter_mut() {
        plant_memos(e, funcs, &counts, &mut slots);
    }
}

fn count_pure_calls(e: &PhysExpr, funcs: &FuncRegistry, counts: &mut HashMap<String, usize>) {
    if matches!(e, PhysExpr::Call { .. }) && all_calls_pure(e, funcs) {
        *counts.entry(format!("{e:?}")).or_insert(0) += 1;
    }
    for c in expr_children(e) {
        count_pure_calls(c, funcs, counts);
    }
}

/// Wrap repeated pure call subtrees in `Memo` nodes, children first so a
/// shared inner subtree gets its own slot even inside a memoized parent
/// (`Memo`'s transparent `Debug` keeps the structural keys stable).
fn plant_memos(
    e: &mut PhysExpr,
    funcs: &FuncRegistry,
    counts: &HashMap<String, usize>,
    slots: &mut HashMap<String, usize>,
) {
    for c in expr_children_mut(e) {
        plant_memos(c, funcs, counts, slots);
    }
    if matches!(e, PhysExpr::Call { .. }) && all_calls_pure(e, funcs) {
        let key = format!("{e:?}");
        if counts.get(&key).copied().unwrap_or(0) >= 2 {
            let n = slots.len();
            let slot = *slots.entry(key).or_insert(n);
            let inner = std::mem::replace(e, PhysExpr::Literal(crate::datum::Datum::Null));
            *e = PhysExpr::Memo { slot, expr: Box::new(inner) };
        }
    }
}

/// Does every `Call` in the subtree use a function declared pure?
fn all_calls_pure(e: &PhysExpr, funcs: &FuncRegistry) -> bool {
    if let PhysExpr::Call { name, .. } = e {
        if !funcs.is_pure(name) {
            return false;
        }
    }
    expr_children(e).into_iter().all(|c| all_calls_pure(c, funcs))
}

fn expr_children(e: &PhysExpr) -> Vec<&PhysExpr> {
    match e {
        PhysExpr::Column(_) | PhysExpr::Literal(_) => Vec::new(),
        PhysExpr::Not(x) | PhysExpr::Neg(x) => vec![x.as_ref()],
        PhysExpr::Binary { left, right, .. } => vec![left.as_ref(), right.as_ref()],
        PhysExpr::IsNull { expr, .. } => vec![expr.as_ref()],
        PhysExpr::Between { expr, low, high, .. } => {
            vec![expr.as_ref(), low.as_ref(), high.as_ref()]
        }
        PhysExpr::InList { expr, list, .. } => {
            let mut v = vec![expr.as_ref()];
            v.extend(list.iter());
            v
        }
        PhysExpr::Like { expr, pattern, .. } => vec![expr.as_ref(), pattern.as_ref()],
        PhysExpr::Call { args, .. } | PhysExpr::Coalesce(args) => args.iter().collect(),
        PhysExpr::Cast { expr, .. } => vec![expr.as_ref()],
        PhysExpr::Memo { expr, .. } => vec![expr.as_ref()],
    }
}

fn expr_children_mut(e: &mut PhysExpr) -> Vec<&mut PhysExpr> {
    match e {
        PhysExpr::Column(_) | PhysExpr::Literal(_) => Vec::new(),
        PhysExpr::Not(x) | PhysExpr::Neg(x) => vec![x.as_mut()],
        PhysExpr::Binary { left, right, .. } => vec![left.as_mut(), right.as_mut()],
        PhysExpr::IsNull { expr, .. } => vec![expr.as_mut()],
        PhysExpr::Between { expr, low, high, .. } => {
            vec![expr.as_mut(), low.as_mut(), high.as_mut()]
        }
        PhysExpr::InList { expr, list, .. } => {
            let mut v = vec![expr.as_mut()];
            v.extend(list.iter_mut());
            v
        }
        PhysExpr::Like { expr, pattern, .. } => vec![expr.as_mut(), pattern.as_mut()],
        PhysExpr::Call { args, .. } | PhysExpr::Coalesce(args) => args.iter_mut().collect(),
        PhysExpr::Cast { expr, .. } => vec![expr.as_mut()],
        PhysExpr::Memo { expr, .. } => vec![expr.as_mut()],
    }
}

/// `SINEW_FORCE_SCAN` (any value but empty/`0`) disables the index-scan
/// access path — the oracle knob for equivalence tests and benches. Read
/// fresh per plan so tests can toggle it at runtime.
fn force_scan() -> bool {
    std::env::var("SINEW_FORCE_SCAN").map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// `SINEW_COLUMNAR` gates the columnar and index-only access paths —
/// default on; empty/`0` falls back to the heap paths (the oracle side of
/// the columnar differential tests). Read fresh per plan so tests can
/// toggle it at runtime.
pub(crate) fn columnar_enabled() -> bool {
    std::env::var("SINEW_COLUMNAR").map(|v| !v.is_empty() && v != "0").unwrap_or(true)
}

/// Accumulated key bounds for one indexed column, intersected across the
/// sargable conjuncts that mention it.
#[derive(Default, Clone)]
struct IdxBound {
    lo: Option<Datum>,
    lo_inc: bool,
    hi: Option<Datum>,
    hi_inc: bool,
}

impl IdxBound {
    /// Intersect with another clause's bounds. `key_cmp` picks the tighter
    /// endpoint: within one exactness class it IS the SQL order, so the
    /// merged range equals the clause intersection (the `Equal` arm makes
    /// `a >= 0 AND a > -0.0` correctly exclusive — total_cmp would call
    /// those endpoints distinct and keep the wrong inclusivity).
    fn tighten(&mut self, lo: Option<Datum>, lo_inc: bool, hi: Option<Datum>, hi_inc: bool) {
        if self.lo.is_none() && self.hi.is_none() {
            self.lo_inc = true;
            self.hi_inc = true;
        }
        if let Some(l) = lo {
            match &self.lo {
                None => {
                    self.lo = Some(l);
                    self.lo_inc = lo_inc;
                }
                Some(cur) => match l.key_cmp(cur) {
                    std::cmp::Ordering::Greater => {
                        self.lo = Some(l);
                        self.lo_inc = lo_inc;
                    }
                    std::cmp::Ordering::Equal => self.lo_inc &= lo_inc,
                    std::cmp::Ordering::Less => {}
                },
            }
        }
        if let Some(h) = hi {
            match &self.hi {
                None => {
                    self.hi = Some(h);
                    self.hi_inc = hi_inc;
                }
                Some(cur) => match h.key_cmp(cur) {
                    std::cmp::Ordering::Less => {
                        self.hi = Some(h);
                        self.hi_inc = hi_inc;
                    }
                    std::cmp::Ordering::Equal => self.hi_inc &= hi_inc,
                    std::cmp::Ordering::Greater => {}
                },
            }
        }
    }
}

/// Type class of a bound datum for `exact_bounds` purposes (see
/// [`Datum::exactness_class`]): within one class, key order coincides with
/// SQL comparison over the keys the range can contain, so a two-sided
/// same-class range only ever contains keys of that class.
fn exactness_class(d: Option<&Datum>) -> Option<u8> {
    d.and_then(Datum::exactness_class)
}

/// One sargable conjunct's contribution: `(scan slot, lo, lo_inc, hi, hi_inc)`.
type SargBounds = (usize, Option<Datum>, bool, Option<Datum>, bool);

/// Key bounds a conjunct contributes if it is a sargable comparison —
/// `col <op> literal` (either side) or a non-negated BETWEEN with literal
/// bounds.
fn sargable(e: &PhysExpr) -> Option<SargBounds> {
    match e {
        PhysExpr::Binary { op, left, right } => {
            let (slot, d, op) = match (left.as_ref(), right.as_ref()) {
                (PhysExpr::Column(i), PhysExpr::Literal(d)) => (*i, d, *op),
                (PhysExpr::Literal(d), PhysExpr::Column(i)) => (*i, d, flip_cmp(*op)?),
                _ => return None,
            };
            if d.is_null() {
                return None;
            }
            match op {
                BinaryOp::Eq => Some((slot, Some(d.clone()), true, Some(d.clone()), true)),
                BinaryOp::Gt => Some((slot, Some(d.clone()), false, None, true)),
                BinaryOp::GtEq => Some((slot, Some(d.clone()), true, None, true)),
                BinaryOp::Lt => Some((slot, None, true, Some(d.clone()), false)),
                BinaryOp::LtEq => Some((slot, None, true, Some(d.clone()), true)),
                _ => None,
            }
        }
        PhysExpr::Between { expr, low, high, negated } if !negated => {
            match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (PhysExpr::Column(i), PhysExpr::Literal(lo), PhysExpr::Literal(hi))
                    if !lo.is_null() && !hi.is_null() =>
                {
                    Some((*i, Some(lo.clone()), true, Some(hi.clone()), true))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Mirror a comparison for `literal <op> col` → `col <op'> literal`.
fn flip_cmp(op: BinaryOp) -> Option<BinaryOp> {
    match op {
        BinaryOp::Eq => Some(BinaryOp::Eq),
        BinaryOp::Lt => Some(BinaryOp::Gt),
        BinaryOp::LtEq => Some(BinaryOp::GtEq),
        BinaryOp::Gt => Some(BinaryOp::Lt),
        BinaryOp::GtEq => Some(BinaryOp::LtEq),
        _ => None,
    }
}

fn sort_cost(rows: f64) -> f64 {
    let r = rows.max(2.0);
    r * r.log2() * CPU_OPERATOR_COST * 2.0
}

fn aggs_width(n: usize) -> f64 {
    n as f64 * 8.0
}

fn conjoin_phys(parts: Vec<PhysExpr>) -> Option<PhysExpr> {
    parts.into_iter().reduce(|acc, e| PhysExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(acc),
        right: Box::new(e),
    })
}

/// Replace aggregate function calls with `__aggN` column refs, collecting
/// the calls. Returns the rewritten expression.
fn extract_aggs(expr: &Expr, out: &mut Vec<(AggKind, bool, Option<Expr>)>) -> Expr {
    let mut e = expr.clone();
    e.walk_mut(&mut |node| {
        if let Expr::Func { name, args, distinct, star } = node {
            if let Some(kind) = AggKind::parse(name, *star) {
                let arg = if *star {
                    None
                } else {
                    if args.len() != 1 {
                        return; // leave malformed call for the binder to reject
                    }
                    Some(args[0].clone())
                };
                let entry = (kind, *distinct, arg);
                let idx = out.iter().position(|x| *x == entry).unwrap_or_else(|| {
                    out.push(entry.clone());
                    out.len() - 1
                });
                *node = Expr::Column { table: None, column: format!("__agg{idx}") };
            }
        }
    });
    e
}

/// Replace any subtree structurally equal to `target` with a column ref.
fn replace_subtree(expr: &mut Expr, target: &Expr, name: &str) {
    expr.walk_mut(&mut |node| {
        if node == target {
            *node = Expr::Column { table: None, column: name.to_string() };
        }
    });
}

fn item_name(e: &Expr) -> String {
    match e {
        Expr::Column { column, .. } => {
            // `__grp0__lower(x)` style internal names print as the original
            if let Some(rest) = column.strip_prefix("__grp") {
                if let Some(pos) = rest.find("__") {
                    return rest[pos + 2..].to_string();
                }
            }
            column.clone()
        }
        Expr::Func { name, .. } => name.to_ascii_lowercase(),
        _ => "?column?".to_string(),
    }
}
