//! # sinew-rdbms
//!
//! An embedded relational database engine: the Postgres stand-in that the
//! Sinew layer (`sinew-core`) runs on top of, built from scratch for the
//! SIGMOD 2014 "Sinew" reproduction.
//!
//! What it shares with Postgres — because the paper's results depend on it:
//!
//! * slotted 8 KiB pages and a tuple format with a per-tuple attribute
//!   count and null **bitmap** (sparse data economics of §3.1.1/§5);
//! * a file-backed buffer pool, so datasets larger than memory become
//!   I/O-bound (the 64M-record regime of §6);
//! * `ALTER TABLE ADD COLUMN` without table rewrite (old tuples read the
//!   new column as NULL) — the mechanism behind dynamic materialization;
//! * user-defined scalar functions that are **opaque to the optimizer**;
//! * ANALYZE statistics (null fraction, n_distinct, MCVs, histogram) and a
//!   cost-based planner choosing Unique vs HashAggregate vs GroupAggregate
//!   and hash vs merge joins with Postgres-style defaults for anything it
//!   has no statistics for (Table 2's mechanism).
//!
//! Entry point: [`Database`].
//!
//! ```
//! use sinew_rdbms::{Database, Datum};
//! let db = Database::in_memory();
//! db.execute("CREATE TABLE t (a int, b text)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let r = db.execute("SELECT b FROM t WHERE a = 2").unwrap();
//! assert_eq!(r.rows, vec![vec![Datum::Text("y".into())]]);
//! ```

pub mod agg;
pub mod block;
pub mod btree;
pub mod columnar;
pub mod datum;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod func;
pub mod heap;
pub mod kernels;
pub mod page;
pub mod pager;
pub mod plan;
pub mod planner;
pub mod schema;
pub mod selectivity;
pub mod stats;
pub mod tuple;
pub mod txn;
pub mod wal;

pub use btree::SecondaryIndex;
pub use columnar::{ColumnStore, ColumnarInfo};
pub use datum::{ColType, Datum};
pub use db::{Database, QueryResult, Session, Txn};
pub use error::{DbError, DbResult};
pub use block::{BlockOperator, RowBlock};
pub use exec::{ExecLimits, ExecMode, ExecSnapshot, EXEC_HIST_BUCKETS};
pub use func::ScalarFn;
pub use heap::RowId;
pub use kernels::KernelStats;
pub use planner::PlannerConfig;
pub use selectivity::Defaults;
pub use txn::{TxnManager, Vis, WriteMode, NO_END, READ_LATEST, TXN_BASE};
pub use wal::{Wal, WalConfig};
