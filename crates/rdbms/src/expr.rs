//! Bound (physical) expressions and their evaluation.
//!
//! The binder resolves AST column references against a *scope* — the list
//! of columns flowing through an operator — producing [`PhysExpr`] trees
//! that evaluate directly against row slices with SQL three-valued logic.

use crate::datum::{ColType, Datum};
use crate::error::{DbError, DbResult};
use crate::exec::Row;
use crate::func::{FuncRegistry, ScalarFn};
use sinew_sql::{BinaryOp, Expr, Literal, UnaryOp};
use std::sync::Arc;

/// A fully bound, executable expression.
#[derive(Clone)]
pub enum PhysExpr {
    /// Index into the input row.
    Column(usize),
    Literal(Datum),
    Not(Box<PhysExpr>),
    Neg(Box<PhysExpr>),
    Binary { op: BinaryOp, left: Box<PhysExpr>, right: Box<PhysExpr> },
    IsNull { expr: Box<PhysExpr>, negated: bool },
    Between { expr: Box<PhysExpr>, low: Box<PhysExpr>, high: Box<PhysExpr>, negated: bool },
    InList { expr: Box<PhysExpr>, list: Vec<PhysExpr>, negated: bool },
    Like { expr: Box<PhysExpr>, pattern: Box<PhysExpr>, negated: bool },
    Call { name: String, func: Arc<dyn ScalarFn>, args: Vec<PhysExpr> },
    /// Lazy COALESCE: arguments evaluate left-to-right, stopping at the
    /// first non-NULL — Sinew's dirty-column rewrite
    /// `COALESCE(col, extract_key(data, ...))` depends on this laziness to
    /// keep the §3.1.4 overhead small (the extraction must not run for rows
    /// whose value has already been materialized).
    Coalesce(Vec<PhysExpr>),
    Cast { expr: Box<PhysExpr>, ty: ColType },
    /// Per-row memoization point, planted by the planner's common-
    /// subexpression pass over the scan pipeline: the first evaluation in a
    /// row stores its result in the [`EvalCtx`] slot, later evaluations of
    /// the same subtree clone it back. Without a context (joins, sorts,
    /// plain `eval`) it is fully transparent — the inner expression
    /// evaluates directly, with zero overhead and identical semantics.
    Memo { slot: usize, expr: Box<PhysExpr> },
}

/// Per-row scratch for [`PhysExpr::Memo`] slots. One instance lives per
/// scan worker and is `reset()` between rows; slots grow on demand.
#[derive(Debug, Default)]
pub struct EvalCtx {
    slots: Vec<Option<Datum>>,
}

impl EvalCtx {
    pub fn new() -> EvalCtx {
        EvalCtx::default()
    }

    /// Forget all memoized values (call between rows).
    pub fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    fn get(&self, slot: usize) -> Option<&Datum> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    fn put(&mut self, slot: usize, value: Datum) {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        self.slots[slot] = Some(value);
    }
}

impl std::fmt::Debug for PhysExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysExpr::Column(i) => write!(f, "#{i}"),
            PhysExpr::Literal(d) => write!(f, "{d:?}"),
            PhysExpr::Not(e) => write!(f, "NOT({e:?})"),
            PhysExpr::Neg(e) => write!(f, "-({e:?})"),
            PhysExpr::Binary { op, left, right } => write!(f, "({left:?} {op} {right:?})"),
            PhysExpr::IsNull { expr, negated } => {
                write!(f, "({expr:?} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            PhysExpr::Between { expr, low, high, .. } => {
                write!(f, "({expr:?} BETWEEN {low:?} AND {high:?})")
            }
            PhysExpr::InList { expr, list, .. } => write!(f, "({expr:?} IN {list:?})"),
            PhysExpr::Like { expr, pattern, .. } => write!(f, "({expr:?} LIKE {pattern:?})"),
            PhysExpr::Call { name, args, .. } => write!(f, "{name}({args:?})"),
            PhysExpr::Coalesce(args) => write!(f, "COALESCE({args:?})"),
            PhysExpr::Cast { expr, ty } => write!(f, "CAST({expr:?} AS {})", ty.name()),
            // Transparent: EXPLAIN output must not depend on whether the
            // CSE pass planted a memo point here.
            PhysExpr::Memo { expr, .. } => write!(f, "{expr:?}"),
        }
    }
}

impl PhysExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &[Datum]) -> DbResult<Datum> {
        self.eval_with(row, None)
    }

    /// Evaluate with a memoization context (scan-pipeline hot path).
    pub fn eval_ctx(&self, row: &[Datum], ctx: &mut EvalCtx) -> DbResult<Datum> {
        self.eval_with(row, Some(ctx))
    }

    fn eval_with(&self, row: &[Datum], mut ctx: Option<&mut EvalCtx>) -> DbResult<Datum> {
        match self {
            PhysExpr::Column(i) => Ok(row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Eval(format!("column index {i} out of range")))?),
            PhysExpr::Literal(d) => Ok(d.clone()),
            PhysExpr::Not(e) => match e.eval_with(row, ctx)? {
                Datum::Null => Ok(Datum::Null),
                Datum::Bool(b) => Ok(Datum::Bool(!b)),
                other => Err(DbError::Eval(format!("NOT applied to {other}"))),
            },
            PhysExpr::Neg(e) => match e.eval_with(row, ctx)? {
                Datum::Null => Ok(Datum::Null),
                Datum::Int(i) => Ok(Datum::Int(-i)),
                Datum::Float(f) => Ok(Datum::Float(-f)),
                other => Err(DbError::Eval(format!("cannot negate {other}"))),
            },
            PhysExpr::Binary { op, left, right } => eval_binary(*op, left, right, row, ctx),
            PhysExpr::IsNull { expr, negated } => {
                let v = expr.eval_with(row, ctx)?;
                Ok(Datum::Bool(v.is_null() != *negated))
            }
            PhysExpr::Between { expr, low, high, negated } => {
                let v = expr.eval_with(row, ctx.as_deref_mut())?;
                let lo = low.eval_with(row, ctx.as_deref_mut())?;
                let hi = high.eval_with(row, ctx)?;
                // Postgres rewrites BETWEEN as two comparisons without
                // memoizing the operand (paper §6.4 contrasts this with
                // MongoDB's precompute) — semantics are unchanged here since
                // evaluation is pure; the *cost* difference is modeled where
                // extraction happens (two extract calls for virtual columns).
                let ge = match v.sql_cmp(&lo) {
                    None => return Ok(Datum::Null),
                    Some(o) => o != std::cmp::Ordering::Less,
                };
                let le = match v.sql_cmp(&hi) {
                    None => return Ok(Datum::Null),
                    Some(o) => o != std::cmp::Ordering::Greater,
                };
                Ok(Datum::Bool((ge && le) != *negated))
            }
            PhysExpr::InList { expr, list, negated } => {
                let v = expr.eval_with(row, ctx.as_deref_mut())?;
                if v.is_null() {
                    return Ok(Datum::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(&item.eval_with(row, ctx.as_deref_mut())?) {
                        Some(true) => return Ok(Datum::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Datum::Null)
                } else {
                    Ok(Datum::Bool(*negated))
                }
            }
            PhysExpr::Like { expr, pattern, negated } => {
                let v = expr.eval_with(row, ctx.as_deref_mut())?;
                let p = pattern.eval_with(row, ctx)?;
                match (v, p) {
                    (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                    (v, Datum::Text(p)) => {
                        let s = match v {
                            Datum::Text(s) => s,
                            other => other.display_text(),
                        };
                        Ok(Datum::Bool(like_match(&s, &p) != *negated))
                    }
                    (_, other) => Err(DbError::Eval(format!("LIKE pattern must be text, got {other}"))),
                }
            }
            PhysExpr::Coalesce(args) => {
                for a in args {
                    let v = a.eval_with(row, ctx.as_deref_mut())?;
                    if !v.is_null() {
                        return Ok(v);
                    }
                }
                Ok(Datum::Null)
            }
            PhysExpr::Call { func, args, name } => {
                // Fused-extraction fast path: `array_get(<memo>, <const i>)`
                // indexes the memoized array in place, cloning one element
                // instead of the whole k-value array per output column —
                // otherwise fusing k extractions would trade k decodes for
                // k array clones and lose.
                if name == "array_get" && args.len() == 2 {
                    if let (
                        PhysExpr::Memo { slot, expr },
                        PhysExpr::Literal(Datum::Int(idx)),
                    ) = (&args[0], &args[1])
                    {
                        if let Some(c) = ctx.as_deref_mut() {
                            if c.get(*slot).is_none() {
                                let v = expr.eval_with(row, Some(&mut *c))?;
                                c.put(*slot, v);
                            }
                            match c.get(*slot) {
                                Some(Datum::Null) => return Ok(Datum::Null),
                                Some(Datum::Array(a)) => {
                                    return Ok(usize::try_from(*idx)
                                        .ok()
                                        .and_then(|i| a.get(i))
                                        .cloned()
                                        .unwrap_or(Datum::Null))
                                }
                                // non-array memo value: let the generic call
                                // below produce array_get's usual error
                                _ => {}
                            }
                        }
                    }
                }
                // Borrow Literal/Column arguments in place; only computed
                // arguments are materialized into scratch. Extraction UDFs
                // override `call_ref`, so the reservoir bytea and the
                // path/tag literals are never cloned per row.
                let mut scratch: Vec<Datum> = Vec::new();
                for a in args {
                    match a {
                        PhysExpr::Literal(_) | PhysExpr::Column(_) => {}
                        other => scratch.push(other.eval_with(row, ctx.as_deref_mut())?),
                    }
                }
                let mut computed = scratch.iter();
                let mut refs: Vec<&Datum> = Vec::with_capacity(args.len());
                for a in args {
                    refs.push(match a {
                        PhysExpr::Literal(d) => d,
                        PhysExpr::Column(i) => row.get(*i).ok_or_else(|| {
                            DbError::Eval(format!("column index {i} out of range"))
                        })?,
                        _ => computed.next().expect("scratch covers computed args"),
                    });
                }
                func.call_ref(&refs).map_err(|e| match e {
                    DbError::Eval(m) => DbError::Eval(format!("{name}: {m}")),
                    other => other,
                })
            }
            PhysExpr::Cast { expr, ty } => expr.eval_with(row, ctx)?.cast(*ty),
            PhysExpr::Memo { slot, expr } => match ctx {
                None => expr.eval_with(row, None),
                Some(c) => {
                    if let Some(v) = c.get(*slot) {
                        return Ok(v.clone());
                    }
                    let v = expr.eval_with(row, Some(c))?;
                    c.put(*slot, v.clone());
                    Ok(v)
                }
            },
        }
    }

    /// Evaluate as a predicate: NULL ⇒ false (SQL WHERE semantics).
    pub fn eval_bool(&self, row: &[Datum]) -> DbResult<bool> {
        match self.eval(row)? {
            Datum::Bool(b) => Ok(b),
            Datum::Null => Ok(false),
            other => Err(DbError::Eval(format!("predicate evaluated to {other}, expected bool"))),
        }
    }

    /// Predicate evaluation with a memoization context.
    pub fn eval_bool_ctx(&self, row: &[Datum], ctx: &mut EvalCtx) -> DbResult<bool> {
        match self.eval_with(row, Some(ctx))? {
            Datum::Bool(b) => Ok(b),
            Datum::Null => Ok(false),
            other => Err(DbError::Eval(format!("predicate evaluated to {other}, expected bool"))),
        }
    }

    /// True when no [`PhysExpr::Column`] occurs — evaluable without a row.
    pub fn is_constant(&self) -> bool {
        match self {
            PhysExpr::Column(_) => false,
            PhysExpr::Literal(_) => true,
            PhysExpr::Not(e) | PhysExpr::Neg(e) => e.is_constant(),
            PhysExpr::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            PhysExpr::IsNull { expr, .. } => expr.is_constant(),
            PhysExpr::Between { expr, low, high, .. } => {
                expr.is_constant() && low.is_constant() && high.is_constant()
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(PhysExpr::is_constant)
            }
            PhysExpr::Like { expr, pattern, .. } => expr.is_constant() && pattern.is_constant(),
            PhysExpr::Call { args, .. } => args.iter().all(PhysExpr::is_constant),
            PhysExpr::Coalesce(args) => args.iter().all(PhysExpr::is_constant),
            PhysExpr::Cast { expr, .. } => expr.is_constant(),
            PhysExpr::Memo { expr, .. } => expr.is_constant(),
        }
    }

    /// Collect referenced column indices.
    pub fn column_refs(&self, out: &mut Vec<usize>) {
        match self {
            PhysExpr::Column(i) => out.push(*i),
            PhysExpr::Literal(_) => {}
            PhysExpr::Not(e) | PhysExpr::Neg(e) => e.column_refs(out),
            PhysExpr::Binary { left, right, .. } => {
                left.column_refs(out);
                right.column_refs(out);
            }
            PhysExpr::IsNull { expr, .. } => expr.column_refs(out),
            PhysExpr::Between { expr, low, high, .. } => {
                expr.column_refs(out);
                low.column_refs(out);
                high.column_refs(out);
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.column_refs(out);
                for e in list {
                    e.column_refs(out);
                }
            }
            PhysExpr::Like { expr, pattern, .. } => {
                expr.column_refs(out);
                pattern.column_refs(out);
            }
            PhysExpr::Call { args, .. } | PhysExpr::Coalesce(args) => {
                for a in args {
                    a.column_refs(out);
                }
            }
            PhysExpr::Cast { expr, .. } => expr.column_refs(out),
            PhysExpr::Memo { expr, .. } => expr.column_refs(out),
        }
    }

    /// Visit every [`ScalarFn`] referenced by a `Call` node in the tree.
    fn visit_calls(&self, f: &mut dyn FnMut(&dyn ScalarFn)) {
        match self {
            PhysExpr::Column(_) | PhysExpr::Literal(_) => {}
            PhysExpr::Not(e) | PhysExpr::Neg(e) => e.visit_calls(f),
            PhysExpr::Binary { left, right, .. } => {
                left.visit_calls(f);
                right.visit_calls(f);
            }
            PhysExpr::IsNull { expr, .. } => expr.visit_calls(f),
            PhysExpr::Between { expr, low, high, .. } => {
                expr.visit_calls(f);
                low.visit_calls(f);
                high.visit_calls(f);
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.visit_calls(f);
                for e in list {
                    e.visit_calls(f);
                }
            }
            PhysExpr::Like { expr, pattern, .. } => {
                expr.visit_calls(f);
                pattern.visit_calls(f);
            }
            PhysExpr::Call { func, args, .. } => {
                f(func.as_ref());
                for a in args {
                    a.visit_calls(f);
                }
            }
            PhysExpr::Coalesce(args) => {
                for a in args {
                    a.visit_calls(f);
                }
            }
            PhysExpr::Cast { expr, .. } => expr.visit_calls(f),
            PhysExpr::Memo { expr, .. } => expr.visit_calls(f),
        }
    }

    /// Announce to every scalar function in the tree that a block of rows
    /// is about to be evaluated (extraction UDFs revalidate their cached
    /// plans once per block instead of once per row). Always paired with
    /// [`PhysExpr::end_block`], including when evaluation errors.
    pub fn begin_block(&self) {
        self.visit_calls(&mut |f| f.begin_block());
    }

    /// Close the bracket opened by [`PhysExpr::begin_block`].
    pub fn end_block(&self) {
        self.visit_calls(&mut |f| f.end_block());
    }

    /// Evaluate over every selected row of a block (`sel` indexes `rows`;
    /// `None` means all rows), appending one value per row to `out`. The
    /// context resets between rows; plan-cache revalidation inside scalar
    /// functions is amortized to once per block via the begin/end hooks.
    pub fn eval_block(
        &self,
        rows: &[Row],
        sel: Option<&[u32]>,
        ctx: &mut EvalCtx,
        out: &mut Vec<Datum>,
    ) -> DbResult<()> {
        self.begin_block();
        let res = (|| {
            match sel {
                Some(s) => {
                    for &i in s {
                        ctx.reset();
                        out.push(self.eval_ctx(&rows[i as usize], ctx)?);
                    }
                }
                None => {
                    for row in rows {
                        ctx.reset();
                        out.push(self.eval_ctx(row, ctx)?);
                    }
                }
            }
            Ok(())
        })();
        self.end_block();
        res
    }

    /// Predicate over a block: the selected indices (of `rows`) for which
    /// this expression evaluates true, in input order. NULL ⇒ not selected
    /// (SQL WHERE semantics), matching [`PhysExpr::eval_bool_ctx`].
    pub fn filter_block(
        &self,
        rows: &[Row],
        sel: Option<&[u32]>,
        ctx: &mut EvalCtx,
    ) -> DbResult<Vec<u32>> {
        self.begin_block();
        let res = (|| {
            let mut keep = Vec::new();
            match sel {
                Some(s) => {
                    for &i in s {
                        ctx.reset();
                        if self.eval_bool_ctx(&rows[i as usize], ctx)? {
                            keep.push(i);
                        }
                    }
                }
                None => {
                    for (i, row) in rows.iter().enumerate() {
                        ctx.reset();
                        if self.eval_bool_ctx(row, ctx)? {
                            keep.push(i as u32);
                        }
                    }
                }
            }
            Ok(keep)
        })();
        self.end_block();
        res
    }

    /// True if any function call occurs in the tree. Function calls are
    /// opaque to the optimizer (no statistics), which is what triggers
    /// default selectivity estimates for Sinew's virtual columns.
    pub fn contains_call(&self) -> bool {
        match self {
            PhysExpr::Column(_) | PhysExpr::Literal(_) => false,
            PhysExpr::Not(e) | PhysExpr::Neg(e) => e.contains_call(),
            PhysExpr::Binary { left, right, .. } => left.contains_call() || right.contains_call(),
            PhysExpr::IsNull { expr, .. } => expr.contains_call(),
            PhysExpr::Between { expr, low, high, .. } => {
                expr.contains_call() || low.contains_call() || high.contains_call()
            }
            PhysExpr::InList { expr, list, .. } => {
                expr.contains_call() || list.iter().any(PhysExpr::contains_call)
            }
            PhysExpr::Like { expr, pattern, .. } => {
                expr.contains_call() || pattern.contains_call()
            }
            PhysExpr::Call { .. } => true,
            PhysExpr::Coalesce(args) => args.iter().any(PhysExpr::contains_call),
            PhysExpr::Cast { expr, .. } => expr.contains_call(),
            PhysExpr::Memo { expr, .. } => expr.contains_call(),
        }
    }
}

fn eval_binary(
    op: BinaryOp,
    left: &PhysExpr,
    right: &PhysExpr,
    row: &[Datum],
    mut ctx: Option<&mut EvalCtx>,
) -> DbResult<Datum> {
    use BinaryOp::*;
    // AND/OR need three-valued logic with short-circuit.
    if op == And || op == Or {
        let l = left.eval_with(row, ctx.as_deref_mut())?;
        let lb = match &l {
            Datum::Null => None,
            Datum::Bool(b) => Some(*b),
            other => return Err(DbError::Eval(format!("{op} applied to {other}"))),
        };
        match (op, lb) {
            (And, Some(false)) => return Ok(Datum::Bool(false)),
            (Or, Some(true)) => return Ok(Datum::Bool(true)),
            _ => {}
        }
        let r = right.eval_with(row, ctx)?;
        let rb = match &r {
            Datum::Null => None,
            Datum::Bool(b) => Some(*b),
            other => return Err(DbError::Eval(format!("{op} applied to {other}"))),
        };
        return Ok(match (op, lb, rb) {
            (And, Some(true), Some(b)) => Datum::Bool(b),
            (And, _, Some(false)) => Datum::Bool(false),
            (Or, Some(false), Some(b)) => Datum::Bool(b),
            (Or, _, Some(true)) => Datum::Bool(true),
            _ => Datum::Null,
        });
    }
    let l = left.eval_with(row, ctx.as_deref_mut())?;
    let r = right.eval_with(row, ctx)?;
    if op.is_comparison() {
        let cmp = l.sql_cmp(&r);
        return Ok(match cmp {
            None => Datum::Null,
            Some(o) => Datum::Bool(match op {
                Eq => o == std::cmp::Ordering::Equal,
                NotEq => o != std::cmp::Ordering::Equal,
                Lt => o == std::cmp::Ordering::Less,
                LtEq => o != std::cmp::Ordering::Greater,
                Gt => o == std::cmp::Ordering::Greater,
                GtEq => o != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }),
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    match op {
        Concat => Ok(Datum::Text(format!("{}{}", l.display_text(), r.display_text()))),
        Add | Sub | Mul | Div | Mod => numeric_op(op, &l, &r),
        _ => unreachable!(),
    }
}

fn numeric_op(op: BinaryOp, l: &Datum, r: &Datum) -> DbResult<Datum> {
    use BinaryOp::*;
    match (l, r) {
        (Datum::Int(a), Datum::Int(b)) => {
            // Checked throughout, like SUM's promotion in agg.rs: silent
            // wrapping would return a well-typed wrong answer. checked_div
            // and checked_rem also cover the i64::MIN / -1 overflow.
            let overflow =
                || DbError::Eval(format!("integer overflow in {} {op:?} {}", l, r));
            Ok(match op {
                Add => Datum::Int(a.checked_add(*b).ok_or_else(overflow)?),
                Sub => Datum::Int(a.checked_sub(*b).ok_or_else(overflow)?),
                Mul => Datum::Int(a.checked_mul(*b).ok_or_else(overflow)?),
                Div => {
                    if *b == 0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    Datum::Int(a.checked_div(*b).ok_or_else(overflow)?)
                }
                Mod => {
                    if *b == 0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    Datum::Int(a.checked_rem(*b).ok_or_else(overflow)?)
                }
                _ => unreachable!(),
            })
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(DbError::Eval(format!(
                        "arithmetic on non-numeric operands {l} and {r}"
                    )))
                }
            };
            Ok(match op {
                Add => Datum::Float(a + b),
                Sub => Datum::Float(a - b),
                Mul => Datum::Float(a * b),
                Div => {
                    if b == 0.0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    Datum::Float(a / b)
                }
                Mod => Datum::Float(a % b),
                _ => unreachable!(),
            })
        }
    }
}

impl Datum {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// SQL LIKE matcher: `%` any run, `_` any single char; backslash escapes.
/// Iterative two-pointer algorithm, O(n·m) worst case, no recursion.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pi after %, si at that time)
    while si < s.len() {
        let pc = p.get(pi).copied();
        let escaped = pc == Some('\\') && pi + 1 < p.len();
        let (effective, adv) = if escaped { (p.get(pi + 1).copied(), 2) } else { (pc, 1) };
        match effective {
            Some('%') if !escaped => {
                star = Some((pi + 1, si));
                pi += 1;
            }
            Some('_') if !escaped => {
                si += 1;
                pi += 1;
            }
            Some(c) if Some(c) == s.get(si).copied() => {
                si += 1;
                pi += adv;
            }
            _ => match star {
                Some((sp, ss)) => {
                    pi = sp;
                    si = ss + 1;
                    star = Some((sp, ss + 1));
                }
                None => return false,
            },
        }
    }
    while p.get(pi) == Some(&'%') {
        pi += 1;
    }
    pi == p.len()
}

/// Column resolution scope: an ordered list of `(qualifier, column_name)`
/// pairs matching the row layout flowing into an operator.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub cols: Vec<(Option<String>, String)>,
}

impl Scope {
    pub fn resolve(&self, table: Option<&str>, column: &str) -> DbResult<usize> {
        let mut found = None;
        for (i, (q, name)) in self.cols.iter().enumerate() {
            let qual_ok = match table {
                None => true,
                Some(t) => q.as_deref() == Some(t),
            };
            if qual_ok && name == column {
                if found.is_some() {
                    return Err(DbError::Schema(format!("column reference {column} is ambiguous")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let full = match table {
                Some(t) => format!("{t}.{column}"),
                None => column.to_string(),
            };
            DbError::NotFound(format!("column {full}"))
        })
    }

    pub fn push(&mut self, qualifier: Option<&str>, name: &str) {
        self.cols.push((qualifier.map(str::to_string), name.to_string()));
    }

    /// Concatenate two scopes (join output).
    pub fn join(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols }
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// Bind an AST expression against a scope.
pub fn bind(expr: &Expr, scope: &Scope, funcs: &FuncRegistry) -> DbResult<PhysExpr> {
    Ok(match expr {
        Expr::Column { table, column } => {
            PhysExpr::Column(scope.resolve(table.as_deref(), column)?)
        }
        Expr::Literal(l) => PhysExpr::Literal(lit_to_datum(l)),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            PhysExpr::Not(Box::new(bind(expr, scope, funcs)?))
        }
        Expr::Unary { op: UnaryOp::Neg, expr } => {
            PhysExpr::Neg(Box::new(bind(expr, scope, funcs)?))
        }
        Expr::Binary { op, left, right } => PhysExpr::Binary {
            op: *op,
            left: Box::new(bind(left, scope, funcs)?),
            right: Box::new(bind(right, scope, funcs)?),
        },
        Expr::IsNull { expr, negated } => PhysExpr::IsNull {
            expr: Box::new(bind(expr, scope, funcs)?),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => PhysExpr::Between {
            expr: Box::new(bind(expr, scope, funcs)?),
            low: Box::new(bind(low, scope, funcs)?),
            high: Box::new(bind(high, scope, funcs)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => PhysExpr::InList {
            expr: Box::new(bind(expr, scope, funcs)?),
            list: list.iter().map(|e| bind(e, scope, funcs)).collect::<DbResult<_>>()?,
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => PhysExpr::Like {
            expr: Box::new(bind(expr, scope, funcs)?),
            pattern: Box::new(bind(pattern, scope, funcs)?),
            negated: *negated,
        },
        Expr::Func { name, args, distinct, star } => {
            if *distinct || *star {
                return Err(DbError::Eval(format!(
                    "{name} is an aggregate and not valid in this context"
                )));
            }
            if name.eq_ignore_ascii_case("coalesce") {
                return Ok(PhysExpr::Coalesce(
                    args.iter().map(|e| bind(e, scope, funcs)).collect::<DbResult<_>>()?,
                ));
            }
            let func = funcs
                .get(name)
                .ok_or_else(|| DbError::NotFound(format!("function {name}")))?;
            PhysExpr::Call {
                name: name.clone(),
                func,
                args: args.iter().map(|e| bind(e, scope, funcs)).collect::<DbResult<_>>()?,
            }
        }
        Expr::Cast { expr, ty } => PhysExpr::Cast {
            expr: Box::new(bind(expr, scope, funcs)?),
            ty: (*ty).into(),
        },
    })
}

pub fn lit_to_datum(l: &Literal) -> Datum {
    match l {
        Literal::Null => Datum::Null,
        Literal::Bool(b) => Datum::Bool(*b),
        Literal::Int(i) => Datum::Int(*i),
        Literal::Float(f) => Datum::Float(*f),
        Literal::Str(s) => Datum::Text(s.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinew_sql::parse_expr;

    fn eval_str(sql: &str, scope: &Scope, row: &[Datum]) -> DbResult<Datum> {
        let funcs = FuncRegistry::new();
        let ast = parse_expr(sql).unwrap();
        bind(&ast, scope, &funcs)?.eval(row)
    }

    fn scope_ab() -> Scope {
        let mut s = Scope::default();
        s.push(Some("t"), "a");
        s.push(Some("t"), "b");
        s
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = scope_ab();
        let row = [Datum::Int(10), Datum::Float(2.5)];
        assert_eq!(eval_str("a + 1", &s, &row).unwrap(), Datum::Int(11));
        assert_eq!(eval_str("a * b", &s, &row).unwrap(), Datum::Float(25.0));
        assert_eq!(eval_str("a > 5", &s, &row).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("a = b", &s, &row).unwrap(), Datum::Bool(false));
        assert!(eval_str("a / 0", &s, &row).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let s = scope_ab();
        let row = [Datum::Null, Datum::Bool(true)];
        assert_eq!(eval_str("a > 1 AND b", &s, &row).unwrap(), Datum::Null);
        assert_eq!(eval_str("a > 1 OR b", &s, &row).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("a > 1 AND FALSE", &s, &row).unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("NOT (a > 1)", &s, &row).unwrap(), Datum::Null);
        // WHERE semantics: NULL is not a match
        let funcs = FuncRegistry::new();
        let pred = bind(&parse_expr("a > 1").unwrap(), &s, &funcs).unwrap();
        assert!(!pred.eval_bool(&row).unwrap());
    }

    #[test]
    fn between_in_like() {
        let s = scope_ab();
        let row = [Datum::Int(5), Datum::Text("hello world".into())];
        assert_eq!(eval_str("a BETWEEN 1 AND 10", &s, &row).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("a NOT BETWEEN 1 AND 10", &s, &row).unwrap(), Datum::Bool(false));
        assert_eq!(eval_str("a IN (1, 5, 7)", &s, &row).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("a IN (1, NULL)", &s, &row).unwrap(), Datum::Null);
        assert_eq!(eval_str("b LIKE '%world'", &s, &row).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("b LIKE 'h_llo%'", &s, &row).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("b NOT LIKE '%xyz%'", &s, &row).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "%d%"));
        assert!(like_match("a%b", "a\\%b"));
        assert!(!like_match("axb", "a\\%b"));
        assert!(like_match("aaab", "%aab"));
        assert!(like_match("abcbcd", "a%bcd"));
    }

    #[test]
    fn scope_resolution_and_ambiguity() {
        let mut s = Scope::default();
        s.push(Some("t1"), "id");
        s.push(Some("t2"), "id");
        assert_eq!(s.resolve(Some("t2"), "id").unwrap(), 1);
        assert!(matches!(s.resolve(None, "id"), Err(DbError::Schema(_))));
        assert!(matches!(s.resolve(None, "nope"), Err(DbError::NotFound(_))));
    }

    #[test]
    fn functions_and_cast() {
        let s = scope_ab();
        let row = [Datum::Null, Datum::Text("42".into())];
        assert_eq!(
            eval_str("COALESCE(a, 7)", &s, &row).unwrap(),
            Datum::Int(7)
        );
        assert_eq!(
            eval_str("CAST(b AS int)", &s, &row).unwrap(),
            Datum::Int(42)
        );
        let bad = [Datum::Null, Datum::Text("twenty".into())];
        assert!(matches!(
            eval_str("CAST(b AS int)", &s, &bad),
            Err(DbError::CastError { .. })
        ));
    }

    #[test]
    fn contains_call_detects_udfs() {
        let s = scope_ab();
        let funcs = FuncRegistry::new();
        let plain = bind(&parse_expr("a > 1").unwrap(), &s, &funcs).unwrap();
        assert!(!plain.contains_call());
        let call = bind(&parse_expr("length(b) > 1").unwrap(), &s, &funcs).unwrap();
        assert!(call.contains_call());
    }
}
