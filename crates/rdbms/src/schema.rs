//! Table schemas.

use crate::datum::ColType;
use crate::error::{DbError, DbResult};
use crate::wal;

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColType,
    /// Dropped columns keep their slot (Postgres-style `attisdropped`) so
    /// existing tuples remain decodable; they are invisible to name lookup
    /// and `SELECT *`. Sinew's dematerialization path uses this.
    pub dropped: bool,
}

/// A table schema. Columns are append-only: `ALTER TABLE ADD COLUMN` pushes
/// a new entry and existing tuples (stored with their original attribute
/// count) read the new column as NULL — exactly the mechanism that lets
/// Sinew's materializer add physical columns without rewriting the table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableSchema {
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    pub fn new(cols: Vec<(String, ColType)>) -> TableSchema {
        TableSchema {
            columns: cols
                .into_iter()
                .map(|(name, ty)| ColumnDef { name, ty, dropped: false })
                .collect(),
        }
    }

    /// Index of a live column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| !c.dropped && c.name == name)
    }

    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| !c.dropped && c.name == name)
    }

    /// All live columns with their physical indices.
    pub fn live_columns(&self) -> impl Iterator<Item = (usize, &ColumnDef)> {
        self.columns.iter().enumerate().filter(|(_, c)| !c.dropped)
    }

    /// Total slots including dropped ones — the arity of stored tuples.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn add_column(&mut self, name: &str, ty: ColType) -> DbResult<usize> {
        if self.index_of(name).is_some() {
            return Err(DbError::Schema(format!("column {name} already exists")));
        }
        self.columns.push(ColumnDef { name: name.to_string(), ty, dropped: false });
        Ok(self.columns.len() - 1)
    }

    /// Mark a column dropped; its storage remains readable but invisible.
    pub fn drop_column(&mut self, name: &str) -> DbResult<usize> {
        let idx = self
            .index_of(name)
            .ok_or_else(|| DbError::NotFound(format!("column {name}")))?;
        self.columns[idx].dropped = true;
        // Free the name for reuse (Postgres renames to "........pg.dropped").
        self.columns[idx].name = format!("..dropped.{idx}");
        Ok(idx)
    }

    // ---- WAL metadata codec ----
    //
    // Schemas are small (tens of columns), so commit records carry the
    // full schema rather than a delta.

    pub fn wal_encode(&self, out: &mut Vec<u8>) {
        wal::put_u32(out, self.columns.len() as u32);
        for c in &self.columns {
            wal::put_str(out, &c.name);
            out.push(coltype_tag(c.ty));
            out.push(c.dropped as u8);
        }
    }

    pub fn wal_decode(r: &mut wal::Reader) -> DbResult<TableSchema> {
        let n = r.u32()? as usize;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?.to_string();
            let ty = coltype_from_tag(r.u8()?)?;
            let dropped = r.u8()? != 0;
            columns.push(ColumnDef { name, ty, dropped });
        }
        Ok(TableSchema { columns })
    }
}

fn coltype_tag(ty: ColType) -> u8 {
    match ty {
        ColType::Bool => 0,
        ColType::Int => 1,
        ColType::Float => 2,
        ColType::Text => 3,
        ColType::Bytea => 4,
        ColType::Array => 5,
    }
}

fn coltype_from_tag(tag: u8) -> DbResult<ColType> {
    Ok(match tag {
        0 => ColType::Bool,
        1 => ColType::Int,
        2 => ColType::Float,
        3 => ColType::Text,
        4 => ColType::Bytea,
        5 => ColType::Array,
        t => return Err(DbError::Io(format!("wal: unknown coltype tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(vec![
            ("a".into(), ColType::Int),
            ("b".into(), ColType::Text),
        ])
    }

    #[test]
    fn add_and_lookup() {
        let mut s = schema();
        assert_eq!(s.index_of("b"), Some(1));
        let idx = s.add_column("c", ColType::Float).unwrap();
        assert_eq!(idx, 2);
        assert!(s.add_column("a", ColType::Int).is_err());
    }

    #[test]
    fn drop_keeps_slot_and_frees_name() {
        let mut s = schema();
        let idx = s.drop_column("a").unwrap();
        assert_eq!(idx, 0);
        assert_eq!(s.index_of("a"), None);
        assert_eq!(s.arity(), 2);
        // name reusable
        let idx2 = s.add_column("a", ColType::Float).unwrap();
        assert_eq!(idx2, 2);
        assert_eq!(s.live_columns().count(), 2);
    }
}
