//! Physical query plans and the EXPLAIN printer.
//!
//! Operator names intentionally match Postgres's EXPLAIN vocabulary
//! (`Seq Scan`, `Hash Join`, `Merge Join`, `HashAggregate`,
//! `GroupAggregate`, `Unique`, `Sort`) because the Table 2 experiment
//! compares *plan shapes* between virtual- and physical-column conditions
//! exactly the way the paper does.

use crate::agg::AggKind;
use crate::datum::Datum;
use crate::expr::PhysExpr;
use std::fmt::Write as _;

/// One aggregate computed by an aggregation operator.
#[derive(Clone)]
pub struct AggSpec {
    pub kind: AggKind,
    pub distinct: bool,
    /// `None` for `COUNT(*)`.
    pub arg: Option<PhysExpr>,
}

/// A sort key: expression over the input row plus direction.
#[derive(Clone)]
pub struct SortKey {
    pub expr: PhysExpr,
    pub desc: bool,
}

/// Physical plan tree. Every node carries its estimated output rows, which
/// is what EXPLAIN prints and what the Table 2 harness inspects.
#[derive(Clone)]
pub enum Plan {
    /// Full-table scan with an optional pushed-down filter. The scan output
    /// is the table's live columns, in order, plus a trailing `_rowid`.
    /// `needed` lists the live column names the query actually touches
    /// (projection push-down); `None` decodes everything.
    SeqScan {
        table: String,
        binding: String,
        filter: Option<PhysExpr>,
        needed: Option<Vec<String>>,
        est_rows: f64,
    },
    /// Secondary-index range scan. `column` names the indexed physical
    /// column; `lo`/`hi` bound the key range (by `Datum::total_cmp` order,
    /// a superset of SQL-comparison matches). `filter` carries the FULL
    /// original predicate — including the conjuncts consumed as bounds —
    /// re-checked per fetched row, so results are byte-identical to the
    /// equivalent `SeqScan`. Matching rowids are sorted before fetch, so
    /// output order matches the heap scan too.
    IndexScan {
        table: String,
        binding: String,
        column: String,
        lo: Option<Datum>,
        lo_inc: bool,
        hi: Option<Datum>,
        hi_inc: bool,
        filter: Option<PhysExpr>,
        needed: Option<Vec<String>>,
        est_rows: f64,
        /// True when the key range *is* the whole predicate: every conjunct
        /// was consumed as a bound on this column, and the bounds confine
        /// the `total_cmp` range to a single type class, so every row the
        /// probe surfaces is known to pass `filter`. Only then may a LIMIT
        /// cap the B-tree probe (to the cap smallest rowids) without
        /// changing results.
        exact_bounds: bool,
    },
    /// Columnar segment scan over a table whose referenced columns all have
    /// column-store segments. Emits the same row shape as `SeqScan`
    /// (non-`needed` columns as Null, trailing `_rowid`), in rowid order,
    /// so results are byte-identical. `column` names the segment store whose
    /// vectorized kernel pre-filters by `lo`/`hi` (`key_cmp` superset
    /// bounds, like `IndexScan`); `None` means no sargable bound and the
    /// scan only skips dead slots. `filter` is the FULL predicate,
    /// re-applied per block unless `exact_bounds`.
    ColumnarScan {
        table: String,
        binding: String,
        column: Option<String>,
        lo: Option<Datum>,
        lo_inc: bool,
        hi: Option<Datum>,
        hi_inc: bool,
        filter: Option<PhysExpr>,
        needed: Option<Vec<String>>,
        est_rows: f64,
        exact_bounds: bool,
        /// Weaker cousin of `exact_bounds`: every conjunct was consumed as
        /// a bound on `column` and all bound literals share one exactness
        /// class, but the planner couldn't prove the *stored values* stay
        /// in that class. Segments whose zone map proves a matching value
        /// class ([`crate::ColumnStore::segment_value_class`]) may then
        /// skip the residual filter per segment.
        bounds_cover_filter: bool,
    },
    /// Covering index-only scan: the query touches only the indexed column
    /// (plus `_rowid`), so the B-tree probe alone answers it with zero heap
    /// page reads. Same bound/filter semantics as `IndexScan`.
    IndexOnlyScan {
        table: String,
        binding: String,
        column: String,
        lo: Option<Datum>,
        lo_inc: bool,
        hi: Option<Datum>,
        hi_inc: bool,
        filter: Option<PhysExpr>,
        needed: Option<Vec<String>>,
        est_rows: f64,
        exact_bounds: bool,
    },
    Filter {
        input: Box<Plan>,
        predicate: PhysExpr,
        est_rows: f64,
    },
    Project {
        input: Box<Plan>,
        exprs: Vec<PhysExpr>,
        est_rows: f64,
    },
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        /// Key expressions over the left / right input rows.
        left_key: PhysExpr,
        right_key: PhysExpr,
        /// Extra predicate over the concatenated row.
        residual: Option<PhysExpr>,
        /// LEFT OUTER join when true.
        left_outer: bool,
        est_rows: f64,
    },
    /// Requires both inputs sorted on their key (the planner inserts Sort
    /// nodes). Output order: left-major.
    MergeJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        left_key: PhysExpr,
        right_key: PhysExpr,
        residual: Option<PhysExpr>,
        est_rows: f64,
    },
    NestedLoop {
        left: Box<Plan>,
        right: Box<Plan>,
        predicate: Option<PhysExpr>,
        left_outer: bool,
        est_rows: f64,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
        est_rows: f64,
    },
    HashAggregate {
        input: Box<Plan>,
        groups: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        est_rows: f64,
    },
    /// Aggregation over input pre-sorted on the group keys.
    GroupAggregate {
        input: Box<Plan>,
        groups: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
        est_rows: f64,
    },
    /// Deduplicate consecutive identical rows (input must be sorted).
    Unique {
        input: Box<Plan>,
        est_rows: f64,
    },
    /// Hash-based whole-row DISTINCT. Printed as "HashAggregate", which is
    /// what Postgres shows for hashed DISTINCT.
    HashDistinct {
        input: Box<Plan>,
        est_rows: f64,
    },
    Limit {
        input: Box<Plan>,
        n: u64,
    },
    /// Literal rows (SELECT without FROM, INSERT ... VALUES).
    Values {
        rows: Vec<Vec<PhysExpr>>,
    },
}

/// Actual per-operator execution totals collected by `EXPLAIN ANALYZE`:
/// rows/blocks the operator emitted and wall time spent inside its
/// `next_block` calls (inclusive of children, Postgres-style).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeActuals {
    pub rows: u64,
    pub blocks: u64,
    pub ns: u64,
}

impl Plan {
    pub fn est_rows(&self) -> f64 {
        match self {
            Plan::SeqScan { est_rows, .. }
            | Plan::IndexScan { est_rows, .. }
            | Plan::ColumnarScan { est_rows, .. }
            | Plan::IndexOnlyScan { est_rows, .. }
            | Plan::Filter { est_rows, .. }
            | Plan::Project { est_rows, .. }
            | Plan::HashJoin { est_rows, .. }
            | Plan::MergeJoin { est_rows, .. }
            | Plan::NestedLoop { est_rows, .. }
            | Plan::Sort { est_rows, .. }
            | Plan::HashAggregate { est_rows, .. }
            | Plan::GroupAggregate { est_rows, .. }
            | Plan::Unique { est_rows, .. }
            | Plan::HashDistinct { est_rows, .. } => *est_rows,
            Plan::Limit { input, n } => (input.est_rows()).min(*n as f64),
            Plan::Values { rows } => rows.len() as f64,
        }
    }

    /// Postgres-style operator name (the Table 2 harness matches these).
    pub fn node_name(&self) -> &'static str {
        match self {
            Plan::SeqScan { .. } => "Seq Scan",
            Plan::IndexScan { .. } => "Index Scan",
            Plan::ColumnarScan { .. } => "Columnar Scan",
            Plan::IndexOnlyScan { .. } => "Index Only Scan",
            Plan::Filter { .. } => "Filter",
            Plan::Project { .. } => "Project",
            Plan::HashJoin { .. } => "Hash Join",
            Plan::MergeJoin { .. } => "Merge Join",
            Plan::NestedLoop { .. } => "Nested Loop",
            Plan::Sort { .. } => "Sort",
            Plan::HashAggregate { .. } => "HashAggregate",
            Plan::GroupAggregate { .. } => "GroupAggregate",
            Plan::Unique { .. } => "Unique",
            Plan::HashDistinct { .. } => "HashAggregate",
            Plan::Limit { .. } => "Limit",
            Plan::Values { .. } => "Values",
        }
    }

    /// Render the EXPLAIN tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, &mut [].iter());
        out
    }

    /// Render the EXPLAIN ANALYZE tree: the estimated plan annotated with
    /// the actuals the streaming engine collected, one entry per node in
    /// the same pre-order (node, left, right) walk `build_node` uses.
    pub fn explain_analyze(&self, actuals: &[NodeActuals]) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, &mut actuals.iter());
        out
    }

    fn explain_into(
        &self,
        out: &mut String,
        depth: usize,
        acts: &mut std::slice::Iter<'_, NodeActuals>,
    ) {
        let pad = "  ".repeat(depth);
        let arrow = if depth == 0 { "" } else { "->  " };
        // One annotation per node, consumed in pre-order; empty for plain
        // EXPLAIN (the iterator over an empty slice yields nothing).
        let act = match acts.next() {
            Some(a) => format!(
                "  (actual rows={} blocks={} time={:.3}ms)",
                a.rows,
                a.blocks,
                a.ns as f64 / 1e6
            ),
            None => String::new(),
        };
        match self {
            Plan::SeqScan { table, binding, filter, est_rows, .. } => {
                let alias = if binding != table { format!(" {binding}") } else { String::new() };
                let _ = writeln!(out, "{pad}{arrow}Seq Scan on {table}{alias}  (rows={}){act}", fmt_rows(*est_rows));
                if let Some(f) = filter {
                    let _ = writeln!(out, "{pad}      Filter: {f:?}");
                }
            }
            Plan::IndexScan { table, binding, column, lo, lo_inc, hi, hi_inc, filter, est_rows, .. } => {
                let alias = if binding != table { format!(" {binding}") } else { String::new() };
                let _ = writeln!(
                    out,
                    "{pad}{arrow}Index Scan using {table}_{column} on {table}{alias}  (rows={}){act}",
                    fmt_rows(*est_rows)
                );
                let mut cond = String::new();
                if let Some(l) = lo {
                    let _ = write!(cond, "{column} {} {l:?}", if *lo_inc { ">=" } else { ">" });
                }
                if let Some(h) = hi {
                    if !cond.is_empty() {
                        cond.push_str(" AND ");
                    }
                    let _ = write!(cond, "{column} {} {h:?}", if *hi_inc { "<=" } else { "<" });
                }
                if !cond.is_empty() {
                    let _ = writeln!(out, "{pad}      Index Cond: {cond}");
                }
                if let Some(f) = filter {
                    let _ = writeln!(out, "{pad}      Filter: {f:?}");
                }
            }
            Plan::ColumnarScan { table, binding, column, lo, lo_inc, hi, hi_inc, filter, est_rows, .. } => {
                let alias = if binding != table { format!(" {binding}") } else { String::new() };
                let _ = writeln!(
                    out,
                    "{pad}{arrow}Columnar Scan on {table}{alias}  (rows={}){act}",
                    fmt_rows(*est_rows)
                );
                if let Some(c) = column {
                    let cond = range_cond(c, lo, *lo_inc, hi, *hi_inc);
                    if !cond.is_empty() {
                        let _ = writeln!(out, "{pad}      Segment Cond: {cond}");
                    }
                }
                if let Some(f) = filter {
                    let _ = writeln!(out, "{pad}      Filter: {f:?}");
                }
            }
            Plan::IndexOnlyScan { table, binding, column, lo, lo_inc, hi, hi_inc, filter, est_rows, .. } => {
                let alias = if binding != table { format!(" {binding}") } else { String::new() };
                let _ = writeln!(
                    out,
                    "{pad}{arrow}Index Only Scan using {table}_{column} on {table}{alias}  (rows={}){act}",
                    fmt_rows(*est_rows)
                );
                let cond = range_cond(column, lo, *lo_inc, hi, *hi_inc);
                if !cond.is_empty() {
                    let _ = writeln!(out, "{pad}      Index Cond: {cond}");
                }
                if let Some(f) = filter {
                    let _ = writeln!(out, "{pad}      Filter: {f:?}");
                }
            }
            Plan::Filter { input, predicate, est_rows } => {
                let _ = writeln!(out, "{pad}{arrow}Filter  (rows={}){act}", fmt_rows(*est_rows));
                let _ = writeln!(out, "{pad}      Cond: {predicate:?}");
                input.explain_into(out, depth + 1, acts);
            }
            Plan::Project { input, est_rows, .. } => {
                let _ = writeln!(out, "{pad}{arrow}Project  (rows={}){act}", fmt_rows(*est_rows));
                input.explain_into(out, depth + 1, acts);
            }
            Plan::HashJoin { left, right, left_key, right_key, est_rows, left_outer, .. } => {
                let outer = if *left_outer { "Left " } else { "" };
                let _ = writeln!(
                    out,
                    "{pad}{arrow}{outer}Hash Join  (rows={}){act}  Cond: {left_key:?} = {right_key:?}",
                    fmt_rows(*est_rows)
                );
                left.explain_into(out, depth + 1, acts);
                right.explain_into(out, depth + 1, acts);
            }
            Plan::MergeJoin { left, right, left_key, right_key, est_rows, .. } => {
                let _ = writeln!(
                    out,
                    "{pad}{arrow}Merge Join  (rows={}){act}  Cond: {left_key:?} = {right_key:?}",
                    fmt_rows(*est_rows)
                );
                left.explain_into(out, depth + 1, acts);
                right.explain_into(out, depth + 1, acts);
            }
            Plan::NestedLoop { left, right, est_rows, .. } => {
                let _ = writeln!(out, "{pad}{arrow}Nested Loop  (rows={}){act}", fmt_rows(*est_rows));
                left.explain_into(out, depth + 1, acts);
                right.explain_into(out, depth + 1, acts);
            }
            Plan::Sort { input, keys, est_rows } => {
                let keystr: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{:?}{}", k.expr, if k.desc { " DESC" } else { "" }))
                    .collect();
                let _ = writeln!(
                    out,
                    "{pad}{arrow}Sort  (rows={}){act}  Key: {}",
                    fmt_rows(*est_rows),
                    keystr.join(", ")
                );
                input.explain_into(out, depth + 1, acts);
            }
            Plan::HashAggregate { input, est_rows, .. } => {
                let _ = writeln!(out, "{pad}{arrow}HashAggregate  (rows={}){act}", fmt_rows(*est_rows));
                input.explain_into(out, depth + 1, acts);
            }
            Plan::GroupAggregate { input, est_rows, .. } => {
                let _ = writeln!(out, "{pad}{arrow}GroupAggregate  (rows={}){act}", fmt_rows(*est_rows));
                input.explain_into(out, depth + 1, acts);
            }
            Plan::Unique { input, est_rows } => {
                let _ = writeln!(out, "{pad}{arrow}Unique  (rows={}){act}", fmt_rows(*est_rows));
                input.explain_into(out, depth + 1, acts);
            }
            Plan::HashDistinct { input, est_rows } => {
                let _ = writeln!(out, "{pad}{arrow}HashAggregate  (rows={}){act}", fmt_rows(*est_rows));
                input.explain_into(out, depth + 1, acts);
            }
            Plan::Limit { input, n } => {
                let _ = writeln!(out, "{pad}{arrow}Limit  (n={n}){act}");
                input.explain_into(out, depth + 1, acts);
            }
            Plan::Values { rows } => {
                let _ = writeln!(out, "{pad}{arrow}Values  (rows={}){act}", rows.len());
            }
        }
    }

    /// The order join operators appear in the EXPLAIN tree, top-down — the
    /// Table 2 harness uses this to compare join orders.
    pub fn join_sequence(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_joins(&mut out);
        out
    }

    fn collect_joins(&self, out: &mut Vec<String>) {
        match self {
            Plan::HashJoin { left, right, left_key, right_key, .. } => {
                out.push(format!("Hash Join {left_key:?}={right_key:?}"));
                left.collect_joins(out);
                right.collect_joins(out);
            }
            Plan::MergeJoin { left, right, left_key, right_key, .. } => {
                out.push(format!("Merge Join {left_key:?}={right_key:?}"));
                left.collect_joins(out);
                right.collect_joins(out);
            }
            Plan::NestedLoop { left, right, .. } => {
                out.push("Nested Loop".to_string());
                left.collect_joins(out);
                right.collect_joins(out);
            }
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::HashAggregate { input, .. }
            | Plan::GroupAggregate { input, .. }
            | Plan::Unique { input, .. }
            | Plan::HashDistinct { input, .. }
            | Plan::Limit { input, .. } => input.collect_joins(out),
            Plan::SeqScan { .. }
            | Plan::IndexScan { .. }
            | Plan::ColumnarScan { .. }
            | Plan::IndexOnlyScan { .. }
            | Plan::Values { .. } => {}
        }
    }
}

fn fmt_rows(r: f64) -> String {
    format!("{}", r.round().max(1.0) as u64)
}

fn range_cond(
    column: &str,
    lo: &Option<Datum>,
    lo_inc: bool,
    hi: &Option<Datum>,
    hi_inc: bool,
) -> String {
    let mut cond = String::new();
    if let Some(l) = lo {
        let _ = write!(cond, "{column} {} {l:?}", if lo_inc { ">=" } else { ">" });
    }
    if let Some(h) = hi {
        if !cond.is_empty() {
            cond.push_str(" AND ");
        }
        let _ = write!(cond, "{column} {} {h:?}", if hi_inc { "<=" } else { "<" });
    }
    cond
}
