//! Physical page-level write-ahead log.
//!
//! The WAL sits in front of the file-backed pager: every statement that
//! mutates a table captures the 8 KiB images of the pages it dirtied,
//! appends them to the log followed by a commit marker, and only then may
//! the buffer pool write those pages back to the data file. Recovery on
//! open replays committed records in order and discards the torn tail, so
//! a kill -9 at any instant loses at most the statements whose commit
//! marker never reached disk — never a half-applied statement.
//!
//! Record framing (all integers little-endian):
//!
//! ```text
//! frame   := len:u32 | kind:u8 | crc:u32 | payload[len]
//! kind 1  := CHECKPOINT  payload = full metadata snapshot (db.rs codec)
//! kind 2  := PAGE        payload = page_id:u64 | 8192-byte image
//! kind 3  := COMMIT      payload = per-statement metadata delta
//! ```
//!
//! `crc` is CRC-32 (IEEE) over `kind || payload`. The reader stops at the
//! first frame that is truncated or fails its checksum — everything after
//! a torn write is unreachable, everything before it is intact. PAGE
//! frames are buffered and only take effect when their COMMIT frame is
//! seen, which is what makes statements atomic under crashes.
//!
//! A log file always begins with one CHECKPOINT frame carrying the
//! complete metadata of the database at checkpoint time; commits after it
//! carry deltas. Checkpointing flushes the buffer pool, syncs the data
//! file, then atomically replaces the log (write temp + rename) with a
//! fresh one whose CHECKPOINT reflects the current state.
//!
//! Group commit (`SINEW_WAL_GROUP_COMMIT=n`) batches n commit frames per
//! `fdatasync`; 1 (the default) is classic synchronous commit. Fault
//! injection (`SINEW_WAL_CRASH_AFTER=n`) aborts the process mid-frame on
//! the nth appended frame, making torn-tail recovery deterministic to
//! test.

use crate::error::{DbError, DbResult};
use crate::page::PAGE_SIZE;
use crate::pager::PageId;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const KIND_CHECKPOINT: u8 = 1;
const KIND_PAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;
const FRAME_HEADER: usize = 4 + 1 + 4;
/// Sanity bound on one frame's payload; a bulk-load commit delta over
/// millions of rows stays far below this.
const MAX_PAYLOAD: usize = 256 << 20;

// ---- CRC-32 (IEEE 802.3 polynomial, reflected) ----

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 over multiple byte slices, as if concatenated.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

// ---- byte codec helpers (shared by the metadata codecs in heap/db) ----

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Cursor over an encoded metadata buffer. Every read is bounds-checked:
/// the WAL's checksums catch torn writes, but a codec bug should surface
/// as a clean error, not a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(DbError::Io("wal: truncated metadata record".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bytes(&mut self) -> DbResult<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub fn str(&mut self) -> DbResult<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| DbError::Io("wal: invalid utf-8 in metadata".into()))
    }
}

// ---- configuration & stats ----

/// WAL knobs, normally read from the environment (`SINEW_WAL`,
/// `SINEW_WAL_GROUP_COMMIT`, `SINEW_WAL_CHECKPOINT_BYTES`,
/// `SINEW_WAL_CRASH_AFTER`) but overridable programmatically for tests.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Log at all? Off restores the pre-WAL truncate-on-open behaviour.
    pub enabled: bool,
    /// Commit frames per fdatasync (group commit); 1 = sync every commit.
    pub group_commit: u64,
    /// Auto-checkpoint once the log grows past this many bytes.
    pub checkpoint_bytes: u64,
    /// Fault injection: abort the process with a half-written frame on
    /// the nth (1-based) frame append.
    pub crash_after: Option<u64>,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            enabled: true,
            group_commit: 1,
            checkpoint_bytes: 8 << 20,
            crash_after: None,
        }
    }
}

impl WalConfig {
    pub fn from_env() -> WalConfig {
        let mut cfg = WalConfig::default();
        if let Ok(v) = std::env::var("SINEW_WAL") {
            cfg.enabled = v != "0";
        }
        if let Ok(v) = std::env::var("SINEW_WAL_GROUP_COMMIT") {
            if let Ok(n) = v.parse::<u64>() {
                cfg.group_commit = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("SINEW_WAL_CHECKPOINT_BYTES") {
            if let Ok(n) = v.parse::<u64>() {
                cfg.checkpoint_bytes = n.max(PAGE_SIZE as u64);
            }
        }
        if let Ok(v) = std::env::var("SINEW_WAL_CRASH_AFTER") {
            if let Ok(n) = v.parse::<u64>() {
                cfg.crash_after = Some(n.max(1));
            }
        }
        cfg
    }
}

/// Relaxed atomic counters surfaced through `ExecSnapshot` into
/// `/metrics` and `storage_report`.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Frames appended (page images + commit markers + checkpoints).
    pub appends: AtomicU64,
    /// Commit markers appended (statement boundaries).
    pub commits: AtomicU64,
    /// fdatasync calls on the log (group commit batches these).
    pub fsyncs: AtomicU64,
    /// Checkpoint passes (log rewritten from a fresh snapshot).
    pub checkpoints: AtomicU64,
    /// Crash recoveries performed on open.
    pub recoveries: AtomicU64,
    /// Committed page images replayed into the data file by recovery.
    pub recovered_pages: AtomicU64,
    /// Bytes appended to the log.
    pub bytes_written: AtomicU64,
}

// ---- the log itself ----

struct WalInner {
    file: File,
    bytes: u64,
    /// Commits since the last fdatasync (group commit window).
    unsynced_commits: u64,
    /// Lifetime frame appends, for `crash_after` fault injection.
    appends: u64,
}

/// An open write-ahead log. One per file-backed database; all appends go
/// through a mutex, which is fine because the database serializes
/// mutating statements anyway.
pub struct Wal {
    path: PathBuf,
    cfg: WalConfig,
    inner: Mutex<WalInner>,
    pub stats: WalStats,
}

/// One committed statement recovered from the log.
pub struct WalCommit {
    /// Page images this statement dirtied, in capture order.
    pub pages: Vec<(PageId, Box<[u8]>)>,
    /// The statement's metadata delta (db.rs codec).
    pub meta: Vec<u8>,
}

/// Everything recoverable from a log file: the checkpoint snapshot it
/// starts from plus every fully committed statement after it.
pub struct WalContents {
    pub checkpoint: Vec<u8>,
    pub commits: Vec<WalCommit>,
}

/// Durably create or replace a directory entry: fsync the parent so a
/// rename/create of the log itself survives power failure — without
/// this the new inode's dentry (and every commit fdatasync'd into it)
/// can vanish, or the log can disappear entirely out from under a
/// fully-synced data file.
fn sync_parent_dir(path: &Path) -> DbResult<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

impl Wal {
    /// Create the log and seed it with a checkpoint snapshot — both the
    /// fresh-database path (empty snapshot) and the tail of recovery.
    /// The seed is written to a temp file, synced, then renamed over
    /// `path` and the directory fsync'd, so a crash at any instant
    /// leaves either the old log or a complete new one — never an
    /// empty/torn log next to a data file that still needs it.
    pub fn create(path: &Path, cfg: WalConfig, snapshot: &[u8]) -> DbResult<Wal> {
        let tmp = path.with_extension("wal-tmp");
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&tmp)?;
        let wal = Wal {
            path: path.to_path_buf(),
            cfg,
            inner: Mutex::new(WalInner { file, bytes: 0, unsynced_commits: 0, appends: 0 }),
            stats: WalStats::default(),
        };
        {
            let mut inner = wal.inner.lock();
            let mut buf = Vec::with_capacity(snapshot.len() + FRAME_HEADER);
            wal.compose_frame(&mut inner, &mut buf, KIND_CHECKPOINT, snapshot);
            inner.file.write_all(&buf)?;
            inner.bytes += buf.len() as u64;
            inner.file.sync_data()?;
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path)?;
            wal.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            wal.stats.bytes_written.fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
        Ok(wal)
    }

    pub fn config(&self) -> &WalConfig {
        &self.cfg
    }

    /// Current log size in bytes (drives auto-checkpoint).
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Append one statement's page images and commit marker, then sync
    /// according to the group-commit window. The statement is durable
    /// once this returns (or will be, within `group_commit - 1` further
    /// commits).
    pub fn commit(&self, pages: &[(PageId, Box<[u8]>)], meta: &[u8]) -> DbResult<()> {
        let mut inner = self.inner.lock();
        let mut buf =
            Vec::with_capacity(pages.len() * (PAGE_SIZE + 8 + FRAME_HEADER) + meta.len() + 64);
        for (id, image) in pages {
            debug_assert_eq!(image.len(), PAGE_SIZE);
            let mut payload = Vec::with_capacity(8 + PAGE_SIZE);
            put_u64(&mut payload, *id);
            payload.extend_from_slice(image);
            self.compose_frame(&mut inner, &mut buf, KIND_PAGE, &payload);
        }
        self.compose_frame(&mut inner, &mut buf, KIND_COMMIT, meta);
        inner.file.write_all(&buf)?;
        inner.bytes += buf.len() as u64;
        self.stats.bytes_written.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        inner.unsynced_commits += 1;
        if inner.unsynced_commits >= self.cfg.group_commit {
            inner.file.sync_data()?;
            inner.unsynced_commits = 0;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Force any group-commit backlog to disk.
    pub fn sync(&self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if inner.unsynced_commits > 0 {
            inner.file.sync_data()?;
            inner.unsynced_commits = 0;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Atomically replace the log with a fresh one seeded from `snapshot`.
    /// The caller must already have flushed + synced the data file: after
    /// the rename, pre-checkpoint history is gone.
    pub fn reset_with_checkpoint(&self, snapshot: &[u8]) -> DbResult<()> {
        let mut inner = self.inner.lock();
        let tmp = self.path.with_extension("wal-tmp");
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&tmp)?;
        let mut buf = Vec::with_capacity(snapshot.len() + FRAME_HEADER);
        self.compose_frame(&mut inner, &mut buf, KIND_CHECKPOINT, snapshot);
        file.write_all(&buf)?;
        file.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path)?;
        // The renamed handle stays valid (same inode); swap it in.
        inner.file = file;
        inner.bytes = buf.len() as u64;
        inner.unsynced_commits = 0;
        self.stats.bytes_written.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Frame `payload` into `buf`, honouring fault injection: on the
    /// `crash_after`-th lifetime append, only half the frame is written
    /// out before the process aborts — a deterministic torn tail.
    fn compose_frame(&self, inner: &mut WalInner, buf: &mut Vec<u8>, kind: u8, payload: &[u8]) {
        inner.appends += 1;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        let start = buf.len();
        put_u32(buf, payload.len() as u32);
        buf.push(kind);
        put_u32(buf, crc32(&[&[kind], payload]));
        buf.extend_from_slice(payload);
        if Some(inner.appends) == self.cfg.crash_after {
            let frame_len = buf.len() - start;
            buf.truncate(start + frame_len / 2);
            let _ = inner.file.write_all(buf);
            let _ = inner.file.sync_data();
            std::process::abort();
        }
    }

    /// Parse a log file into its checkpoint snapshot and committed
    /// statements, discarding the torn tail (uncommitted page images,
    /// truncated or checksum-failing frames, and everything after them).
    /// Returns `None` if the file is missing or does not start with a
    /// valid checkpoint frame (nothing to recover).
    pub fn read(path: &Path) -> DbResult<Option<WalContents>> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut pos = 0usize;
        let mut checkpoint: Option<Vec<u8>> = None;
        let mut commits: Vec<WalCommit> = Vec::new();
        let mut pending: Vec<(PageId, Box<[u8]>)> = Vec::new();
        while pos + FRAME_HEADER <= raw.len() {
            let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
            let kind = raw[pos + 4];
            let crc = u32::from_le_bytes(raw[pos + 5..pos + 9].try_into().unwrap());
            if len > MAX_PAYLOAD || pos + FRAME_HEADER + len > raw.len() {
                break; // torn tail
            }
            let payload = &raw[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
            if crc32(&[&[kind], payload]) != crc {
                break; // torn or corrupt: stop here
            }
            match kind {
                KIND_CHECKPOINT if pos == 0 => checkpoint = Some(payload.to_vec()),
                KIND_CHECKPOINT => break, // only valid as the first frame
                KIND_PAGE => {
                    if len != 8 + PAGE_SIZE {
                        break;
                    }
                    let id = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    pending.push((id, payload[8..].to_vec().into_boxed_slice()));
                }
                KIND_COMMIT => commits.push(WalCommit {
                    pages: std::mem::take(&mut pending),
                    meta: payload.to_vec(),
                }),
                _ => break, // unknown kind: treat as corruption
            }
            pos += FRAME_HEADER + len;
        }
        // `pending` now holds page images whose commit never landed —
        // dropped, which is exactly the atomicity we want.
        Ok(checkpoint.map(|checkpoint| WalContents { checkpoint, commits }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sinew-wal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn image(fill: u8) -> Box<[u8]> {
        vec![fill; PAGE_SIZE].into_boxed_slice()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_commits() {
        let dir = tmpdir("rt");
        let path = dir.join("t.wal");
        let wal = Wal::create(&path, WalConfig::default(), b"snap0").unwrap();
        wal.commit(&[(3, image(7)), (9, image(8))], b"meta-a").unwrap();
        wal.commit(&[], b"meta-b").unwrap();
        let c = Wal::read(&path).unwrap().unwrap();
        assert_eq!(c.checkpoint, b"snap0");
        assert_eq!(c.commits.len(), 2);
        assert_eq!(c.commits[0].pages.len(), 2);
        assert_eq!(c.commits[0].pages[1].0, 9);
        assert_eq!(c.commits[0].pages[1].1[0], 8);
        assert_eq!(c.commits[1].meta, b"meta-b");
        assert!(c.commits[1].pages.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_discards_uncommitted() {
        let dir = tmpdir("torn");
        let path = dir.join("t.wal");
        {
            let wal = Wal::create(&path, WalConfig::default(), b"s").unwrap();
            wal.commit(&[(1, image(1))], b"m1").unwrap();
            wal.commit(&[(2, image(2))], b"m2").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Truncate into the middle of the last commit's page frame.
        for cut in [full.len() - 1, full.len() - 100, full.len() - PAGE_SIZE - 20] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let c = Wal::read(&path).unwrap().unwrap();
            assert_eq!(c.commits.len(), 1, "cut at {cut}");
            assert_eq!(c.commits[0].meta, b"m1");
        }
        // Flip a byte inside the first commit's page image: nothing after
        // the checkpoint survives.
        let mut corrupt = full.clone();
        corrupt[FRAME_HEADER + 1 + FRAME_HEADER + 100] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        let c = Wal::read(&path).unwrap().unwrap();
        assert_eq!(c.commits.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_garbage_log_reads_as_none() {
        let dir = tmpdir("none");
        assert!(Wal::read(&dir.join("absent.wal")).unwrap().is_none());
        let garbage = dir.join("garbage.wal");
        std::fs::write(&garbage, b"not a wal at all").unwrap();
        assert!(Wal::read(&garbage).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let dir = tmpdir("gc");
        let path = dir.join("t.wal");
        let cfg = WalConfig { group_commit: 4, ..WalConfig::default() };
        let wal = Wal::create(&path, cfg, b"s").unwrap();
        let base = wal.stats.fsyncs.load(Ordering::Relaxed);
        for i in 0..8 {
            wal.commit(&[], format!("m{i}").as_bytes()).unwrap();
        }
        assert_eq!(wal.stats.fsyncs.load(Ordering::Relaxed) - base, 2);
        wal.commit(&[], b"tail").unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.stats.fsyncs.load(Ordering::Relaxed) - base, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_replaces_log_atomically() {
        let dir = tmpdir("reset");
        let path = dir.join("t.wal");
        let wal = Wal::create(&path, WalConfig::default(), b"old").unwrap();
        // Creation goes through temp+rename; the temp must be gone and
        // the final path present.
        assert!(path.exists());
        assert!(!path.with_extension("wal-tmp").exists());
        wal.commit(&[(1, image(1))], b"m").unwrap();
        let before = wal.bytes();
        wal.reset_with_checkpoint(b"new-snapshot").unwrap();
        assert!(wal.bytes() < before);
        assert!(!path.with_extension("wal-tmp").exists());
        // Log still appendable after the swap and reads back cleanly.
        wal.commit(&[], b"after").unwrap();
        let c = Wal::read(&path).unwrap().unwrap();
        assert_eq!(c.checkpoint, b"new-snapshot");
        assert_eq!(c.commits.len(), 1);
        assert_eq!(c.commits[0].meta, b"after");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn codec_reader_roundtrip_and_bounds() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        put_str(&mut buf, "hello");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
        assert!(r.u8().is_err());
    }
}
