//! Optimizer statistics (ANALYZE).
//!
//! Per physical column: null fraction, distinct-value estimate, most-common
//! values, and an equi-depth histogram — the same shape as Postgres's
//! `pg_statistic`. Statistics exist **only for physical columns**; anything
//! reached through an extraction UDF is invisible here, which is the paper's
//! central observation about virtual columns (§3.1.1): "As far as the
//! optimizer is concerned, virtual columns do not exist."

use crate::datum::{Datum, GroupKey};
use std::collections::HashMap;

/// Number of most-common values retained.
const MCV_SIZE: usize = 10;
/// Number of histogram buckets (bounds = buckets + 1).
const HIST_BUCKETS: usize = 100;

#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Fraction of rows where this column is NULL.
    pub null_frac: f64,
    /// Estimated number of distinct non-null values.
    pub n_distinct: f64,
    /// Most common values with their frequency (fraction of all rows).
    pub mcv: Vec<(Datum, f64)>,
    /// Equi-depth histogram bounds over non-MCV values, ascending.
    pub histogram: Vec<Datum>,
    /// Average value width in bytes.
    pub avg_width: f64,
}

#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub n_rows: f64,
    /// Keyed by live column name at ANALYZE time.
    pub columns: HashMap<String, ColumnStats>,
}

/// Streaming collector for one column.
pub struct ColumnCollector {
    rows: u64,
    nulls: u64,
    counts: HashMap<GroupKey, (Datum, u64)>,
    width_sum: u64,
    /// Distinct tracking stops (and falls back to an extrapolation) past
    /// this cardinality to bound memory.
    overflowed: bool,
}

const MAX_TRACKED: usize = 262_144;

impl Default for ColumnCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnCollector {
    pub fn new() -> ColumnCollector {
        ColumnCollector {
            rows: 0,
            nulls: 0,
            counts: HashMap::new(),
            width_sum: 0,
            overflowed: false,
        }
    }

    pub fn add(&mut self, d: &Datum) {
        self.rows += 1;
        if d.is_null() {
            self.nulls += 1;
            return;
        }
        self.width_sum += d.width() as u64;
        if self.counts.len() >= MAX_TRACKED && !self.counts.contains_key(&d.group_key()) {
            self.overflowed = true;
            return;
        }
        self.counts
            .entry(d.group_key())
            .or_insert_with(|| (d.clone(), 0))
            .1 += 1;
    }

    pub fn finish(self) -> ColumnStats {
        let rows = self.rows.max(1) as f64;
        let non_null = (self.rows - self.nulls).max(1) as f64;
        let tracked_distinct = self.counts.len() as f64;
        // If tracking overflowed, extrapolate: assume the tail is all
        // distinct (a conservative, Postgres-like under/over-estimate).
        let tracked_rows: u64 = self.counts.values().map(|(_, c)| c).sum();
        let untracked = (self.rows - self.nulls).saturating_sub(tracked_rows) as f64;
        let n_distinct = if self.overflowed { tracked_distinct + untracked } else { tracked_distinct };

        let mut by_freq: Vec<(Datum, u64)> =
            self.counts.into_values().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        // MCVs: only values that actually repeat are interesting.
        let mcv: Vec<(Datum, f64)> = by_freq
            .iter()
            .take(MCV_SIZE)
            .filter(|(_, c)| *c > 1)
            .map(|(d, c)| (d.clone(), *c as f64 / rows))
            .collect();

        // Histogram over the remaining (non-MCV) values, weighted by count.
        let mcv_keys: Vec<GroupKey> = mcv.iter().map(|(d, _)| d.group_key()).collect();
        let mut rest: Vec<(Datum, u64)> = by_freq
            .into_iter()
            .filter(|(d, _)| !mcv_keys.contains(&d.group_key()))
            .collect();
        rest.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total_rest: u64 = rest.iter().map(|(_, c)| c).sum();
        let mut histogram = Vec::new();
        if total_rest > 1 && rest.len() > 1 {
            let step = (total_rest as f64) / HIST_BUCKETS as f64;
            let mut acc = 0u64;
            let mut next = 0.0f64;
            for (d, c) in &rest {
                if acc as f64 >= next {
                    histogram.push(d.clone());
                    next += step;
                }
                acc += c;
            }
            let last = rest.last().unwrap().0.clone();
            if histogram.last() != Some(&last) {
                histogram.push(last);
            }
        }

        ColumnStats {
            null_frac: self.nulls as f64 / rows,
            n_distinct: n_distinct.max(1.0),
            mcv,
            histogram,
            avg_width: self.width_sum as f64 / non_null,
        }
    }
}

impl ColumnStats {
    /// Selectivity of `col = value`.
    pub fn eq_selectivity(&self, value: &Datum) -> f64 {
        if value.is_null() {
            return 0.0;
        }
        let key = value.group_key();
        for (d, f) in &self.mcv {
            if d.group_key() == key {
                return *f;
            }
        }
        let mcv_total: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        let remaining_distinct = (self.n_distinct - self.mcv.len() as f64).max(1.0);
        ((1.0 - self.null_frac - mcv_total) / remaining_distinct).clamp(0.0, 1.0)
    }

    /// Selectivity of `col < value` (or `<=`; bucket resolution subsumes
    /// the difference).
    pub fn lt_selectivity(&self, value: &Datum) -> f64 {
        let mut sel = 0.0;
        let mcv_total: f64 = self.mcv.iter().map(|(_, f)| f).sum();
        for (d, f) in &self.mcv {
            if d.sql_cmp(value) == Some(std::cmp::Ordering::Less) {
                sel += f;
            }
        }
        let hist_frac = self.histogram_fraction_below(value);
        sel += hist_frac * (1.0 - self.null_frac - mcv_total).max(0.0);
        sel.clamp(0.0, 1.0)
    }

    fn histogram_fraction_below(&self, value: &Datum) -> f64 {
        if self.histogram.len() < 2 {
            return 0.3333; // DEFAULT_INEQ_SEL
        }
        let n = self.histogram.len();
        let mut below = 0usize;
        for b in &self.histogram {
            if b.sql_cmp(value) == Some(std::cmp::Ordering::Less) {
                below += 1;
            } else {
                break;
            }
        }
        (below as f64 / n as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(vals: impl IntoIterator<Item = Datum>) -> ColumnStats {
        let mut c = ColumnCollector::new();
        for v in vals {
            c.add(&v);
        }
        c.finish()
    }

    #[test]
    fn null_frac_and_distinct() {
        let stats = collect(
            (0..100).map(|i| if i % 4 == 0 { Datum::Null } else { Datum::Int(i % 10) }),
        );
        assert!((stats.null_frac - 0.25).abs() < 1e-9);
        // values 1,2,3,5,6,7,9,10... non-null i%10 over i not div by 4
        assert!(stats.n_distinct >= 7.0 && stats.n_distinct <= 10.0);
    }

    #[test]
    fn mcv_catches_heavy_hitters() {
        let mut vals: Vec<Datum> = vec![Datum::Text("hot".into()); 500];
        vals.extend((0..500).map(Datum::Int));
        let stats = collect(vals);
        let sel = stats.eq_selectivity(&Datum::Text("hot".into()));
        assert!((sel - 0.5).abs() < 0.02, "hot value sel {sel}");
        // a cold value gets the uniform remainder estimate
        let cold = stats.eq_selectivity(&Datum::Int(3));
        assert!(cold < 0.01, "cold sel {cold}");
    }

    #[test]
    fn histogram_range_estimate() {
        let stats = collect((0..10_000).map(Datum::Int));
        let sel = stats.lt_selectivity(&Datum::Int(2500));
        assert!((sel - 0.25).abs() < 0.05, "lt sel {sel}");
        let sel_all = stats.lt_selectivity(&Datum::Int(999_999));
        assert!(sel_all > 0.95);
        let sel_none = stats.lt_selectivity(&Datum::Int(-5));
        assert!(sel_none < 0.05);
    }

    #[test]
    fn eq_selectivity_unknown_value_uniform() {
        let stats = collect((0..1000).map(|i| Datum::Int(i % 100)));
        let sel = stats.eq_selectivity(&Datum::Int(42));
        assert!((sel - 0.01).abs() < 0.005, "sel {sel}");
    }

    #[test]
    fn overflow_extrapolates_distinct() {
        // More distinct values than MAX_TRACKED would be slow to test
        // directly; simulate by checking the no-overflow path is exact.
        let stats = collect((0..5000).map(Datum::Int));
        assert!((stats.n_distinct - 5000.0).abs() < 1.0);
    }

    #[test]
    fn avg_width_text() {
        let stats = collect((0..10).map(|_| Datum::Text("abcdef".into())));
        assert!((stats.avg_width - 10.0).abs() < 1.0); // 6 + 4 overhead
    }
}
