//! The embedded database facade: DDL, DML, queries, EXPLAIN, ANALYZE,
//! UDF registration, and the row-level APIs Sinew's materializer uses.
//!
//! Everything Sinew needs is reachable through SQL + UDFs + these narrow
//! programmatic APIs; the Sinew layer never touches storage internals,
//! honouring the paper's "no changes to the RDBMS code" constraint (§3).

use crate::btree::SecondaryIndex;
use crate::columnar::{ColumnStore, ColumnarInfo, SEG_ROWS};
use crate::datum::{ColType, Datum};
use crate::error::{DbError, DbResult};
use crate::exec::{
    ColumnarMeta, ExecLimits, ExecSnapshot, ExecStats, Executor, IndexOnlyProbe, Row, SegScan,
    TableSource,
};
use crate::expr::{bind, Scope};
use crate::func::{FuncRegistry, ScalarFn};
use crate::heap::{Heap, RowId};
use crate::pager::{IoSnapshot, Pager};

use crate::planner::{CatalogView, Planner, PlannerConfig, TableMeta};
use crate::schema::TableSchema;
use crate::stats::{ColumnCollector, TableStats};
use crate::tuple;
use crate::txn::{TxnManager, Vis, WriteMode, NO_END, TXN_BASE};
use crate::wal::{self, Wal, WalConfig};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Result of executing one statement.
#[derive(Debug, Default)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Rows affected by DML.
    pub affected: u64,
}

impl QueryResult {
    /// First column of the first row, convenient in tests.
    pub fn scalar(&self) -> Option<&Datum> {
        self.rows.first().and_then(|r| r.first())
    }
}

struct Table {
    schema: TableSchema,
    heap: Heap,
    /// Secondary indexes over live columns, maintained by every DML path.
    indexes: Vec<SecondaryIndex>,
    /// Columnar segment stores over promoted columns, maintained by every
    /// DML path alongside the indexes. The heap stays the source of truth;
    /// these are derived read-path accelerators.
    columnar: Vec<ColumnStore>,
    /// Deferred reclamation from Retain-mode writes, each stamped with the
    /// commit timestamp that superseded it. Vacuum drains items once every
    /// snapshot older than their timestamp has been released. While any
    /// garbage (or version chain) exists, index probes are distrusted and
    /// readers fall back to visibility-checked scans.
    garbage: Vec<GarbageItem>,
}

struct GarbageItem {
    ts: u64,
    g: Garbage,
}

enum Garbage {
    /// Pop the oldest retained version off this row's chain.
    Chain(RowId),
    /// Physically free a retained (tombstoned) row.
    Row(RowId),
    /// Remove a superseded index entry.
    IndexEntry { column: String, key: Datum, rowid: RowId },
}

/// Observability summary of one secondary index.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    pub name: String,
    pub column: String,
    pub key_count: u64,
    pub pages: u64,
    pub bytes: u64,
}

/// The embedded relational database.
pub struct Database {
    pager: Arc<Pager>,
    tables: RwLock<HashMap<String, Arc<RwLock<Table>>>>,
    funcs: FuncRegistry,
    stats: RwLock<HashMap<String, TableStats>>,
    planner_config: RwLock<PlannerConfig>,
    limits: RwLock<ExecLimits>,
    exec_stats: ExecStats,
    /// Write-ahead log (file-backed databases with `SINEW_WAL` on).
    wal: Option<Arc<Wal>>,
    /// WAL write token: serializes mutating *commit units* when the WAL is
    /// on, so each commit record's captured page images belong to exactly
    /// one unit. Autocommit statements hold it for the statement; an open
    /// transaction that has written holds it from its first write until
    /// COMMIT/ROLLBACK (a plain scoped mutex cannot span statements, hence
    /// an owner id + condvar). `None` = free.
    wal_owner: Mutex<Option<u64>>,
    wal_owner_cv: Condvar,
    /// Distinct owner ids for statement-scoped token holders (transaction
    /// holders use their marker, which is >= TXN_BASE and cannot collide).
    stmt_ids: AtomicU64,
    /// MVCC transaction manager: commit timestamps + snapshot registry.
    manager: TxnManager,
    /// Snapshot isolation on (`SINEW_MVCC`, default on). Off = the legacy
    /// single-writer differential oracle: no snapshots, no version chains,
    /// BEGIN/COMMIT/ROLLBACK rejected.
    mvcc: bool,
}

impl Database {
    /// Fully in-memory database (tests, small experiments). MVCC follows
    /// `SINEW_MVCC` (default on).
    pub fn in_memory() -> Database {
        Database::with_pager(Pager::in_memory())
    }

    /// In-memory database with MVCC explicitly on/off, ignoring the
    /// environment — the differential-oracle harnesses use this to pin
    /// both sides of a comparison.
    pub fn in_memory_mvcc(on: bool) -> Database {
        let mut db = Database::with_pager(Pager::in_memory());
        db.mvcc = on;
        db
    }

    /// Is snapshot isolation active (vs the legacy single-writer oracle)?
    pub fn mvcc_enabled(&self) -> bool {
        self.mvcc
    }

    /// The transaction manager (tests / metrics overlays).
    pub fn txn_manager(&self) -> &TxnManager {
        &self.manager
    }

    /// File-backed database with an LRU buffer pool of `pool_pages` 8 KiB
    /// frames, optionally with simulated per-miss I/O latency.
    ///
    /// With the WAL enabled (the default; `SINEW_WAL=0` opts out), an
    /// existing log at `<path>.wal` is recovered — committed statements
    /// are replayed, the torn tail is discarded — and a fresh log is
    /// started. Without a log (or with the WAL off) the data file is
    /// truncated, matching the pre-WAL behaviour.
    pub fn open(path: &Path, pool_pages: usize, io_delay: Option<Duration>) -> DbResult<Database> {
        Database::open_with_wal(path, pool_pages, io_delay, WalConfig::from_env())
    }

    /// [`Database::open`] with an explicit WAL configuration (tests use
    /// this to force recovery semantics regardless of the environment).
    pub fn open_with_wal(
        path: &Path,
        pool_pages: usize,
        io_delay: Option<Duration>,
        cfg: WalConfig,
    ) -> DbResult<Database> {
        if !cfg.enabled {
            let mut pager = Pager::open(path, pool_pages)?;
            if let Some(d) = io_delay {
                pager = pager.with_io_delay(d);
            }
            return Ok(Database::with_pager(pager));
        }
        let wal_path = wal_path_for(path);
        match Wal::read(&wal_path)? {
            Some(contents) => {
                Database::recover(path, &wal_path, pool_pages, io_delay, cfg, contents)
            }
            None => {
                // No (valid) log. A fresh database starts here — but a
                // *non-empty* data file whose log is missing or invalid
                // means the log was lost (deleted, torn at creation,
                // never made durable): truncating the data file now
                // would silently destroy fully-synced committed data.
                // Fail loudly instead; `SINEW_WAL=0` keeps the legacy
                // truncate-on-open behaviour for scratch files.
                if std::fs::metadata(path).map(|m| m.len() > 0).unwrap_or(false) {
                    return Err(DbError::Io(format!(
                        "wal: data file {} is non-empty but its log {} is missing or \
                         invalid; refusing to truncate (delete the data file to start \
                         fresh, or open with SINEW_WAL=0)",
                        path.display(),
                        wal_path.display()
                    )));
                }
                let mut pager = Pager::open(path, pool_pages)?.with_wal_mode(true);
                if let Some(d) = io_delay {
                    pager = pager.with_io_delay(d);
                }
                let mut db = Database::with_pager(pager);
                let snapshot = db.wal_snapshot();
                let wal = Arc::new(Wal::create(&wal_path, cfg, &snapshot)?);
                db.pager.set_wal(wal.clone());
                db.wal = Some(wal);
                Ok(db)
            }
        }
    }

    fn with_pager(pager: Pager) -> Database {
        let mvcc = std::env::var("SINEW_MVCC").map(|v| v != "0").unwrap_or(true);
        Database {
            pager: Arc::new(pager),
            tables: RwLock::new(HashMap::new()),
            funcs: FuncRegistry::new(),
            stats: RwLock::new(HashMap::new()),
            planner_config: RwLock::new(PlannerConfig::default()),
            limits: RwLock::new(ExecLimits::default()),
            exec_stats: ExecStats::default(),
            wal: None,
            wal_owner: Mutex::new(None),
            wal_owner_cv: Condvar::new(),
            stmt_ids: AtomicU64::new(1),
            manager: TxnManager::new(),
            mvcc,
        }
    }

    /// Rebuild the database from the data file plus the log's committed
    /// history: write committed page images into the data file, replay
    /// metadata (checkpoint snapshot, then per-commit deltas), rebuild
    /// derived structures (B-tree indexes, columnar stores) from the
    /// recovered heaps, and start a fresh log from a new checkpoint.
    fn recover(
        path: &Path,
        wal_path: &Path,
        pool_pages: usize,
        io_delay: Option<Duration>,
        cfg: WalConfig,
        contents: wal::WalContents,
    ) -> DbResult<Database> {
        struct RecTable {
            schema: TableSchema,
            index_defs: Vec<(String, String)>,
            columnar_cols: Vec<String>,
            /// Heap directory records in log order: the checkpoint's full
            /// snapshot (if the table predates it) then each commit's delta.
            heap_chunks: Vec<Vec<u8>>,
        }
        type TableMeta = (TableSchema, Vec<(String, String)>, Vec<String>, Vec<u8>);
        fn read_table_meta(r: &mut wal::Reader) -> DbResult<TableMeta> {
            let schema = TableSchema::wal_decode(r)?;
            let n_idx = r.u32()? as usize;
            let mut index_defs = Vec::with_capacity(n_idx);
            for _ in 0..n_idx {
                let name = r.str()?.to_string();
                let column = r.str()?.to_string();
                index_defs.push((name, column));
            }
            let n_cs = r.u32()? as usize;
            let mut columnar_cols = Vec::with_capacity(n_cs);
            for _ in 0..n_cs {
                columnar_cols.push(r.str()?.to_string());
            }
            let heap_bytes = r.bytes()?.to_vec();
            Ok((schema, index_defs, columnar_cols, heap_bytes))
        }

        // Phase 1: metadata — checkpoint snapshot, then commit deltas.
        let mut tables: std::collections::BTreeMap<String, RecTable> = Default::default();
        let mut r = wal::Reader::new(&contents.checkpoint);
        let mut n_pages = r.u64()?;
        let n_tables = r.u32()? as usize;
        for _ in 0..n_tables {
            let name = r.str()?.to_string();
            let (schema, index_defs, columnar_cols, heap_bytes) = read_table_meta(&mut r)?;
            tables.insert(
                name,
                RecTable { schema, index_defs, columnar_cols, heap_chunks: vec![heap_bytes] },
            );
        }
        let mut max_commit_ts = 0u64;
        for commit in &contents.commits {
            let mut r = wal::Reader::new(&commit.meta);
            n_pages = r.u64()?;
            // Commit timestamp (MVCC version horizon); a transaction's
            // record carries one op per touched table, so ops loop.
            max_commit_ts = max_commit_ts.max(r.u64()?);
            while !r.is_empty() {
                match r.u8()? {
                    WAL_OP_TABLE => {
                        let name = r.str()?.to_string();
                        let (schema, index_defs, columnar_cols, heap_bytes) =
                            read_table_meta(&mut r)?;
                        let entry = tables.entry(name).or_insert_with(|| RecTable {
                            schema: TableSchema::default(),
                            index_defs: Vec::new(),
                            columnar_cols: Vec::new(),
                            heap_chunks: Vec::new(),
                        });
                        entry.schema = schema;
                        entry.index_defs = index_defs;
                        entry.columnar_cols = columnar_cols;
                        entry.heap_chunks.push(heap_bytes);
                    }
                    WAL_OP_DROP => {
                        let name = r.str()?.to_string();
                        tables.remove(&name);
                    }
                    op => return Err(DbError::Io(format!("wal: unknown commit op {op}"))),
                }
            }
        }

        // Phase 2: data file — committed page images, in log order (later
        // statements overwrite earlier images of the same page).
        let mut recovered_pages = 0u64;
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?;
            for commit in &contents.commits {
                for (id, image) in &commit.pages {
                    file.seek(SeekFrom::Start(id * crate::page::PAGE_SIZE as u64))?;
                    file.write_all(image)?;
                    recovered_pages += 1;
                }
            }
            let want = n_pages * crate::page::PAGE_SIZE as u64;
            if file.metadata()?.len() < want {
                file.set_len(want)?;
            }
            file.sync_all()?;
        }

        // Phase 3: reconstruct tables over the recovered data file, then
        // rebuild derived structures from the heaps (their pages are
        // unlogged; the heap is the source of truth).
        let mut pager = Pager::open_existing(path, pool_pages, n_pages)?.with_wal_mode(true);
        if let Some(d) = io_delay {
            pager = pager.with_io_delay(d);
        }
        let mut db = Database::with_pager(pager);
        type Rebuild = (String, Vec<(String, String)>, Vec<String>);
        let mut rebuilds: Vec<Rebuild> = Vec::new();
        for (name, rec) in tables {
            let mut heap = Heap::new(db.pager.clone());
            for chunk in &rec.heap_chunks {
                heap.wal_apply(&mut wal::Reader::new(chunk))?;
            }
            // The log encodes only the committed view: every recovered row
            // is committed, uncommitted versions are gone. Reset version
            // state accordingly (all rows committed at timestamp 0).
            heap.set_mvcc(db.mvcc);
            heap.set_wal_track(true);
            db.tables.write().insert(
                name.clone(),
                Arc::new(RwLock::new(Table {
                    schema: rec.schema,
                    heap,
                    indexes: Vec::new(),
                    columnar: Vec::new(),
                    garbage: Vec::new(),
                })),
            );
            rebuilds.push((name, rec.index_defs, rec.columnar_cols));
        }
        // Fast-forward the commit clock past every recovered timestamp so
        // post-recovery commits stay monotone against the logged history.
        db.manager.seed(max_commit_ts);
        for (name, index_defs, columnar_cols) in rebuilds {
            for (iname, column) in index_defs {
                db.create_index(&name, &iname, &column, true)?;
            }
            for column in columnar_cols {
                db.build_columnar(&name, &column)?;
            }
        }

        // Phase 4: fresh log seeded from the recovered state.
        // `Wal::create` replaces the old log atomically (temp + rename +
        // dir fsync): a crash anywhere in this phase leaves the old log
        // intact and the next open simply recovers again — recovery
        // itself is re-runnable under kill -9.
        let snapshot = db.wal_snapshot();
        let new_wal = Wal::create(wal_path, cfg, &snapshot)?;
        new_wal.stats.recoveries.store(1, std::sync::atomic::Ordering::Relaxed);
        new_wal
            .stats
            .recovered_pages
            .store(recovered_pages, std::sync::atomic::Ordering::Relaxed);
        let new_wal = Arc::new(new_wal);
        db.pager.set_wal(new_wal.clone());
        db.wal = Some(new_wal);
        Ok(db)
    }


    // ---- write-ahead log plumbing ----

    /// Block until the WAL write token is free (or already ours), then
    /// take it. Re-entrant per owner id.
    fn token_acquire(&self, id: u64) {
        let mut o = self.wal_owner.lock();
        while o.is_some() && *o != Some(id) {
            o = self.wal_owner_cv.wait(o);
        }
        *o = Some(id);
    }

    fn token_release(&self, id: u64) {
        let mut o = self.wal_owner.lock();
        debug_assert_eq!(*o, Some(id));
        *o = None;
        drop(o);
        self.wal_owner_cv.notify_all();
    }

    /// Statement-serialization guard: held across every mutating
    /// statement when the WAL is on, so the pager's uncommitted-image set
    /// belongs to exactly one commit unit at its commit point. No-op
    /// (None) without a WAL — concurrency behaviour is then unchanged.
    fn write_guard(&self) -> Option<WalToken<'_>> {
        self.wal.as_ref()?;
        let id = self.stmt_ids.fetch_add(1, Relaxed);
        self.token_acquire(id);
        Some(WalToken { db: self, id })
    }

    /// A writing transaction takes the token at its *first* write and
    /// keeps it until COMMIT/ROLLBACK (its page images must not leak into
    /// another unit's commit record). Re-entrant across the transaction's
    /// own statements.
    fn txn_wal_enter(&self, txn: &mut Txn) {
        if self.wal.is_some() && !txn.holds_wal_token {
            self.token_acquire(txn.marker);
            txn.holds_wal_token = true;
        }
    }

    /// Allocate a commit timestamp for one autocommit statement (or DDL).
    /// The returned guard publishes it on drop, even on error paths, so
    /// later timestamps are never blocked from becoming visible.
    fn begin_stmt_write(&self) -> (crate::txn::WriteTicket, TicketGuard<'_>) {
        let tk = self.manager.start_write();
        (tk, TicketGuard { mgr: &self.manager, ts: tk.ts })
    }

    fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Commit one statement against `table` (still holding its write
    /// lock): drain the pager's uncommitted page images and the heap's
    /// directory delta, snapshot the table's schema/index/columnar
    /// definitions, and append it all to the log as one commit unit.
    fn wal_commit_table(&self, name: &str, t: &mut Table, ts: u64) -> DbResult<()> {
        let Some(w) = &self.wal else { return Ok(()) };
        let mut meta = Vec::new();
        wal::put_u64(&mut meta, self.pager.n_pages());
        wal::put_u64(&mut meta, ts);
        Self::wal_table_op(&mut meta, name, t);
        let pages = self.pager.take_uncommitted_images();
        w.commit(&pages, &meta)?;
        // A statement bigger than the pool overflowed it (no-steal pins);
        // now that the images are logged, evict back down to capacity.
        self.pager.shrink_to_capacity()
    }

    /// Append one table's metadata op (schema, index/columnar defs, heap
    /// directory delta) to a commit record body. A transaction's commit
    /// appends one op per touched table into a *single* record, so a crash
    /// can never surface half a transaction.
    fn wal_table_op(meta: &mut Vec<u8>, name: &str, t: &mut Table) {
        meta.push(WAL_OP_TABLE);
        wal::put_str(meta, name);
        t.schema.wal_encode(meta);
        wal::put_u32(meta, t.indexes.len() as u32);
        for ix in &t.indexes {
            wal::put_str(meta, ix.name());
            wal::put_str(meta, ix.column());
        }
        wal::put_u32(meta, t.columnar.len() as u32);
        for cs in &t.columnar {
            wal::put_str(meta, cs.column());
        }
        let mut heap_bytes = Vec::new();
        t.heap.wal_drain_delta(&mut heap_bytes);
        wal::put_bytes(meta, &heap_bytes);
    }

    /// Finish a mutating statement whose body may have errored mid-way.
    /// A failed statement is *not* rolled back — the rows it already
    /// touched are real in memory — so its page images and heap delta
    /// must still reach the log as this statement's own commit unit.
    /// Left uncommitted, they would be silently folded into the NEXT
    /// statement's commit record (possibly for a different table) and
    /// their no-steal pins would hold the pool over capacity until then.
    /// A statement that failed before touching anything appends nothing.
    /// The statement's own error wins over a commit error.
    fn wal_finish_statement<R>(
        &self,
        name: &str,
        t: &mut Table,
        res: DbResult<R>,
        ts: u64,
    ) -> DbResult<R> {
        if res.is_err() && !self.pager.has_uncommitted() && !t.heap.wal_has_delta() {
            return res;
        }
        match self.wal_commit_table(name, t, ts) {
            Ok(()) => res,
            Err(commit_err) => res.and(Err(commit_err)),
        }
    }

    /// Commit a DROP TABLE statement.
    fn wal_commit_drop(&self, name: &str, ts: u64) -> DbResult<()> {
        let Some(w) = &self.wal else { return Ok(()) };
        let mut meta = Vec::new();
        wal::put_u64(&mut meta, self.pager.n_pages());
        wal::put_u64(&mut meta, ts);
        meta.push(WAL_OP_DROP);
        wal::put_str(&mut meta, name);
        let pages = self.pager.take_uncommitted_images();
        w.commit(&pages, &meta)
    }

    /// Full-metadata snapshot for checkpoint records: global page count
    /// plus every table's schema, index/columnar definitions, and full
    /// heap directory. Tables in sorted order for determinism.
    fn wal_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wal::put_u64(&mut out, self.pager.n_pages());
        let tables = self.tables.read();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        wal::put_u32(&mut out, names.len() as u32);
        for name in names {
            let t = tables[name.as_str()].read();
            wal::put_str(&mut out, name);
            t.schema.wal_encode(&mut out);
            wal::put_u32(&mut out, t.indexes.len() as u32);
            for ix in &t.indexes {
                wal::put_str(&mut out, ix.name());
                wal::put_str(&mut out, ix.column());
            }
            wal::put_u32(&mut out, t.columnar.len() as u32);
            for cs in &t.columnar {
                wal::put_str(&mut out, cs.column());
            }
            let mut heap_bytes = Vec::new();
            t.heap.wal_encode_full(&mut heap_bytes);
            wal::put_bytes(&mut out, &heap_bytes);
        }
        out
    }

    /// Checkpoint: flush + fsync the data file, then atomically restart
    /// the log from a fresh full-metadata snapshot. After this the old
    /// log history is unnecessary (every committed page image is in the
    /// data file) and the log is at its minimum size.
    pub fn checkpoint(&self) -> DbResult<()> {
        let _g = self.write_guard();
        self.checkpoint_locked()
    }

    fn checkpoint_locked(&self) -> DbResult<()> {
        let Some(w) = &self.wal else { return Ok(()) };
        w.sync()?;
        self.pager.flush_and_sync()?;
        let snapshot = self.wal_snapshot();
        w.reset_with_checkpoint(&snapshot)
    }

    /// Auto-checkpoint once the log outgrows its configured bound.
    /// Callers must hold the write guard (and no table locks).
    fn wal_maybe_checkpoint(&self) -> DbResult<()> {
        let Some(w) = &self.wal else { return Ok(()) };
        if w.bytes() > w.config().checkpoint_bytes {
            self.checkpoint_locked()?;
        }
        Ok(())
    }

    /// Handle to one table's lock (map lock held only momentarily, so
    /// long scans of one table never block DDL or writes on another —
    /// and UDFs that write catalog tables mid-scan cannot deadlock).
    fn table(&self, name: &str) -> DbResult<Arc<RwLock<Table>>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    // ---- configuration ----

    pub fn set_planner_config(&self, config: PlannerConfig) {
        *self.planner_config.write() = config;
    }

    pub fn planner_config(&self) -> PlannerConfig {
        self.planner_config.read().clone()
    }

    pub fn set_exec_limits(&self, limits: ExecLimits) {
        *self.limits.write() = limits;
    }

    /// Register a user-defined scalar function (paper §5).
    pub fn register_udf(&self, name: &str, f: Arc<dyn ScalarFn>) {
        self.funcs.register(name, f);
    }

    /// Register a UDF and declare it *pure* — deterministic and
    /// side-effect free, so the planner may memoize repeated calls within
    /// a row (the scan pipeline's common-subexpression elimination).
    pub fn register_udf_pure(&self, name: &str, f: Arc<dyn ScalarFn>) {
        self.funcs.register_pure(name, f);
    }

    /// Scan-parallelism counters (morsels, workers, serial/parallel scans).
    pub fn exec_stats(&self) -> ExecSnapshot {
        let mut snap = self.exec_stats.snapshot();
        snap.oldest_snapshot_age_ms = self.manager.oldest_snapshot_age_ms();
        snap.live_snapshots = self.manager.live_snapshots();
        if let Some(w) = &self.wal {
            use std::sync::atomic::Ordering::Relaxed;
            snap.wal_appends = w.stats.appends.load(Relaxed);
            snap.wal_commits = w.stats.commits.load(Relaxed);
            snap.wal_fsyncs = w.stats.fsyncs.load(Relaxed);
            snap.wal_checkpoints = w.stats.checkpoints.load(Relaxed);
            snap.wal_recoveries = w.stats.recoveries.load(Relaxed);
            snap.wal_recovered_pages = w.stats.recovered_pages.load(Relaxed);
            snap.wal_bytes = w.stats.bytes_written.load(Relaxed);
        }
        snap
    }

    pub fn functions(&self) -> &FuncRegistry {
        &self.funcs
    }

    pub fn io_stats(&self) -> IoSnapshot {
        self.pager.stats()
    }

    pub fn reset_io_stats(&self) {
        self.pager.reset_stats();
    }

    /// Flush dirty pages and drop the cache — cold-cache benchmarking.
    pub fn drop_caches(&self) -> DbResult<()> {
        self.pager.evict_all()
    }

    /// Total database size in bytes (all tables).
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    pub fn table_size_bytes(&self, table: &str) -> DbResult<u64> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.heap.bytes_used())
    }

    /// Live tuple payload bytes of one table — page and dead-tuple
    /// overhead excluded (the post-VACUUM figure used for cross-system
    /// size comparisons).
    pub fn table_live_bytes(&self, table: &str) -> DbResult<u64> {
        let t = self.table(table)?;
        let t = t.read();
        t.heap.live_bytes()
    }

    // ---- DDL ----

    pub fn create_table(&self, name: &str, cols: Vec<(String, ColType)>) -> DbResult<()> {
        let _g = self.write_guard();
        let arc = {
            let mut tables = self.tables.write();
            if tables.contains_key(name) {
                return Err(DbError::Schema(format!("table {name} already exists")));
            }
            {
                let mut seen = std::collections::HashSet::new();
                for (c, _) in &cols {
                    if !seen.insert(c.clone()) {
                        return Err(DbError::Schema(format!("duplicate column {c}")));
                    }
                }
            }
            let mut heap = Heap::new(self.pager.clone());
            heap.set_mvcc(self.mvcc);
            heap.set_wal_track(self.wal_enabled());
            let arc = Arc::new(RwLock::new(Table {
                schema: TableSchema::new(cols),
                heap,
                indexes: Vec::new(),
                columnar: Vec::new(),
                garbage: Vec::new(),
            }));
            tables.insert(name.to_string(), arc.clone());
            arc
        };
        if self.wal_enabled() {
            let (tk, _tg) = self.begin_stmt_write();
            self.wal_commit_table(name, &mut arc.write(), tk.ts)?;
            self.wal_maybe_checkpoint()?;
        }
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let _g = self.write_guard();
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))?;
        self.stats.write().remove(name);
        let (tk, _tg) = self.begin_stmt_write();
        self.wal_commit_drop(name, tk.ts)?;
        self.wal_maybe_checkpoint()?;
        Ok(())
    }

    /// `ALTER TABLE ADD COLUMN` — existing rows read the column as NULL.
    /// This is how Sinew's materializer creates physical columns.
    pub fn add_column(&self, table: &str, name: &str, ty: ColType) -> DbResult<()> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        {
            let mut t = t.write();
            t.schema.add_column(name, ty)?;
            let (tk, _tg) = self.begin_stmt_write();
            self.wal_commit_table(table, &mut t, tk.ts)?;
        }
        self.wal_maybe_checkpoint()
    }

    /// `ALTER TABLE DROP COLUMN` — the slot is kept, the name is freed
    /// (Sinew's dematerialization path). Indexes on the column go with it.
    pub fn drop_column(&self, table: &str, name: &str) -> DbResult<()> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        {
            let mut t = t.write();
            t.schema.drop_column(name)?;
            t.indexes.retain(|ix| ix.column() != name);
            t.columnar.retain(|cs| cs.column() != name);
            let (tk, _tg) = self.begin_stmt_write();
            self.wal_commit_table(table, &mut t, tk.ts)?;
        }
        self.wal_maybe_checkpoint()
    }

    // ---- secondary indexes ----

    /// `CREATE INDEX name ON table (column)`. With `bulk`, existing rows
    /// are loaded through one sort (the fast path for CREATE INDEX over a
    /// populated table); without it they are inserted one at a time (kept
    /// for the bench comparison the paper-style harness runs).
    pub fn create_index(&self, table: &str, name: &str, column: &str, bulk: bool) -> DbResult<()> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        let mut t = t.write();
        if t.indexes.iter().any(|ix| ix.name() == name) {
            return Err(DbError::Schema(format!("index {name} already exists")));
        }
        let slot = t
            .schema
            .live_columns()
            .find(|(_, c)| c.name == column)
            .map(|(i, _)| i)
            .ok_or_else(|| DbError::NotFound(format!("column {column} in {table}")))?;
        let mut wanted = vec![false; t.schema.arity()];
        wanted[slot] = true;
        let mut index = SecondaryIndex::new(self.pager.clone(), name, column);
        let mut built = 0u64;
        if bulk {
            let mut entries: Vec<(Datum, RowId)> = Vec::new();
            t.heap.scan(|rowid, bytes| {
                let mut full = tuple::decode_tuple_partial(&t.schema, &bytes, &wanted)?;
                entries.push((std::mem::replace(&mut full[slot], Datum::Null), rowid));
                built += 1;
                Ok(true)
            })?;
            index.bulk_build(entries)?;
        } else {
            let mut pending: Vec<(Datum, RowId)> = Vec::new();
            t.heap.scan(|rowid, bytes| {
                let mut full = tuple::decode_tuple_partial(&t.schema, &bytes, &wanted)?;
                pending.push((std::mem::replace(&mut full[slot], Datum::Null), rowid));
                built += 1;
                Ok(true)
            })?;
            for (key, rowid) in pending {
                index.insert(&key, rowid)?;
            }
        }
        self.exec_stats
            .index_build_rows
            .fetch_add(built, std::sync::atomic::Ordering::Relaxed);
        t.indexes.push(index);
        // Index pages are unlogged (rebuilt on recovery); the commit
        // records the index *definition* so recovery knows to rebuild it.
        let (tk, _tg) = self.begin_stmt_write();
        self.wal_commit_table(table, &mut t, tk.ts)?;
        drop(t);
        self.wal_maybe_checkpoint()
    }

    // ---- columnar segment stores ----

    /// Build a columnar segment store over one live column by a single
    /// heap scan — the materializer calls this right after promoting the
    /// column, and every DML path maintains the store incrementally from
    /// then on. Idempotent: rebuilding an existing store is a no-op.
    pub fn build_columnar(&self, table: &str, column: &str) -> DbResult<()> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        let mut t = t.write();
        if t.columnar.iter().any(|cs| cs.column() == column) {
            return Ok(());
        }
        let slot = t
            .schema
            .live_columns()
            .find(|(_, c)| c.name == column)
            .map(|(i, _)| i)
            .ok_or_else(|| DbError::NotFound(format!("column {column} in {table}")))?;
        let mut wanted = vec![false; t.schema.arity()];
        wanted[slot] = true;
        let mut store = ColumnStore::new(column);
        t.heap.scan(|rowid, bytes| {
            let mut full = tuple::decode_tuple_partial(&t.schema, &bytes, &wanted)?;
            store.append(rowid, std::mem::replace(&mut full[slot], Datum::Null));
            Ok(true)
        })?;
        // The scan above reflects the latest-committed state, which may be
        // younger than a registered snapshot: stamp a conservative floor so
        // older readers fall back to the heap instead of seeing the future.
        if self.mvcc {
            store.set_floor(self.manager.current_floor());
        }
        t.columnar.push(store);
        // Columnar stores live in memory (rebuilt on recovery); the
        // commit records which columns have one.
        let (tk, _tg) = self.begin_stmt_write();
        self.wal_commit_table(table, &mut t, tk.ts)?;
        drop(t);
        self.wal_maybe_checkpoint()
    }

    /// Drop the columnar store over one column (the demotion path);
    /// returns whether one existed.
    pub fn drop_columnar(&self, table: &str, column: &str) -> DbResult<bool> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        let mut t = t.write();
        let before = t.columnar.len();
        t.columnar.retain(|cs| cs.column() != column);
        let dropped = t.columnar.len() != before;
        if dropped {
            let (tk, _tg) = self.begin_stmt_write();
            self.wal_commit_table(table, &mut t, tk.ts)?;
            drop(t);
            self.wal_maybe_checkpoint()?;
        }
        Ok(dropped)
    }

    /// Per-column-store observability: segment count, encoded vs raw
    /// bytes, encoding mix (for storage_report).
    pub fn columnar_infos(&self, table: &str) -> DbResult<Vec<ColumnarInfo>> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.columnar.iter().map(|cs| cs.info()).collect())
    }

    /// `DROP INDEX` (scoped to one table).
    pub fn drop_index(&self, table: &str, name: &str) -> DbResult<()> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        let mut t = t.write();
        let before = t.indexes.len();
        t.indexes.retain(|ix| ix.name() != name);
        if t.indexes.len() == before {
            return Err(DbError::NotFound(format!("index {name} on {table}")));
        }
        let (tk, _tg) = self.begin_stmt_write();
        self.wal_commit_table(table, &mut t, tk.ts)?;
        drop(t);
        self.wal_maybe_checkpoint()
    }

    /// Per-index observability: key count, page count, bytes.
    pub fn index_infos(&self, table: &str) -> DbResult<Vec<IndexInfo>> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.indexes
            .iter()
            .map(|ix| IndexInfo {
                name: ix.name().to_string(),
                column: ix.column().to_string(),
                key_count: ix.key_count(),
                pages: ix.pages_used(),
                bytes: ix.bytes_used(),
            })
            .collect())
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn schema(&self, table: &str) -> DbResult<TableSchema> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.schema.clone())
    }

    pub fn row_count(&self, table: &str) -> DbResult<u64> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.heap.len())
    }

    /// Upper bound on row ids ever issued for a table; `get_row` over
    /// `0..high_water` visits every live row (the materializer's resumable
    /// iteration space).
    pub fn high_water(&self, table: &str) -> DbResult<u64> {
        let t = self.table(table)?;
        let t = t.read();
        Ok(t.heap.high_water())
    }

    // ---- programmatic row APIs ----

    /// Bulk insert. Rows are given over the table's **live** columns, in
    /// live-column order; values are coerced to column types when safe.
    pub fn insert_rows(&self, table: &str, rows: &[Vec<Datum>]) -> DbResult<u64> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        let mut t = t.write();
        let live: Vec<usize> = t.schema.live_columns().map(|(i, _)| i).collect();
        let arity = t.schema.arity();
        let (tk, _tg) = self.begin_stmt_write();
        let retain = tk.mode == WriteMode::Retain;
        let mut count = 0;
        let res = (|| -> DbResult<()> {
            for row in rows {
                if row.len() != live.len() {
                    return Err(DbError::Schema(format!(
                        "expected {} values, got {}",
                        live.len(),
                        row.len()
                    )));
                }
                let mut full = vec![Datum::Null; arity];
                for (value, &slot) in row.iter().zip(&live) {
                    full[slot] = coerce_for_column(value, t.schema.columns[slot].ty)?;
                }
                let bytes = tuple::encode_tuple(&t.schema, &full)?;
                let rowid = t.heap.insert(&bytes)?;
                if retain {
                    // Live snapshots must not see this row: stamp its birth.
                    t.heap.mark_begin(rowid, tk.ts);
                    columnar_append_tagged(&mut t, rowid, &full, tk.ts);
                } else {
                    columnar_append(&mut t, rowid, &full);
                }
                index_insert(&mut t, rowid, &full, &self.exec_stats)?;
                count += 1;
            }
            Ok(())
        })();
        self.wal_finish_statement(table, &mut t, res, tk.ts)?;
        drop(t);
        self.wal_maybe_checkpoint()?;
        Ok(count)
    }

    /// Bulk insert into a named subset of columns; unnamed columns are
    /// NULL. This is the `INSERT INTO t (cols...)` path — Sinew's loader
    /// uses it to stay ignorant of the physical schema (it only ever names
    /// the reservoir column).
    pub fn insert_rows_cols(
        &self,
        table: &str,
        cols: &[&str],
        rows: &[Vec<Datum>],
    ) -> DbResult<u64> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        let mut t = t.write();
        let arity = t.schema.arity();
        let slots: Vec<usize> = cols
            .iter()
            .map(|c| {
                t.schema
                    .index_of(c)
                    .ok_or_else(|| DbError::NotFound(format!("column {c}")))
            })
            .collect::<DbResult<_>>()?;
        let (tk, _tg) = self.begin_stmt_write();
        let retain = tk.mode == WriteMode::Retain;
        let mut count = 0;
        let res = (|| -> DbResult<()> {
            for row in rows {
                if row.len() != slots.len() {
                    return Err(DbError::Schema(format!(
                        "expected {} values, got {}",
                        slots.len(),
                        row.len()
                    )));
                }
                let mut full = vec![Datum::Null; arity];
                for (value, &slot) in row.iter().zip(&slots) {
                    full[slot] = coerce_for_column(value, t.schema.columns[slot].ty)?;
                }
                let bytes = tuple::encode_tuple(&t.schema, &full)?;
                let rowid = t.heap.insert(&bytes)?;
                if retain {
                    t.heap.mark_begin(rowid, tk.ts);
                    columnar_append_tagged(&mut t, rowid, &full, tk.ts);
                } else {
                    columnar_append(&mut t, rowid, &full);
                }
                index_insert(&mut t, rowid, &full, &self.exec_stats)?;
                count += 1;
            }
            Ok(())
        })();
        self.wal_finish_statement(table, &mut t, res, tk.ts)?;
        drop(t);
        self.wal_maybe_checkpoint()?;
        Ok(count)
    }

    /// Read one row (live columns, in live order) by row id.
    pub fn get_row(&self, table: &str, rowid: RowId) -> DbResult<Option<Row>> {
        let t = self.table(table)?;
        let t = t.read();
        let Some(bytes) = t.heap.get(rowid)? else { return Ok(None) };
        let full = tuple::decode_tuple(&t.schema, &bytes)?;
        Ok(Some(t.schema.live_columns().map(|(i, _)| full[i].clone()).collect()))
    }

    /// Atomically update named columns of a single row — the primitive the
    /// column materializer uses for its row-by-row data movement (§3.1.4).
    pub fn update_row(
        &self,
        table: &str,
        rowid: RowId,
        assignments: &[(&str, Datum)],
    ) -> DbResult<()> {
        let _g = self.write_guard();
        let t = self.table(table)?;
        {
            let mut t = t.write();
            let (tk, _tg) = self.begin_stmt_write();
            let retain = (tk.mode == WriteMode::Retain).then_some(tk.ts);
            let res = self.update_row_locked(&mut t, rowid, table, assignments, retain);
            self.wal_finish_statement(table, &mut t, res, tk.ts)?;
        }
        self.wal_maybe_checkpoint()
    }

    /// First-writer-wins conflict check for row `rowid` before a write by
    /// `marker` (0 for an autocommit statement) reading at `read_ts`.
    /// A row carrying another in-flight transaction's marker, or (for a
    /// transaction) a committed version newer than its snapshot, conflicts.
    fn check_conflict(
        &self,
        heap: &crate::heap::Heap,
        rowid: RowId,
        marker: u64,
        read_ts: u64,
    ) -> DbResult<()> {
        let (b, e) = heap.version_meta(rowid);
        let is_marker = |v: u64| v >= TXN_BASE && v != NO_END;
        let foreign = (is_marker(b) && b != marker) || (is_marker(e) && e != marker);
        let stale = marker != 0
            && ((!is_marker(b) && b > read_ts)
                || (!is_marker(e) && e != NO_END && e > read_ts));
        if foreign || stale {
            self.exec_stats.write_conflicts.fetch_add(1, Relaxed);
            return Err(DbError::Conflict(format!("row {rowid} was modified concurrently")));
        }
        Ok(())
    }

    /// The body of [`Database::update_row`], already holding the table
    /// write lock — shared with SQL UPDATE so a multi-row statement is
    /// one WAL commit unit, not one per row. With `retain: Some(ts)` a
    /// live snapshot exists, so the old version is chained (visible until
    /// `ts`) and old index keys / columnar slots are queued as timestamped
    /// garbage instead of being destroyed in place.
    fn update_row_locked(
        &self,
        t: &mut Table,
        rowid: RowId,
        table: &str,
        assignments: &[(&str, Datum)],
        retain: Option<u64>,
    ) -> DbResult<()> {
        if retain.is_some() {
            self.check_conflict(&t.heap, rowid, 0, 0)?;
        }
        let Some(bytes) = t.heap.get(rowid)? else {
            return Err(DbError::NotFound(format!("row {rowid} in {table}")));
        };
        let mut full = tuple::decode_tuple(&t.schema, &bytes)?;
        // Snapshot indexed values before the assignments land: the heap
        // keeps the rowid stable across updates (even jumbo relocation),
        // so index maintenance is needed only where the key value changed.
        let slots = indexed_slots(t);
        let old_keys: Vec<Option<Datum>> =
            slots.iter().map(|s| s.map(|i| full[i].clone())).collect();
        for (name, value) in assignments {
            let idx = t
                .schema
                .index_of(name)
                .ok_or_else(|| DbError::NotFound(format!("column {name}")))?;
            full[idx] = coerce_for_column(value, t.schema.columns[idx].ty)?;
        }
        let new_bytes = tuple::encode_tuple(&t.schema, &full)?;
        if let Some(ts) = retain {
            t.heap.update_versioned(rowid, &new_bytes, ts)?;
            // Exactly one surviving chain entry was added for this row.
            t.garbage.push(GarbageItem { ts, g: Garbage::Chain(rowid) });
            self.exec_stats.versions_created.fetch_add(1, Relaxed);
        } else {
            t.heap.update(rowid, &new_bytes)?;
        }
        let mut ops = 0u64;
        for (k, slot) in slots.into_iter().enumerate() {
            let (Some(slot), Some(old)) = (slot, &old_keys[k]) else { continue };
            let new = &full[slot];
            if old.total_cmp(new) == std::cmp::Ordering::Equal {
                continue;
            }
            if !old.is_null() {
                if let Some(ts) = retain {
                    // Snapshot readers may still probe the old key; queue
                    // its removal behind the vacuum horizon instead.
                    let column = t.indexes[k].column().to_string();
                    t.garbage.push(GarbageItem {
                        ts,
                        g: Garbage::IndexEntry { column, key: old.clone(), rowid },
                    });
                } else {
                    t.indexes[k].remove(old, rowid)?;
                    ops += 1;
                }
            }
            if !new.is_null() {
                t.indexes[k].insert(new, rowid)?;
                ops += 1;
            }
        }
        if ops > 0 {
            self.exec_stats
                .index_maintenance_ops
                .fetch_add(ops, std::sync::atomic::Ordering::Relaxed);
        }
        // Columnar upkeep: only stores whose column was assigned re-encode.
        if !t.columnar.is_empty() {
            let assigned: Vec<&str> = assignments.iter().map(|(n, _)| *n).collect();
            let slots: Vec<Option<usize>> = t
                .columnar
                .iter()
                .map(|cs| {
                    assigned
                        .iter()
                        .any(|a| *a == cs.column())
                        .then(|| t.schema.index_of(cs.column()))
                        .flatten()
                })
                .collect();
            for (cs, slot) in t.columnar.iter_mut().zip(slots) {
                let Some(slot) = slot else { continue };
                if let Some(ts) = retain {
                    cs.pending_set(rowid, full[slot].clone(), ts);
                } else {
                    cs.set(rowid, full[slot].clone());
                }
            }
        }
        Ok(())
    }

    /// Transaction-private single-row update: version the row under the
    /// transaction's marker and defer all index/columnar maintenance to
    /// COMMIT. First-writer-wins: touching a row already written by a
    /// concurrent transaction (or committed past our snapshot) errors.
    fn txn_update_row_locked(
        &self,
        t: &mut Table,
        txn: &mut Txn,
        table: &str,
        rowid: RowId,
        assignments: &[(&str, Datum)],
    ) -> DbResult<()> {
        self.check_conflict(&t.heap, rowid, txn.marker, txn.read_ts)?;
        let vis = Vis { read_ts: txn.read_ts, marker: txn.marker };
        let Some(bytes) = t.heap.get_vis(rowid, vis)? else {
            return Err(DbError::NotFound(format!("row {rowid} in {table}")));
        };
        let mut full = tuple::decode_tuple(&t.schema, &bytes)?;
        for (name, value) in assignments {
            let idx = t
                .schema
                .index_of(name)
                .ok_or_else(|| DbError::NotFound(format!("column {name}")))?;
            full[idx] = coerce_for_column(value, t.schema.columns[idx].ty)?;
        }
        let new_bytes = tuple::encode_tuple(&t.schema, &full)?;
        t.heap.update_versioned(rowid, &new_bytes, txn.marker)?;
        txn.log.push((table.to_string(), rowid, TxnOp::Upd));
        txn.touch(table, rowid).updated = true;
        self.exec_stats.versions_created.fetch_add(1, Relaxed);
        Ok(())
    }

    /// Update one row inside an open transaction (the materializer's
    /// data-movement primitive when it runs its steps transactionally).
    pub fn txn_update_row(
        &self,
        txn: &mut Txn,
        table: &str,
        rowid: RowId,
        assignments: &[(&str, Datum)],
    ) -> DbResult<()> {
        self.txn_wal_enter(txn);
        let t = self.table(table)?;
        let mut t = t.write();
        self.txn_update_row_locked(&mut t, txn, table, rowid, assignments)
    }

    /// Read one row (live columns) as the transaction sees it — its own
    /// uncommitted writes included.
    pub fn txn_get_row(&self, txn: &Txn, table: &str, rowid: RowId) -> DbResult<Option<Row>> {
        let t = self.table(table)?;
        let t = t.read();
        let vis = Vis { read_ts: txn.read_ts, marker: txn.marker };
        let Some(bytes) = t.heap.get_vis(rowid, vis)? else { return Ok(None) };
        let full = tuple::decode_tuple(&t.schema, &bytes)?;
        Ok(Some(t.schema.live_columns().map(|(i, _)| full[i].clone()).collect()))
    }

    /// Insert rows inside an open transaction: rows land in the heap
    /// stamped with the transaction's marker (invisible to everyone else)
    /// and index/columnar placement waits for COMMIT.
    pub fn txn_insert_rows(
        &self,
        txn: &mut Txn,
        table: &str,
        rows: &[Vec<Datum>],
    ) -> DbResult<u64> {
        self.txn_wal_enter(txn);
        let t = self.table(table)?;
        let mut t = t.write();
        let live: Vec<usize> = t.schema.live_columns().map(|(i, _)| i).collect();
        let arity = t.schema.arity();
        let mut count = 0;
        for row in rows {
            if row.len() != live.len() {
                return Err(DbError::Schema(format!(
                    "expected {} values, got {}",
                    live.len(),
                    row.len()
                )));
            }
            let mut full = vec![Datum::Null; arity];
            for (value, &slot) in row.iter().zip(&live) {
                full[slot] = coerce_for_column(value, t.schema.columns[slot].ty)?;
            }
            let bytes = tuple::encode_tuple(&t.schema, &full)?;
            let rowid = t.heap.insert(&bytes)?;
            t.heap.mark_begin(rowid, txn.marker);
            txn.log.push((table.to_string(), rowid, TxnOp::Ins));
            txn.touch(table, rowid).inserted = true;
            count += 1;
        }
        Ok(count)
    }

    /// Stream all rows (live columns + trailing rowid). Used by ANALYZE,
    /// scans, and the Sinew materializer.
    pub fn scan_rows(
        &self,
        table: &str,
        f: &mut dyn FnMut(RowId, Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let t = self.table(table)?;
        let t = t.read();
        let live: Vec<usize> = t.schema.live_columns().map(|(i, _)| i).collect();
        t.heap.scan(|rowid, bytes| {
            let full = tuple::decode_tuple(&t.schema, &bytes)?;
            let row: Row = live.iter().map(|&i| full[i].clone()).collect();
            f(rowid, row)
        })
    }

    // ---- statistics ----

    /// ANALYZE: full-table statistics for every live column.
    pub fn analyze(&self, table: &str) -> DbResult<()> {
        let (collectors, names, n_rows) = {
            let t = self.table(table)?;
            let t = t.read();
            let names: Vec<String> =
                t.schema.live_columns().map(|(_, c)| c.name.clone()).collect();
            let live: Vec<usize> = t.schema.live_columns().map(|(i, _)| i).collect();
            let mut collectors: Vec<ColumnCollector> =
                names.iter().map(|_| ColumnCollector::new()).collect();
            t.heap.scan(|_, bytes| {
                let full = tuple::decode_tuple(&t.schema, &bytes)?;
                for (c, &i) in collectors.iter_mut().zip(&live) {
                    c.add(&full[i]);
                }
                Ok(true)
            })?;
            (collectors, names, t.heap.len())
        };
        let mut columns = HashMap::new();
        for (c, name) in collectors.into_iter().zip(names) {
            columns.insert(name, c.finish());
        }
        self.stats
            .write()
            .insert(table.to_string(), TableStats { n_rows: n_rows as f64, columns });
        Ok(())
    }

    /// Drop statistics (returns the optimizer to default estimates).
    pub fn clear_stats(&self, table: &str) {
        self.stats.write().remove(table);
    }

    // ---- SQL entry point ----

    /// Execute a single SQL statement.
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        let stmt = sinew_sql::parse_statement(sql).map_err(|e| DbError::Parse(e.to_string()))?;
        self.execute_statement(&stmt)
    }

    pub fn execute_statement(&self, stmt: &sinew_sql::Statement) -> DbResult<QueryResult> {
        use sinew_sql::Statement;
        if matches!(stmt, Statement::Begin | Statement::Commit | Statement::Rollback) {
            return Err(DbError::Eval(
                "transactions require a session (Database::session)".into(),
            ));
        }
        self.execute_statement_in(stmt, None)
    }

    /// Execute one statement, optionally inside an open transaction.
    /// DDL cannot run transactionally (it commits immediately and is not
    /// versioned — DESIGN.md §16 limitations).
    fn execute_statement_in(
        &self,
        stmt: &sinew_sql::Statement,
        txn: Option<&mut Txn>,
    ) -> DbResult<QueryResult> {
        use sinew_sql::Statement;
        if txn.is_some()
            && matches!(stmt, Statement::CreateTable(_) | Statement::CreateIndex(_))
        {
            return Err(DbError::Eval(
                "DDL is not supported inside a transaction".into(),
            ));
        }
        match stmt {
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Eval(
                "transaction control cannot nest inside a statement".into(),
            )),
            Statement::Select(sel) => match txn {
                Some(x) => {
                    self.run_select_vis(sel, Vis { read_ts: x.read_ts, marker: x.marker })
                }
                None => self.run_select(sel),
            },
            Statement::CreateTable(ct) => {
                let cols: Vec<(String, ColType)> =
                    ct.columns.iter().map(|(n, t)| (n.clone(), (*t).into())).collect();
                match self.create_table(&ct.table, cols) {
                    Err(DbError::Schema(_)) if ct.if_not_exists => Ok(QueryResult::default()),
                    other => other.map(|_| QueryResult::default()),
                }
            }
            Statement::CreateIndex(ci) => {
                match self.create_index(&ci.table, &ci.name, &ci.column, true) {
                    Err(DbError::Schema(_)) if ci.if_not_exists => Ok(QueryResult::default()),
                    other => other.map(|_| QueryResult::default()),
                }
            }
            Statement::Insert(ins) => self.run_insert(ins, txn),
            Statement::Update(upd) => self.run_update(upd, txn),
            Statement::Delete(del) => self.run_delete(del, txn),
            Statement::Explain { analyze, inner } => match &**inner {
                Statement::Select(sel) => {
                    self.exec_stats
                        .explain_runs
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let planned = self.plan(sel)?;
                    let text = if *analyze {
                        // EXPLAIN ANALYZE actually runs the query
                        // (discarding its rows) through the streaming
                        // engine with per-node instrumentation; the
                        // materializing oracle has no operator tree to
                        // instrument, so the mode knob is overridden.
                        let mut limits = *self.limits.read();
                        limits.mode = crate::exec::ExecMode::Streaming;
                        let exec =
                            Executor { source: self, limits, stats: Some(&self.exec_stats) };
                        let az = crate::block::AnalyzeCtx::new();
                        crate::block::run_streaming_with(&exec, &planned.plan, Some(&az))?;
                        planned.plan.explain_analyze(&az.take_nodes())
                    } else {
                        planned.plan.explain()
                    };
                    Ok(QueryResult {
                        columns: vec!["QUERY PLAN".to_string()],
                        rows: text
                            .lines()
                            .map(|l| vec![Datum::Text(l.to_string())])
                            .collect(),
                        affected: 0,
                    })
                }
                _ => Err(DbError::Eval("EXPLAIN supports SELECT only".into())),
            },
            Statement::Analyze(table) => {
                self.analyze(table)?;
                Ok(QueryResult::default())
            }
        }
    }

    /// Plan a SELECT without running it.
    pub fn plan(&self, sel: &sinew_sql::Select) -> DbResult<crate::planner::PlannedQuery> {
        let planner =
            Planner::new(self, &self.funcs).with_config(self.planner_config.read().clone());
        planner.plan_select(sel)
    }

    fn run_select(&self, sel: &sinew_sql::Select) -> DbResult<QueryResult> {
        if !self.mvcc {
            let planned = self.plan(sel)?;
            let limits = *self.limits.read();
            let exec = Executor { source: self, limits, stats: Some(&self.exec_stats) };
            let rows = exec.run(&planned.plan)?;
            return Ok(QueryResult { columns: planned.columns, rows, affected: 0 });
        }
        // Register a snapshot so concurrent committers retain (rather
        // than destroy) the versions this query is reading — readers
        // never block writers and vice versa.
        let read_ts = self.manager.begin_snapshot();
        let res = self.run_select_vis(sel, Vis::snapshot(read_ts));
        if self.manager.release_snapshot(read_ts) {
            // We were the horizon; some retained garbage may be ripe.
            let _ = self.vacuum();
        }
        res
    }

    /// Run a SELECT at a fixed visibility (a registered snapshot's, or an
    /// open transaction's — the latter sees its own uncommitted writes).
    fn run_select_vis(&self, sel: &sinew_sql::Select, vis: Vis) -> DbResult<QueryResult> {
        let planned = self.plan(sel)?;
        let limits = *self.limits.read();
        let src = SnapSource { db: self, vis };
        let exec = Executor { source: &src, limits, stats: Some(&self.exec_stats) };
        let rows = exec.run(&planned.plan)?;
        Ok(QueryResult { columns: planned.columns, rows, affected: 0 })
    }

    fn run_insert(
        &self,
        ins: &sinew_sql::Insert,
        txn: Option<&mut Txn>,
    ) -> DbResult<QueryResult> {
        let schema = self.schema(&ins.table)?;
        let live: Vec<(usize, String, ColType)> = schema
            .live_columns()
            .map(|(i, c)| (i, c.name.clone(), c.ty))
            .collect();
        // map provided columns to live positions
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..live.len()).collect()
        } else {
            ins.columns
                .iter()
                .map(|c| {
                    live.iter()
                        .position(|(_, n, _)| n == c)
                        .ok_or_else(|| DbError::NotFound(format!("column {c}")))
                })
                .collect::<DbResult<_>>()?
        };
        let scope = Scope::default();
        let mut rows = Vec::new();
        for value_row in &ins.rows {
            if value_row.len() != positions.len() {
                return Err(DbError::Schema(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    value_row.len()
                )));
            }
            let mut row = vec![Datum::Null; live.len()];
            for (expr, &pos) in value_row.iter().zip(&positions) {
                row[pos] = bind(expr, &scope, &self.funcs)?.eval(&[])?;
            }
            rows.push(row);
        }
        let n = match txn {
            Some(x) => self.txn_insert_rows(x, &ins.table, &rows)?,
            None => self.insert_rows(&ins.table, &rows)?,
        };
        Ok(QueryResult { affected: n, ..Default::default() })
    }

    fn run_update(
        &self,
        upd: &sinew_sql::Update,
        txn: Option<&mut Txn>,
    ) -> DbResult<QueryResult> {
        let planner =
            Planner::new(self, &self.funcs).with_config(self.planner_config.read().clone());
        let (plan, scope) = planner.plan_modify_scan(&upd.table, upd.filter.as_ref())?;
        let assignments: Vec<(String, crate::expr::PhysExpr)> = upd
            .assignments
            .iter()
            .map(|(col, e)| Ok((col.clone(), bind(e, &scope, &self.funcs)?)))
            .collect::<DbResult<_>>()?;
        // Phase 1: evaluate new values against matching rows. A
        // transaction scans through its own visibility (it must see its
        // earlier uncommitted writes); autocommit reads latest-committed.
        let limits = *self.limits.read();
        let matched = match txn.as_deref() {
            Some(x) => {
                let src = SnapSource { db: self, vis: Vis { read_ts: x.read_ts, marker: x.marker } };
                Executor { source: &src, limits, stats: Some(&self.exec_stats) }.run(&plan)?
            }
            None => Executor { source: self, limits, stats: Some(&self.exec_stats) }.run(&plan)?,
        };
        let rowid_idx = scope.len() - 1;
        let mut updates: Vec<(RowId, Vec<(String, Datum)>)> = Vec::with_capacity(matched.len());
        for row in &matched {
            let Datum::Int(rowid) = row[rowid_idx] else {
                return Err(DbError::Eval("scan did not produce a rowid".into()));
            };
            let mut vals = Vec::with_capacity(assignments.len());
            for (col, e) in &assignments {
                vals.push((col.clone(), e.eval(row)?));
            }
            updates.push((rowid as RowId, vals));
        }
        let n = updates.len() as u64;
        if let Some(x) = txn {
            // Phase 2 (transactional): version rows under the marker.
            self.txn_wal_enter(x);
            let t = self.table(&upd.table)?;
            let mut t = t.write();
            for (rowid, vals) in updates {
                let refs: Vec<(&str, Datum)> =
                    vals.iter().map(|(c, d)| (c.as_str(), d.clone())).collect();
                self.txn_update_row_locked(&mut t, x, &upd.table, rowid, &refs)?;
            }
            return Ok(QueryResult { affected: n, ..Default::default() });
        }
        // Phase 2 (autocommit): apply row-by-row; the whole statement is
        // one WAL commit unit.
        let _g = self.write_guard();
        {
            let t = self.table(&upd.table)?;
            let mut t = t.write();
            let (tk, _tg) = self.begin_stmt_write();
            let retain = (tk.mode == WriteMode::Retain).then_some(tk.ts);
            let res = (|| -> DbResult<()> {
                for (rowid, vals) in updates {
                    let refs: Vec<(&str, Datum)> =
                        vals.iter().map(|(c, d)| (c.as_str(), d.clone())).collect();
                    self.update_row_locked(&mut t, rowid, &upd.table, &refs, retain)?;
                }
                Ok(())
            })();
            self.wal_finish_statement(&upd.table, &mut t, res, tk.ts)?;
        }
        self.wal_maybe_checkpoint()?;
        Ok(QueryResult { affected: n, ..Default::default() })
    }

    fn run_delete(
        &self,
        del: &sinew_sql::Delete,
        txn: Option<&mut Txn>,
    ) -> DbResult<QueryResult> {
        let planner =
            Planner::new(self, &self.funcs).with_config(self.planner_config.read().clone());
        let (plan, scope) = planner.plan_modify_scan(&del.table, del.filter.as_ref())?;
        let limits = *self.limits.read();
        let matched = match txn.as_deref() {
            Some(x) => {
                let src = SnapSource { db: self, vis: Vis { read_ts: x.read_ts, marker: x.marker } };
                Executor { source: &src, limits, stats: Some(&self.exec_stats) }.run(&plan)?
            }
            None => Executor { source: self, limits, stats: Some(&self.exec_stats) }.run(&plan)?,
        };
        let rowid_idx = scope.len() - 1;
        let mut n = 0;
        if let Some(x) = txn {
            // Transactional: tombstone under the marker; index/columnar
            // maintenance and reclamation wait for COMMIT.
            self.txn_wal_enter(x);
            let t = self.table(&del.table)?;
            let mut t = t.write();
            for row in &matched {
                let Datum::Int(rowid) = row[rowid_idx] else {
                    return Err(DbError::Eval("scan did not produce a rowid".into()));
                };
                let rowid = rowid as RowId;
                self.check_conflict(&t.heap, rowid, x.marker, x.read_ts)?;
                if t.heap.delete_mark(rowid, x.marker)? {
                    n += 1;
                    x.log.push((del.table.clone(), rowid, TxnOp::Del));
                    x.touch(&del.table, rowid).deleted = true;
                }
            }
            return Ok(QueryResult { affected: n, ..Default::default() });
        }
        let _g = self.write_guard();
        let t = self.table(&del.table)?;
        let mut t = t.write();
        let (tk, _tg) = self.begin_stmt_write();
        let retain = tk.mode == WriteMode::Retain;
        // The matched rows are this table's live columns + rowid
        // (plan_modify_scan decodes everything), so the old key of each
        // index is right there at its live position.
        let live_pos: Vec<Option<usize>> = {
            let live: Vec<&str> =
                t.schema.live_columns().map(|(_, c)| c.name.as_str()).collect();
            t.indexes
                .iter()
                .map(|ix| live.iter().position(|n| *n == ix.column()))
                .collect()
        };
        let mut ops = 0u64;
        let res = (|| -> DbResult<()> {
            for row in &matched {
                let Datum::Int(rowid) = row[rowid_idx] else {
                    return Err(DbError::Eval("scan did not produce a rowid".into()));
                };
                let rowid = rowid as RowId;
                if retain {
                    // Tombstone at ts; the slot, index keys, and columnar
                    // entries stay readable for older snapshots and are
                    // reclaimed by vacuum once the horizon passes ts.
                    self.check_conflict(&t.heap, rowid, 0, 0)?;
                    if t.heap.delete_mark(rowid, tk.ts)? {
                        n += 1;
                        for cs in &mut t.columnar {
                            cs.pending_delete(rowid, tk.ts);
                        }
                        for (k, pos) in live_pos.iter().enumerate() {
                            let Some(pos) = pos else { continue };
                            let key = &row[*pos];
                            if !key.is_null() {
                                let column = t.indexes[k].column().to_string();
                                t.garbage.push(GarbageItem {
                                    ts: tk.ts,
                                    g: Garbage::IndexEntry { column, key: key.clone(), rowid },
                                });
                            }
                        }
                        t.garbage.push(GarbageItem { ts: tk.ts, g: Garbage::Row(rowid) });
                    }
                } else if t.heap.delete(rowid)? {
                    n += 1;
                    for cs in &mut t.columnar {
                        cs.delete(rowid);
                    }
                    for (k, pos) in live_pos.iter().enumerate() {
                        let Some(pos) = pos else { continue };
                        let key = &row[*pos];
                        if !key.is_null() && t.indexes[k].remove(key, rowid)? {
                            ops += 1;
                        }
                    }
                }
            }
            Ok(())
        })();
        if ops > 0 {
            self.exec_stats
                .index_maintenance_ops
                .fetch_add(ops, std::sync::atomic::Ordering::Relaxed);
        }
        self.wal_finish_statement(&del.table, &mut t, res, tk.ts)?;
        drop(t);
        self.wal_maybe_checkpoint()?;
        Ok(QueryResult { affected: n, ..Default::default() })
    }

    // ---- transactions ----

    /// Open an explicit snapshot transaction. The returned handle must be
    /// resolved with [`Database::commit_txn`] or [`Database::rollback_txn`]
    /// (dropping it unresolved pins the vacuum horizon forever) — SQL
    /// callers should go through [`Database::session`], which guarantees
    /// resolution.
    pub fn begin_txn(&self) -> DbResult<Txn> {
        if !self.mvcc {
            return Err(DbError::Eval(
                "transactions require MVCC (set SINEW_MVCC=1)".into(),
            ));
        }
        // A transaction's snapshot must include every commit that finished
        // before BEGIN: updating through a stale frontier would trip
        // first-writer-wins against writes the scan simply hadn't seen
        // yet. Plain reads keep the non-blocking stale-frontier snapshot.
        let read_ts = self.manager.begin_snapshot_fresh();
        let marker = self.manager.marker();
        self.exec_stats.txns_begun.fetch_add(1, Relaxed);
        Ok(Txn {
            marker,
            read_ts,
            log: Vec::new(),
            rowmap: HashMap::new(),
            holds_wal_token: false,
        })
    }

    /// Commit: stamp every row the transaction touched with one commit
    /// timestamp (making them all visible atomically), perform the
    /// deferred index/columnar maintenance, and write the whole
    /// transaction as a single WAL commit record.
    pub fn commit_txn(&self, mut txn: Txn) -> DbResult<()> {
        let rowmap = std::mem::take(&mut txn.rowmap);
        if rowmap.is_empty() {
            // Read-only (or never wrote): nothing to publish.
            if txn.holds_wal_token {
                self.token_release(txn.marker);
            }
            let advanced = self.manager.release_snapshot(txn.read_ts);
            self.exec_stats.txns_committed.fetch_add(1, Relaxed);
            if advanced {
                let _ = self.vacuum();
            }
            return Ok(());
        }
        // Release our own snapshot BEFORE taking the commit timestamp: a
        // transaction running with no other live snapshot then commits
        // Eager and leaves zero retained garbage behind.
        let advanced = self.manager.release_snapshot(txn.read_ts);
        let tk = self.manager.start_write();
        let ticket = TicketGuard { mgr: &self.manager, ts: tk.ts };
        let retain = tk.mode == WriteMode::Retain;
        let mut names: Vec<&String> = rowmap.keys().collect();
        names.sort();
        let mut reclaimed = 0u64;
        let res = (|| -> DbResult<()> {
            let mut ops = Vec::new();
            for name in &names {
                let Ok(handle) = self.table(name) else { continue };
                let mut t = handle.write();
                for (&rowid, st) in &rowmap[name.as_str()] {
                    self.commit_row(&mut t, rowid, st, txn.marker, tk.ts, retain, &mut reclaimed)?;
                }
                if self.wal_enabled() {
                    Self::wal_table_op(&mut ops, name, &mut t);
                }
            }
            if let Some(w) = &self.wal {
                // One record for the whole transaction: recovery either
                // replays all of it or none of it.
                let mut meta = Vec::new();
                wal::put_u64(&mut meta, self.pager.n_pages());
                wal::put_u64(&mut meta, tk.ts);
                meta.extend_from_slice(&ops);
                let pages = self.pager.take_uncommitted_images();
                w.commit(&pages, &meta)?;
                self.pager.shrink_to_capacity()?;
            }
            Ok(())
        })();
        drop(ticket); // publish the commit timestamp
        if txn.holds_wal_token {
            self.token_release(txn.marker);
        }
        if reclaimed > 0 {
            self.exec_stats.versions_vacuumed.fetch_add(reclaimed, Relaxed);
        }
        self.exec_stats.txns_committed.fetch_add(1, Relaxed);
        if let Some(w) = &self.wal {
            if w.bytes() > w.config().checkpoint_bytes {
                self.checkpoint()?;
            }
        }
        let _ = advanced;
        let _ = self.vacuum();
        res
    }

    /// Publish one transaction-touched row at COMMIT: rewrite its marker
    /// stamps to the commit timestamp and perform the index/columnar
    /// maintenance that was deferred while the row was private.
    #[allow(clippy::too_many_arguments)]
    fn commit_row(
        &self,
        t: &mut Table,
        rowid: RowId,
        st: &RowState,
        marker: u64,
        ts: u64,
        retain: bool,
        reclaimed: &mut u64,
    ) -> DbResult<()> {
        // Pre-transaction image (for old index keys) — must be taken
        // before patch_commit rewrites the marker stamps.
        let old_bytes =
            if st.inserted { None } else { t.heap.pretxn_bytes(rowid, marker)? };
        *reclaimed += t.heap.patch_commit(rowid, marker, ts)?;
        if st.inserted {
            if st.deleted {
                // Born and died inside the transaction: the slot was
                // never visible to anyone; reclaim it outright.
                t.heap.physical_delete_retained(rowid)?;
                return Ok(());
            }
            let Some(bytes) = t.heap.get(rowid)? else { return Ok(()) };
            let full = tuple::decode_tuple(&t.schema, &bytes)?;
            index_insert(t, rowid, &full, &self.exec_stats)?;
            if retain {
                columnar_append_tagged(t, rowid, &full, ts);
            } else {
                columnar_append(t, rowid, &full);
            }
            return Ok(());
        }
        if st.deleted {
            if let Some(old) = &old_bytes {
                let full = tuple::decode_tuple(&t.schema, old)?;
                let slots = indexed_slots(t);
                for (k, slot) in slots.into_iter().enumerate() {
                    let Some(slot) = slot else { continue };
                    let key = &full[slot];
                    if key.is_null() {
                        continue;
                    }
                    if retain {
                        let column = t.indexes[k].column().to_string();
                        t.garbage.push(GarbageItem {
                            ts,
                            g: Garbage::IndexEntry { column, key: key.clone(), rowid },
                        });
                    } else {
                        t.indexes[k].remove(key, rowid)?;
                    }
                }
            }
            if retain {
                for cs in &mut t.columnar {
                    cs.pending_delete(rowid, ts);
                }
                t.garbage.push(GarbageItem { ts, g: Garbage::Row(rowid) });
                if st.updated {
                    // patch_commit left exactly one surviving chain entry
                    // (the pre-transaction version, now ending at ts).
                    t.garbage.push(GarbageItem { ts, g: Garbage::Chain(rowid) });
                }
            } else {
                for cs in &mut t.columnar {
                    cs.delete(rowid);
                }
                t.heap.physical_delete_retained(rowid)?;
                while t.heap.vacuum_chain_tail(rowid)? {
                    *reclaimed += 1;
                }
            }
            return Ok(());
        }
        if st.updated {
            let Some(new_bytes) = t.heap.get(rowid)? else { return Ok(()) };
            let new_full = tuple::decode_tuple(&t.schema, &new_bytes)?;
            let old_full = match &old_bytes {
                Some(b) => Some(tuple::decode_tuple(&t.schema, b)?),
                None => None,
            };
            let slots = indexed_slots(t);
            let mut ops = 0u64;
            for (k, slot) in slots.into_iter().enumerate() {
                let Some(slot) = slot else { continue };
                let new = &new_full[slot];
                if let Some(old) = old_full.as_ref().map(|f| &f[slot]) {
                    if old.total_cmp(new) == std::cmp::Ordering::Equal {
                        continue;
                    }
                    if !old.is_null() {
                        if retain {
                            let column = t.indexes[k].column().to_string();
                            t.garbage.push(GarbageItem {
                                ts,
                                g: Garbage::IndexEntry { column, key: old.clone(), rowid },
                            });
                        } else {
                            t.indexes[k].remove(old, rowid)?;
                            ops += 1;
                        }
                    }
                }
                if !new.is_null() {
                    t.indexes[k].insert(new, rowid)?;
                    ops += 1;
                }
            }
            if ops > 0 {
                self.exec_stats.index_maintenance_ops.fetch_add(ops, Relaxed);
            }
            // Columnar: we don't track which columns the transaction
            // changed, so every store gets the final value.
            let col_slots: Vec<Option<usize>> =
                t.columnar.iter().map(|cs| t.schema.index_of(cs.column())).collect();
            for (cs, slot) in t.columnar.iter_mut().zip(col_slots) {
                let Some(slot) = slot else { continue };
                if retain {
                    cs.pending_set(rowid, new_full[slot].clone(), ts);
                } else {
                    cs.set(rowid, new_full[slot].clone());
                }
            }
            if retain {
                if old_bytes.is_some() {
                    t.garbage.push(GarbageItem { ts, g: Garbage::Chain(rowid) });
                }
            } else {
                while t.heap.vacuum_chain_tail(rowid)? {
                    *reclaimed += 1;
                }
            }
        }
        Ok(())
    }

    /// Roll back: undo the transaction's heap writes in reverse order and
    /// discard its page images (they never reached the log, and after the
    /// undos the pages again hold content reconstructible from history).
    pub fn rollback_txn(&self, mut txn: Txn) -> DbResult<()> {
        let log = std::mem::take(&mut txn.log);
        let res = (|| -> DbResult<()> {
            for (name, rowid, op) in log.into_iter().rev() {
                let Ok(handle) = self.table(&name) else { continue };
                let mut t = handle.write();
                match op {
                    TxnOp::Ins => t.heap.undo_insert(rowid)?,
                    TxnOp::Upd => t.heap.undo_update(rowid)?,
                    TxnOp::Del => t.heap.undo_delete(rowid)?,
                }
            }
            Ok(())
        })();
        if txn.holds_wal_token {
            let _ = self.pager.take_uncommitted_images();
            self.pager.shrink_to_capacity()?;
            self.token_release(txn.marker);
        }
        let advanced = self.manager.release_snapshot(txn.read_ts);
        self.exec_stats.txns_aborted.fetch_add(1, Relaxed);
        if advanced {
            let _ = self.vacuum();
        }
        res
    }

    /// Reclaim retained versions, tombstoned rows, stale index keys, and
    /// columnar pendings whose timestamps have passed behind the oldest
    /// live snapshot. Best-effort: if a writer holds the WAL token the
    /// pass is skipped (garbage stays queued for the next opportunity).
    pub fn vacuum(&self) -> DbResult<u64> {
        if !self.mvcc {
            return Ok(0);
        }
        let Ok(_g) = self.try_write_guard() else { return Ok(0) };
        // Reclaim only behind BOTH the oldest live snapshot and the
        // published frontier: garbage stamped with a committed-but-not-yet
        // -published timestamp is still needed, because the next snapshot
        // will register below it.
        let floor = self
            .manager
            .horizon()
            .unwrap_or(u64::MAX)
            .min(self.manager.last_visible());
        let ready = |ts: u64| ts <= floor;
        let mut reclaimed = 0u64;
        for name in self.table_names() {
            let Ok(handle) = self.table(&name) else { continue };
            {
                let t = handle.read();
                if t.garbage.is_empty() && t.columnar.iter().all(|cs| cs.mvcc_clean()) {
                    continue;
                }
            }
            // Don't stall behind long scans holding the read lock; the
            // garbage keeps.
            let Some(mut t) = handle.try_write() else { continue };
            let items = std::mem::take(&mut t.garbage);
            let mut keep = Vec::with_capacity(items.len());
            let mut touched = false;
            for item in items {
                if !ready(item.ts) {
                    keep.push(item);
                    continue;
                }
                touched = true;
                match item.g {
                    Garbage::Chain(rowid) => {
                        if t.heap.vacuum_chain_tail(rowid)? {
                            reclaimed += 1;
                        }
                    }
                    Garbage::Row(rowid) => {
                        if t.heap.physical_delete_retained(rowid)? {
                            reclaimed += 1;
                        }
                    }
                    Garbage::IndexEntry { column, key, rowid } => {
                        if let Some(k) =
                            t.indexes.iter().position(|ix| ix.column() == column)
                        {
                            t.indexes[k].remove(&key, rowid)?;
                        }
                    }
                }
            }
            t.garbage = keep;
            for cs in &mut t.columnar {
                if cs.vacuum(Some(floor)) > 0 {
                    touched = true;
                }
            }
            if touched && self.wal_enabled() {
                let ts = self.manager.last_visible();
                self.wal_finish_statement(&name, &mut t, Ok(()), ts)?;
            }
        }
        if reclaimed > 0 {
            self.exec_stats.versions_vacuumed.fetch_add(reclaimed, Relaxed);
        }
        Ok(reclaimed)
    }

    /// Non-blocking [`Database::write_guard`]: `Err` means another writer
    /// holds the WAL token right now.
    fn try_write_guard(&self) -> Result<Option<WalToken<'_>>, ()> {
        if self.wal.is_none() {
            return Ok(None);
        }
        let id = self.stmt_ids.fetch_add(1, Relaxed);
        let mut o = self.wal_owner.lock();
        if o.is_some() {
            return Err(());
        }
        *o = Some(id);
        drop(o);
        Ok(Some(WalToken { db: self, id }))
    }

    /// Open a SQL session: the unit that owns an (optional) open
    /// transaction. `BEGIN`/`COMMIT`/`ROLLBACK` only work here.
    pub fn session(&self) -> Session<'_> {
        Session { db: self, txn: None, aborted: false }
    }

    /// Snapshot-frontier introspection: `(published, handed_out)` write
    /// timestamps. A growing gap means a write ticket is stuck in flight.
    pub fn txn_frontier(&self) -> (u64, u64) {
        (self.manager.last_visible(), self.manager.current_floor())
    }
}

/// RAII holder of the WAL serialization token (see
/// [`Database::write_guard`]).
struct WalToken<'a> {
    db: &'a Database,
    id: u64,
}

impl Drop for WalToken<'_> {
    fn drop(&mut self) {
        self.db.token_release(self.id);
    }
}

/// Publishes a statement's commit timestamp on drop — even on error
/// paths, so later timestamps are never blocked from becoming visible.
struct TicketGuard<'a> {
    mgr: &'a TxnManager,
    ts: u64,
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        self.mgr.finish_write(self.ts);
    }
}

/// Which operations a transaction performed on one row, accumulated
/// across its statements; drives the deferred maintenance at COMMIT.
#[derive(Default, Clone, Copy)]
struct RowState {
    inserted: bool,
    updated: bool,
    deleted: bool,
}

/// One undoable heap write, for ROLLBACK (applied in reverse order).
enum TxnOp {
    Ins,
    Upd,
    Del,
}

/// An open snapshot transaction. Reads see the database as of `read_ts`
/// plus this transaction's own writes (stamped with `marker`); writes
/// stay invisible to everyone else until COMMIT.
pub struct Txn {
    marker: u64,
    read_ts: u64,
    log: Vec<(String, RowId, TxnOp)>,
    rowmap: HashMap<String, BTreeMap<RowId, RowState>>,
    holds_wal_token: bool,
}

impl Txn {
    fn touch(&mut self, table: &str, rowid: RowId) -> &mut RowState {
        self.rowmap.entry(table.to_string()).or_default().entry(rowid).or_default()
    }
}

/// A connection-like wrapper owning at most one open transaction.
/// Dropping the session rolls back anything still open. A serialization
/// conflict auto-rolls-back (first-writer-wins leaves the loser nothing
/// to salvage) and leaves the session in an aborted state: further
/// statements fail until COMMIT (which reports the abort) or ROLLBACK
/// ends the transaction block — a statement after a mid-transaction
/// conflict must NOT silently run as autocommit.
pub struct Session<'a> {
    db: &'a Database,
    txn: Option<Txn>,
    aborted: bool,
}

impl Session<'_> {
    pub fn execute(&mut self, sql: &str) -> DbResult<QueryResult> {
        let stmt = sinew_sql::parse_statement(sql).map_err(|e| DbError::Parse(e.to_string()))?;
        self.execute_statement(&stmt)
    }

    pub fn execute_statement(&mut self, stmt: &sinew_sql::Statement) -> DbResult<QueryResult> {
        use sinew_sql::Statement;
        match stmt {
            Statement::Begin => {
                if self.txn.is_some() || self.aborted {
                    return Err(DbError::Eval("already in a transaction".into()));
                }
                self.txn = Some(self.db.begin_txn()?);
                Ok(QueryResult::default())
            }
            Statement::Commit => {
                if self.aborted {
                    self.aborted = false;
                    return Err(DbError::Conflict(
                        "transaction was aborted by a serialization conflict; \
                         its writes were rolled back"
                            .into(),
                    ));
                }
                match self.txn.take() {
                    Some(txn) => self.db.commit_txn(txn).map(|_| QueryResult::default()),
                    None => Err(DbError::Eval("no transaction in progress".into())),
                }
            }
            Statement::Rollback => {
                if self.aborted {
                    self.aborted = false;
                    return Ok(QueryResult::default());
                }
                match self.txn.take() {
                    Some(txn) => self.db.rollback_txn(txn).map(|_| QueryResult::default()),
                    None => Err(DbError::Eval("no transaction in progress".into())),
                }
            }
            other => {
                if self.aborted {
                    return Err(DbError::Eval(
                        "current transaction is aborted, commands ignored \
                         until end of transaction block"
                            .into(),
                    ));
                }
                let res = self.db.execute_statement_in(other, self.txn.as_mut());
                if matches!(res, Err(DbError::Conflict(_))) {
                    if let Some(txn) = self.txn.take() {
                        let _ = self.db.rollback_txn(txn);
                        self.aborted = true;
                    }
                }
                res
            }
        }
    }

    /// Whether a transaction is currently open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if let Some(txn) = self.txn.take() {
            let _ = self.db.rollback_txn(txn);
        }
    }
}

/// Commit-record ops: upsert one table's metadata, or drop a table.
const WAL_OP_TABLE: u8 = 1;
const WAL_OP_DROP: u8 = 2;

/// The log lives next to the data file as `<data-file>.wal`.
fn wal_path_for(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".wal");
    PathBuf::from(s)
}

/// Physical schema slot of each index's column, in index order (`None` only
/// if an index outlived its column, which `drop_column` prevents).
fn indexed_slots(t: &Table) -> Vec<Option<usize>> {
    t.indexes.iter().map(|ix| t.schema.index_of(ix.column())).collect()
}

/// Add a freshly inserted row to every index on the table.
fn index_insert(t: &mut Table, rowid: RowId, full: &[Datum], stats: &ExecStats) -> DbResult<()> {
    if t.indexes.is_empty() {
        return Ok(());
    }
    let slots = indexed_slots(t);
    let mut ops = 0u64;
    for (ix, slot) in t.indexes.iter_mut().zip(slots) {
        let Some(slot) = slot else { continue };
        let key = &full[slot];
        if key.is_null() {
            continue;
        }
        ix.insert(key, rowid)?;
        ops += 1;
    }
    if ops > 0 {
        stats.index_maintenance_ops.fetch_add(ops, std::sync::atomic::Ordering::Relaxed);
    }
    Ok(())
}

/// Mirror a freshly inserted row into every columnar store on the table.
fn columnar_append(t: &mut Table, rowid: RowId, full: &[Datum]) {
    if t.columnar.is_empty() {
        return;
    }
    let slots: Vec<Option<usize>> =
        t.columnar.iter().map(|cs| t.schema.index_of(cs.column())).collect();
    for (cs, slot) in t.columnar.iter_mut().zip(slots) {
        let value = slot.map(|i| full[i].clone()).unwrap_or(Datum::Null);
        cs.append(rowid, value);
    }
}

/// Like [`columnar_append`], but tags the row with its birth timestamp so
/// snapshots older than `ts` skip it ([`ColumnStore::filter_visible`]).
fn columnar_append_tagged(t: &mut Table, rowid: RowId, full: &[Datum], ts: u64) {
    if t.columnar.is_empty() {
        return;
    }
    let slots: Vec<Option<usize>> =
        t.columnar.iter().map(|cs| t.schema.index_of(cs.column())).collect();
    for (cs, slot) in t.columnar.iter_mut().zip(slots) {
        let value = slot.map(|i| full[i].clone()).unwrap_or(Datum::Null);
        cs.append_tagged(rowid, value, ts);
    }
}

/// Coerce a datum for storage into a column of the given type; only safe,
/// lossless-ish coercions are applied implicitly (ints into float columns);
/// everything else must match or be NULL.
fn coerce_for_column(d: &Datum, ty: ColType) -> DbResult<Datum> {
    if d.is_null() || d.type_of() == Some(ty) {
        return Ok(d.clone());
    }
    match (d, ty) {
        (Datum::Int(i), ColType::Float) => Ok(Datum::Float(*i as f64)),
        _ => Err(DbError::Schema(format!(
            "cannot store {:?} value into {} column",
            d.type_of(),
            ty.name()
        ))),
    }
}

impl CatalogView for Database {
    fn table_meta(&self, name: &str) -> DbResult<TableMeta> {
        let t = self.table(name)?;
        let t = t.read();
        Ok(TableMeta {
            schema: t.schema.clone(),
            n_rows: t.heap.len() as f64,
            n_pages: t.heap.pages_used() as f64,
        })
    }

    fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.stats.read().get(name).cloned()
    }

    fn indexed_columns(&self, name: &str) -> Vec<String> {
        let Ok(t) = self.table(name) else { return Vec::new() };
        let t = t.read();
        t.indexes.iter().map(|ix| ix.column().to_string()).collect()
    }

    fn columnar_columns(&self, name: &str) -> Vec<String> {
        let Ok(t) = self.table(name) else { return Vec::new() };
        let t = t.read();
        t.columnar.iter().map(|cs| cs.column().to_string()).collect()
    }
}

/// A table source pinned to one visibility: a registered snapshot's, or an
/// open transaction's (which additionally sees its own marker-stamped
/// writes). `Database` itself implements [`TableSource`] at latest-committed
/// visibility; this wrapper is how SELECTs become non-blocking readers.
pub(crate) struct SnapSource<'a> {
    pub(crate) db: &'a Database,
    pub(crate) vis: Vis,
}

impl Database {
    fn scan_table_range_vis(
        &self,
        table: &str,
        needed: Option<&[String]>,
        start: u64,
        end: u64,
        vis: Vis,
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let t = self.table(table)?;
        let t = t.read();
        let live: Vec<usize> = t.schema.live_columns().map(|(i, _)| i).collect();
        // Physical-slot bitmap of columns to actually decode.
        let wanted: Vec<bool> = match needed {
            None => vec![true; t.schema.arity()],
            Some(names) => {
                let mut w = vec![false; t.schema.arity()];
                for n in names {
                    if let Some(i) = t.schema.index_of(n) {
                        w[i] = true;
                    }
                }
                w
            }
        };
        let mut fetched = 0u64;
        let res = t.heap.scan_range_vis(start, end, vis, |rowid, bytes| {
            fetched += 1;
            let mut full = tuple::decode_tuple_partial(&t.schema, &bytes, &wanted)?;
            let mut row: Row = Vec::with_capacity(live.len() + 1);
            for &i in &live {
                row.push(std::mem::replace(&mut full[i], Datum::Null));
            }
            row.push(Datum::Int(rowid as i64));
            f(row)
        });
        if fetched > 0 {
            self.exec_stats
                .heap_fetches
                .fetch_add(fetched, std::sync::atomic::Ordering::Relaxed);
        }
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn index_lookup_vis(
        &self,
        table: &str,
        column: &str,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<u64>,
        vis: Vis,
    ) -> DbResult<Option<Vec<u64>>> {
        let t = self.table(table)?;
        let t = t.read();
        // Indexes cover only latest-committed rows and may still carry
        // queued-for-vacuum keys. Any version activity (or garbage) makes
        // them untrustworthy for this reader: fall back to the seq scan,
        // which resolves visibility per row.
        if !t.heap.vis_quiet(vis) || !t.garbage.is_empty() {
            return Ok(None);
        }
        let Some(ix) = t.indexes.iter().find(|ix| ix.column() == column) else {
            return Ok(None);
        };
        ix.lookup_range(lo, lo_inc, hi, hi_inc, cap.map(|c| c as usize)).map(Some)
    }

    fn fetch_rows_vis(
        &self,
        table: &str,
        needed: Option<&[String]>,
        rowids: &[u64],
        vis: Vis,
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let t = self.table(table)?;
        let t = t.read();
        let live: Vec<usize> = t.schema.live_columns().map(|(i, _)| i).collect();
        let wanted: Vec<bool> = match needed {
            None => vec![true; t.schema.arity()],
            Some(names) => {
                let mut w = vec![false; t.schema.arity()];
                for n in names {
                    if let Some(i) = t.schema.index_of(n) {
                        w[i] = true;
                    }
                }
                w
            }
        };
        let mut fetched = 0u64;
        for &rowid in rowids {
            let Some(bytes) = t.heap.get_vis(rowid, vis)? else { continue };
            fetched += 1;
            let mut full = tuple::decode_tuple_partial(&t.schema, &bytes, &wanted)?;
            let mut row: Row = Vec::with_capacity(live.len() + 1);
            for &i in &live {
                row.push(std::mem::replace(&mut full[i], Datum::Null));
            }
            row.push(Datum::Int(rowid as i64));
            if !f(row)? {
                break;
            }
        }
        if fetched > 0 {
            self.exec_stats
                .heap_fetches
                .fetch_add(fetched, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(())
    }

    /// Column stores hold latest-committed data plus insert tags and a
    /// rebuild floor. A reader older than the floor, or newer than a
    /// not-yet-applied pending op, cannot use them; neither can a
    /// transaction whose own heap writes are absent from the store.
    fn columnar_usable(&self, t: &Table, vis: Vis) -> bool {
        if self.mvcc && vis.marker != 0 && t.heap.needs_vis() {
            return false;
        }
        t.columnar.iter().all(|cs| cs.usable_for(vis.read_ts))
    }

    fn columnar_meta_vis(
        &self,
        table: &str,
        needed: Option<&[String]>,
        bound_column: Option<&str>,
        vis: Vis,
    ) -> DbResult<Option<ColumnarMeta>> {
        let t = self.table(table)?;
        let t = t.read();
        if t.columnar.is_empty() {
            return Ok(None);
        }
        if !self.columnar_usable(&t, vis) {
            return Ok(None);
        }
        // Wildcard scans can't be reconstructed from column stores.
        let Some(names) = needed else { return Ok(None) };
        for n in names {
            if n != "_rowid" && !t.columnar.iter().any(|cs| cs.column() == n) {
                return Ok(None);
            }
        }
        if let Some(bc) = bound_column {
            if !t.columnar.iter().any(|cs| cs.column() == bc) {
                return Ok(None);
            }
        }
        // Stores advance in lockstep with the heap, so any one's segment
        // count covers every live rowid.
        let n_segments =
            t.columnar.iter().map(|cs| cs.n_segments()).max().unwrap_or(0) as usize;
        Ok(Some(ColumnarMeta { n_segments, seg_rows: SEG_ROWS }))
    }

    #[allow(clippy::too_many_arguments)]
    fn columnar_scan_segment_vis(
        &self,
        table: &str,
        needed: Option<&[String]>,
        bound_column: Option<&str>,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        segment: usize,
        vis: Vis,
    ) -> DbResult<Option<SegScan>> {
        let t = self.table(table)?;
        let t = t.read();
        if !self.columnar_usable(&t, vis) {
            return Ok(None);
        }
        let Some(names) = needed else { return Ok(None) };
        let seg = segment as u64;
        // Per live column, the store to gather from (needed columns only).
        let live: Vec<&str> = t.schema.live_columns().map(|(_, c)| c.name.as_str()).collect();
        let mut stores: Vec<Option<&ColumnStore>> = Vec::with_capacity(live.len());
        for cname in &live {
            if names.iter().any(|n| n == cname) {
                match t.columnar.iter().find(|cs| cs.column() == *cname) {
                    Some(cs) => stores.push(Some(cs)),
                    None => return Ok(None),
                }
            } else {
                stores.push(None);
            }
        }
        let bound_store = match bound_column {
            Some(bc) => match t.columnar.iter().find(|cs| cs.column() == bc) {
                Some(cs) => Some(cs),
                None => return Ok(None),
            },
            None => None,
        };
        // Liveness authority: every store carries the same live bitmap.
        let Some(any_store) = bound_store.or_else(|| t.columnar.first()) else {
            return Ok(None);
        };
        let mut scan = SegScan::default();
        if seg >= any_store.n_segments() {
            return Ok(Some(scan));
        }
        let bounded = lo.is_some() || hi.is_some();
        if let (Some(bs), true) = (bound_store, bounded) {
            if bs.zone_prunes(seg, lo, lo_inc, hi, hi_inc) {
                scan.pruned = true;
                return Ok(Some(scan));
            }
        }
        let mut offsets: Vec<u32> = Vec::new();
        match (bound_store, bounded) {
            (Some(bs), true) => {
                scan.kernel.merge(&bs.select_segment(seg, lo, lo_inc, hi, hi_inc, &mut offsets));
                // Per-segment exactness: the zone map proves every live
                // value shares the class of every present bound, so kernel
                // emission equals the SQL match set for this segment and
                // the executor may skip the residual filter when the plan
                // says the bounds cover the whole predicate.
                scan.exact = match bs.segment_value_class(seg) {
                    Some(cls) => [lo, hi].into_iter().flatten().all(|d| {
                        d.exactness_class() == Some(cls)
                    }),
                    None => false,
                };
            }
            _ => any_store.live_slots(seg, &mut offsets),
        }
        // Drop rows born after this reader's snapshot (tags are mirrored
        // across a table's stores, so any one store can filter).
        any_store.filter_visible(seg, vis.read_ts, &mut offsets);
        if offsets.is_empty() {
            return Ok(Some(scan));
        }
        let n_live = live.len();
        let base = segment * SEG_ROWS;
        let mut rows: Vec<Row> = offsets
            .iter()
            .map(|&o| {
                let mut r: Row = vec![Datum::Null; n_live + 1];
                r[n_live] = Datum::Int((base + o as usize) as i64);
                r
            })
            .collect();
        let mut colbuf: Vec<Datum> = Vec::new();
        for (li, st) in stores.iter().enumerate() {
            let Some(st) = st else { continue };
            colbuf.clear();
            st.gather(seg, &offsets, &mut colbuf, &mut scan.kernel);
            scan.kernel.decoded += offsets.len() as u64;
            for (r, v) in rows.iter_mut().zip(colbuf.drain(..)) {
                r[li] = v;
            }
        }
        scan.rows = rows;
        Ok(Some(scan))
    }

    #[allow(clippy::too_many_arguments)]
    fn index_only_probe_vis(
        &self,
        table: &str,
        column: &str,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<u64>,
        vis: Vis,
    ) -> DbResult<Option<IndexOnlyProbe>> {
        // An unbounded probe would miss NULL-key rows (never indexed);
        // the planner only emits bounded probes, but stay defensive.
        if lo.is_none() && hi.is_none() {
            return Ok(None);
        }
        let t = self.table(table)?;
        let t = t.read();
        // Same trust rule as index_lookup_vis: any version activity or
        // queued index garbage disqualifies an index-only answer.
        if !t.heap.vis_quiet(vis) || !t.garbage.is_empty() {
            return Ok(None);
        }
        let Some(ix) = t.indexes.iter().find(|ix| ix.column() == column) else {
            return Ok(None);
        };
        let mut entries =
            ix.lookup_range_entries(lo, lo_inc, hi, hi_inc, cap.map(|c| c as usize))?;
        // Heap scans emit in ascending rowid order; match it.
        entries.sort_unstable_by_key(|(_, r)| *r);
        let live: Vec<&str> = t.schema.live_columns().map(|(_, c)| c.name.as_str()).collect();
        let Some(key_slot) = live.iter().position(|n| *n == column) else {
            return Ok(None);
        };
        Ok(Some(IndexOnlyProbe { entries, n_live_cols: live.len(), key_slot }))
    }
}

impl TableSource for Database {
    fn scan_table(
        &self,
        table: &str,
        needed: Option<&[String]>,
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.scan_table_range_vis(table, needed, 0, u64::MAX, Vis::LATEST, f)
    }

    fn high_water(&self, table: &str) -> DbResult<Option<u64>> {
        Ok(Some(Database::high_water(self, table)?))
    }

    fn scan_table_range(
        &self,
        table: &str,
        needed: Option<&[String]>,
        start: u64,
        end: u64,
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.scan_table_range_vis(table, needed, start, end, Vis::LATEST, f)
    }

    fn index_lookup(
        &self,
        table: &str,
        column: &str,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<u64>,
    ) -> DbResult<Option<Vec<u64>>> {
        self.index_lookup_vis(table, column, lo, lo_inc, hi, hi_inc, cap, Vis::LATEST)
    }

    fn fetch_rows(
        &self,
        table: &str,
        needed: Option<&[String]>,
        rowids: &[u64],
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.fetch_rows_vis(table, needed, rowids, Vis::LATEST, f)
    }

    fn columnar_meta(
        &self,
        table: &str,
        needed: Option<&[String]>,
        bound_column: Option<&str>,
    ) -> DbResult<Option<ColumnarMeta>> {
        self.columnar_meta_vis(table, needed, bound_column, Vis::LATEST)
    }

    #[allow(clippy::too_many_arguments)]
    fn columnar_scan_segment(
        &self,
        table: &str,
        needed: Option<&[String]>,
        bound_column: Option<&str>,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        segment: usize,
    ) -> DbResult<Option<SegScan>> {
        self.columnar_scan_segment_vis(
            table,
            needed,
            bound_column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            segment,
            Vis::LATEST,
        )
    }

    fn index_only_probe(
        &self,
        table: &str,
        column: &str,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<u64>,
    ) -> DbResult<Option<IndexOnlyProbe>> {
        self.index_only_probe_vis(table, column, lo, lo_inc, hi, hi_inc, cap, Vis::LATEST)
    }
}

impl TableSource for SnapSource<'_> {
    fn scan_table(
        &self,
        table: &str,
        needed: Option<&[String]>,
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.db.scan_table_range_vis(table, needed, 0, u64::MAX, self.vis, f)
    }

    fn high_water(&self, table: &str) -> DbResult<Option<u64>> {
        Ok(Some(Database::high_water(self.db, table)?))
    }

    fn scan_table_range(
        &self,
        table: &str,
        needed: Option<&[String]>,
        start: u64,
        end: u64,
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.db.scan_table_range_vis(table, needed, start, end, self.vis, f)
    }

    fn index_lookup(
        &self,
        table: &str,
        column: &str,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<u64>,
    ) -> DbResult<Option<Vec<u64>>> {
        self.db.index_lookup_vis(table, column, lo, lo_inc, hi, hi_inc, cap, self.vis)
    }

    fn fetch_rows(
        &self,
        table: &str,
        needed: Option<&[String]>,
        rowids: &[u64],
        f: &mut dyn FnMut(Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.db.fetch_rows_vis(table, needed, rowids, self.vis, f)
    }

    fn columnar_meta(
        &self,
        table: &str,
        needed: Option<&[String]>,
        bound_column: Option<&str>,
    ) -> DbResult<Option<ColumnarMeta>> {
        self.db.columnar_meta_vis(table, needed, bound_column, self.vis)
    }

    #[allow(clippy::too_many_arguments)]
    fn columnar_scan_segment(
        &self,
        table: &str,
        needed: Option<&[String]>,
        bound_column: Option<&str>,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        segment: usize,
    ) -> DbResult<Option<SegScan>> {
        self.db.columnar_scan_segment_vis(
            table,
            needed,
            bound_column,
            lo,
            lo_inc,
            hi,
            hi_inc,
            segment,
            self.vis,
        )
    }

    fn index_only_probe(
        &self,
        table: &str,
        column: &str,
        lo: Option<&Datum>,
        lo_inc: bool,
        hi: Option<&Datum>,
        hi_inc: bool,
        cap: Option<u64>,
    ) -> DbResult<Option<IndexOnlyProbe>> {
        self.db.index_only_probe_vis(table, column, lo, lo_inc, hi, hi_inc, cap, self.vis)
    }
}
